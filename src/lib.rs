//! Umbrella crate for the reproduction of *"Hardware-Based Domain
//! Virtualization for Intra-Process Isolation of Persistent Memory
//! Objects"* (ISCA 2020).
//!
//! Re-exports the workspace crates under one roof for the examples and
//! integration tests:
//!
//! - [`trace`] — trace events and sinks (the Pin substitute);
//! - [`simarch`] — caches, TLBs, page tables, memory model (the Sniper
//!   substitute);
//! - [`runtime`] — the PMO pool runtime (Table I API, transactions,
//!   crash/recovery);
//! - [`protect`] — **the paper's contribution**: the protection schemes
//!   (MPK, libmpk, hardware MPK virtualization, hardware domain
//!   virtualization);
//! - [`sim`] — the trace-replay simulator driver;
//! - [`workloads`] — WHISPER-like and multi-PMO benchmarks;
//! - [`analyzer`] — multi-pass static analysis over traces (persist
//!   ordering, happens-before races, permission windows);
//! - [`experiments`] — the per-table/per-figure experiment runners.
//!
//! # Quickstart
//!
//! ```
//! use pmo_repro::protect::scheme::{ProtectionScheme, SchemeKind};
//! use pmo_repro::simarch::SimConfig;
//! use pmo_repro::trace::{AccessKind, Perm, PmoId};
//!
//! let config = SimConfig::isca2020();
//! let mut scheme = SchemeKind::DomainVirt.build(&config);
//! let base = 0x40_0000_0000;
//! scheme.attach(PmoId::new(1), base, 8 << 20, true);
//! scheme.set_perm(PmoId::new(1), Perm::ReadWrite);
//! assert!(scheme.access(base, AccessKind::Write).allowed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pmo_analyzer as analyzer;
pub use pmo_experiments as experiments;
pub use pmo_modelcheck as modelcheck;
pub use pmo_protect as protect;
pub use pmo_runtime as runtime;
pub use pmo_sim as sim;
pub use pmo_simarch as simarch;
pub use pmo_trace as trace;
pub use pmo_workloads as workloads;
