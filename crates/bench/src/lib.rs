//! Shared fixtures for the Criterion benchmark harness.
//!
//! Every paper table/figure has a bench target that exercises the same
//! code path as the corresponding `pmo-experiments` binary, at a size
//! tuned for statistical benchmarking rather than full reproduction:
//!
//! - `paper_tables` — Tables II, V, VI, VII, VIII kernels;
//! - `paper_figures` — Figure 6 sweep points and the Figure 7 averaging;
//! - `components` — the new hardware structures in isolation (DTTLB, PTLB,
//!   DTT/DRT radix walks, key allocation, PKRU, PLRU);
//! - `ablations` — design-choice sweeps called out in DESIGN.md (DTTLB and
//!   PTLB capacity, context-switch frequency, shootdown cost vs thread
//!   count).

#![forbid(unsafe_code)]

use pmo_protect::SchemeKind;
use pmo_sim::ReplayReport;
use pmo_simarch::SimConfig;
use pmo_workloads::{
    MicroBench, MicroConfig, MicroWorkload, WhisperBench, WhisperConfig, WhisperWorkload,
};

/// A micro configuration small enough for per-iteration benching.
#[must_use]
pub fn bench_micro_config(active: u32) -> MicroConfig {
    MicroConfig {
        pmos: active,
        active_pmos: active,
        pmo_bytes: 8 << 20,
        initial_nodes: 24,
        ops: 400,
        insert_pct: 90,
        value_bytes: 64,
        seed: 0xbe9c,
    }
}

/// A WHISPER configuration small enough for per-iteration benching.
#[must_use]
pub fn bench_whisper_config() -> WhisperConfig {
    WhisperConfig {
        txns: 300,
        records: 512,
        pmo_bytes: 8 << 20,
        per_access_guard: true,
        seed: 0xbe9c,
    }
}

/// Runs one micro benchmark under one scheme (measured window only).
#[must_use]
pub fn run_micro_once(
    bench: MicroBench,
    active: u32,
    kind: SchemeKind,
    sim: &SimConfig,
) -> ReplayReport {
    let mut workload = MicroWorkload::new(bench, bench_micro_config(active));
    pmo_experiments::run_windowed(&mut workload, kind, sim, pmo_experiments::RunOptions::default())
}

/// Runs one WHISPER benchmark under one scheme (measured window only).
#[must_use]
pub fn run_whisper_once(bench: WhisperBench, kind: SchemeKind, sim: &SimConfig) -> ReplayReport {
    let mut workload = WhisperWorkload::new(bench, bench_whisper_config());
    pmo_experiments::run_windowed(&mut workload, kind, sim, pmo_experiments::RunOptions::default())
}
