//! One bench target per paper *table*: II, V, VI, VII, VIII.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pmo_bench::{run_micro_once, run_whisper_once};
use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::{MicroBench, WhisperBench};

/// Table II: configuration construction and rendering.
fn table2_params(c: &mut Criterion) {
    c.bench_function("table2_params", |b| {
        b.iter(|| {
            let cfg = SimConfig::isca2020();
            black_box(format!("{cfg}"))
        });
    });
}

/// Table V kernel: one WHISPER benchmark replayed under the four schemes
/// the table compares.
fn table5_whisper(c: &mut Criterion) {
    let sim = SimConfig::isca2020();
    let mut group = c.benchmark_group("table5_whisper");
    group.sample_size(10);
    for kind in [
        SchemeKind::Unprotected,
        SchemeKind::DefaultMpk,
        SchemeKind::MpkVirt,
        SchemeKind::DomainVirt,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(run_whisper_once(WhisperBench::Echo, kind, &sim)));
        });
    }
    group.finish();
}

/// Table VI kernel: lowerbound vs baseline on a multi-PMO benchmark.
fn table6_lowerbound(c: &mut Criterion) {
    let sim = SimConfig::isca2020();
    let mut group = c.benchmark_group("table6_lowerbound");
    group.sample_size(10);
    for kind in [SchemeKind::Unprotected, SchemeKind::Lowerbound] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(run_micro_once(MicroBench::Avl, 64, kind, &sim)));
        });
    }
    group.finish();
}

/// Table VII kernel: the two proposed designs at a high PMO count, where
/// the breakdown is measured.
fn table7_breakdown(c: &mut Criterion) {
    let sim = SimConfig::isca2020();
    let mut group = c.benchmark_group("table7_breakdown");
    group.sample_size(10);
    for kind in [SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let report = run_micro_once(MicroBench::Rbt, 128, kind, &sim);
                black_box(report.breakdown)
            });
        });
    }
    group.finish();
}

/// Table VIII: the area model (pure computation).
fn table8_area(c: &mut Criterion) {
    let sim = SimConfig::isca2020();
    c.bench_function("table8_area", |b| {
        b.iter(|| {
            let d1 = pmo_protect::mpk_virt_area(&sim, 1024, 1024);
            let d2 = pmo_protect::domain_virt_area(&sim, 1024, 1024);
            black_box((d1, d2))
        });
    });
}

criterion_group!(
    tables,
    table2_params,
    table5_whisper,
    table6_lowerbound,
    table7_breakdown,
    table8_area
);
criterion_main!(tables);
