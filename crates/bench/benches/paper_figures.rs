//! One bench target per paper *figure*: the Figure 6 sweep kernel and the
//! Figure 7 averaging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pmo_bench::run_micro_once;
use pmo_experiments::fig6::{Fig6, Fig6Point, Fig6Series};
use pmo_experiments::fig7::fig7;
use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::MicroBench;

/// Figure 6 kernel: one benchmark at two sweep extremes under the three
/// compared schemes.
fn fig6_sweep(c: &mut Criterion) {
    let sim = SimConfig::isca2020();
    let mut group = c.benchmark_group("fig6_sweep");
    group.sample_size(10);
    for pmos in [16u32, 128] {
        for kind in [SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
            group.bench_with_input(BenchmarkId::new(kind.label(), pmos), &pmos, |b, &pmos| {
                b.iter(|| black_box(run_micro_once(MicroBench::StringSwap, pmos, kind, &sim)));
            });
        }
    }
    group.finish();
}

/// Figure 7 kernel: averaging and speedup computation over a synthetic
/// Figure 6 result (the arithmetic itself, separated from simulation).
fn fig7_average(c: &mut Criterion) {
    let point = |pmos: u32, scale: f64| Fig6Point {
        pmos,
        libmpk_pct: 1000.0 * scale,
        erim_pct: 400.0 * scale,
        dpti_pct: 800.0 * scale,
        mpk_virt_pct: 100.0 * scale,
        domain_virt_pct: 20.0 * scale,
    };
    let f6 = Fig6 {
        series: (0..5)
            .map(|i| Fig6Series {
                bench: "bench",
                points: (0..7).map(|p| point(16 << p, 1.0 + i as f64 * 0.1)).collect(),
            })
            .collect(),
    };
    c.bench_function("fig7_average", |b| {
        b.iter(|| black_box(fig7(black_box(&f6))));
    });
}

criterion_group!(figures, fig6_sweep, fig7_average);
criterion_main!(figures);
