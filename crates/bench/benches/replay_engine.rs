//! Replay-engine lane benchmarks: the full scheme walk on every access,
//! the streamed same-page fast path, and the batched struct-of-arrays
//! block engine, on the same recorded trace. The three lanes produce
//! byte-identical reports (asserted in `pmo-sim`'s equality tests and in
//! `benchtrend`); these benches track how far apart their wall clocks
//! are, per scheme, without the campaign overhead around `benchtrend`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pmo_protect::SchemeKind;
use pmo_sim::Replay;
use pmo_simarch::SimConfig;
use pmo_trace::{block, RecordedTrace, TraceSource};
use pmo_workloads::{MicroBench, MicroConfig, MicroWorkload, Workload};

fn record(bench: MicroBench, pmos: u32, ops: u64) -> RecordedTrace {
    let config = MicroConfig {
        pmos,
        active_pmos: pmos,
        pmo_bytes: 8 << 20,
        initial_nodes: 64,
        ops,
        insert_pct: 90,
        value_bytes: 64,
        seed: 0xbe9c,
    };
    let mut workload = MicroWorkload::new(bench, config);
    let mut trace = RecordedTrace::new();
    workload.setup(&mut trace);
    workload.run(&mut trace);
    trace
}

/// Walk vs streamed-fast vs batched-block replay of a string-swap trace
/// (the paper's common case: long same-domain, same-page runs).
fn replay_lanes(c: &mut Criterion) {
    let sim = SimConfig::isca2020();
    let trace = record(MicroBench::StringSwap, 4, 10_000);
    let blocks = block::block_trace_of(&trace);
    let mut group = c.benchmark_group("replay_lanes");
    group.sample_size(10);
    for kind in [SchemeKind::Unprotected, SchemeKind::DomainVirt, SchemeKind::LibMpk] {
        group.bench_with_input(BenchmarkId::new("walk", kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut replay = Replay::new(kind, &sim);
                replay.set_fast_path(false);
                trace.replay(&mut replay);
                black_box(replay.finish().cycles)
            });
        });
        group.bench_with_input(BenchmarkId::new("streamed", kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut replay = Replay::new(kind, &sim);
                trace.replay(&mut replay);
                black_box(replay.finish().cycles)
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut replay = Replay::new(kind, &sim);
                replay.replay_blocks(&blocks);
                black_box(replay.finish().cycles)
            });
        });
    }
    group.finish();
}

/// Block encode/decode round-trip cost in isolation (the zero-copy
/// reader iterates borrowed lanes; decode materializes events).
fn block_codec(c: &mut Criterion) {
    let trace = record(MicroBench::Avl, 8, 2_000);
    let blocks = block::block_trace_of(&trace);
    let bytes = blocks.encode();
    let mut group = c.benchmark_group("block_codec");
    group.sample_size(10);
    group.bench_function("encode", |b| {
        b.iter(|| black_box(block::block_trace_of(&trace).encode().len()));
    });
    group.bench_function("decode_borrowed", |b| {
        b.iter(|| {
            let reader = block::BlockReader::new(&bytes).expect("valid image");
            let mut n = 0u64;
            for lanes in reader.blocks() {
                n += lanes.len() as u64;
            }
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, replay_lanes, block_codec);
criterion_main!(benches);
