//! Microbenchmarks of the paper's new hardware structures in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pmo_protect::{
    Dttlb, DttlbEntry, KeyAllocator, PermissionTable, Pkru, Ptlb, PtlbEntry, RangeRadix,
};
use pmo_simarch::{Policy, SetState};
use pmo_trace::{Perm, PmoId, ThreadId};

const GB1: u64 = 1 << 30;

fn dttlb_lookup(c: &mut Criterion) {
    let mut dttlb = Dttlb::new(16);
    for i in 0..16u32 {
        dttlb.insert(DttlbEntry {
            base: u64::from(i) * GB1,
            granule: GB1,
            pmo: PmoId::new(i + 1),
            key: Some((i % 15 + 1) as u8),
            perm: Perm::ReadWrite,
            dirty: false,
        });
    }
    c.bench_function("dttlb_lookup_hit", |b| {
        let mut va = 0u64;
        b.iter(|| {
            va = (va + GB1) % (16 * GB1);
            black_box(dttlb.lookup(black_box(va)).is_some())
        });
    });
}

fn ptlb_lookup(c: &mut Criterion) {
    let mut ptlb = Ptlb::new(16);
    for i in 0..16u32 {
        ptlb.insert(PtlbEntry { pmo: PmoId::new(i + 1), perm: Perm::ReadOnly, dirty: false });
    }
    c.bench_function("ptlb_lookup_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i % 16 + 1;
            black_box(ptlb.lookup(black_box(PmoId::new(i))).is_some())
        });
    });
}

fn dtt_walk(c: &mut Criterion) {
    // The radix walk behind both the DTT and the DRT: 1024 1GB regions.
    let mut radix: RangeRadix<u32> = RangeRadix::new();
    let base = 0x2000_0000_0000u64;
    for i in 0..1024u64 {
        radix.insert(base + i * GB1, GB1, i as u32);
    }
    c.bench_function("dtt_radix_walk_1024_domains", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 389) % 1024; // co-prime stride
            black_box(radix.lookup(black_box(base + i * GB1 + 0x123)))
        });
    });
}

fn key_allocation(c: &mut Criterion) {
    c.bench_function("key_evict_and_assign", |b| {
        let mut ka = KeyAllocator::new(16);
        for i in 1..=15 {
            ka.alloc(PmoId::new(i)).unwrap();
        }
        let mut next = 100u32;
        b.iter(|| {
            next += 1;
            black_box(ka.evict_and_assign(PmoId::new(next)))
        });
    });
}

fn pkru_update(c: &mut Criterion) {
    c.bench_function("pkru_with_perm", |b| {
        let mut reg = Pkru::ALL_DENIED;
        let mut key = 0u8;
        b.iter(|| {
            key = (key + 1) % 16;
            reg = reg.with_perm(key, Perm::ReadWrite);
            black_box(reg.perm(key))
        });
    });
}

fn permission_table(c: &mut Criterion) {
    let mut pt = PermissionTable::new();
    for i in 1..=1024u32 {
        pt.add_domain(PmoId::new(i));
        pt.set(PmoId::new(i), ThreadId::MAIN, Perm::ReadOnly);
    }
    c.bench_function("permission_table_get_1024_domains", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i % 1024 + 1;
            black_box(pt.get(black_box(PmoId::new(i)), ThreadId::MAIN))
        });
    });
}

fn plru(c: &mut Criterion) {
    c.bench_function("tree_plru_touch_victim_16way", |b| {
        let mut s = SetState::new(Policy::TreePlru, 16);
        let mut way = 0u8;
        b.iter(|| {
            way = (way + 1) % 16;
            s.touch(way);
            black_box(s.victim())
        });
    });
}

criterion_group!(
    components,
    dttlb_lookup,
    ptlb_lookup,
    dtt_walk,
    key_allocation,
    pkru_update,
    permission_table,
    plru
);
criterion_main!(components);
