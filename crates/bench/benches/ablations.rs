//! Ablation benches for the design choices DESIGN.md calls out:
//! DTTLB/PTLB capacity, shootdown cost vs thread count, and
//! context-switch frequency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pmo_bench::bench_micro_config;
use pmo_protect::SchemeKind;
use pmo_sim::Replay;
use pmo_simarch::SimConfig;
use pmo_trace::{ThreadId, TraceEvent, TraceSink};
use pmo_workloads::{MicroBench, MicroWorkload, Workload};

fn run_with(sim: &SimConfig, kind: SchemeKind, active: u32) -> u64 {
    let mut workload = MicroWorkload::new(MicroBench::Rbt, bench_micro_config(active));
    let mut replay = Replay::new(kind, sim);
    workload.setup(&mut replay);
    let snap = replay.snapshot();
    workload.run(&mut replay);
    replay.finish().since(&snap).cycles
}

/// How DTTLB capacity changes design 1's cost (8/16/32 entries).
fn dttlb_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dttlb_capacity");
    group.sample_size(10);
    for entries in [8u32, 16, 64] {
        let mut sim = SimConfig::isca2020();
        sim.dttlb_entries = entries;
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| black_box(run_with(&sim, SchemeKind::MpkVirt, 64)));
        });
    }
    group.finish();
}

/// How PTLB capacity changes design 2's cost (8/16/64 entries).
fn ptlb_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ptlb_capacity");
    group.sample_size(10);
    for entries in [8u32, 16, 64] {
        let mut sim = SimConfig::isca2020();
        sim.ptlb_entries = entries;
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| black_box(run_with(&sim, SchemeKind::DomainVirt, 64)));
        });
    }
    group.finish();
}

/// How shootdown cost scales with thread count (design 1 pays per-thread
/// IPIs; design 2 pays nothing).
fn shootdown_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shootdown_threads");
    group.sample_size(10);
    for threads in [1u32, 8, 64] {
        let mut sim = SimConfig::isca2020();
        sim.threads = threads;
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                let d1 = run_with(&sim, SchemeKind::MpkVirt, 64);
                let d2 = run_with(&sim, SchemeKind::DomainVirt, 64);
                black_box((d1, d2))
            });
        });
    }
    group.finish();
}

/// Context-switch flush costs: a two-thread trace ping-ponging between
/// threads at different quanta.
fn context_switch_quantum(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_context_switch_quantum");
    group.sample_size(20);
    let sim = SimConfig::isca2020();
    for quantum in [8u32, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(quantum), &quantum, |b, &quantum| {
            b.iter(|| {
                let mut replay = Replay::new(SchemeKind::DomainVirt, &sim);
                let base = 0x40_0000_0000u64;
                replay.event(TraceEvent::Attach {
                    pmo: pmo_trace::PmoId::new(1),
                    base,
                    size: 8 << 20,
                    nvm: true,
                });
                for t in 0..2u32 {
                    replay.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(t) });
                    replay.event(TraceEvent::SetPerm {
                        pmo: pmo_trace::PmoId::new(1),
                        perm: pmo_trace::Perm::ReadWrite,
                    });
                }
                let mut thread = 0u32;
                for i in 0..2048u32 {
                    if i % quantum == 0 {
                        thread ^= 1;
                        replay.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(thread) });
                    }
                    replay.load(base + u64::from(i % 1024) * 64, 8);
                }
                black_box(replay.finish().cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    dttlb_capacity,
    ptlb_capacity,
    shootdown_threads,
    context_switch_quantum
);
criterion_main!(ablations);
