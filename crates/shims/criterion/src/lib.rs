//! Vendored stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the slice of the API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock mean over a handful of
//! iterations — no outlier analysis, no HTML reports. When the binary
//! is run without `--bench` (as `cargo test` does for
//! `harness = false` targets) each benchmark body executes exactly
//! once, acting as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode, sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.bench_mode, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: None }
    }
}

/// A named benchmark identifier (`group/name/param`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { repr: format!("{name}/{param}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { repr: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { repr: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { repr: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count used in `--bench` mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Accepted for compatibility; the shim ignores target times.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn effective_samples(&self) -> u64 {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.criterion.bench_mode, self.effective_samples(), &mut f);
        self
    }

    /// Runs one benchmark that closes over an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.criterion.bench_mode, self.effective_samples(), &mut |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark bodies; times the closure given to [`iter`].
///
/// [`iter`]: Bencher::iter
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, bench_mode: bool, samples: u64, f: &mut F) {
    let iters = if bench_mode { samples.max(1) } else { 1 };
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    if bench_mode {
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
        println!("{label}: {per_iter} ns/iter ({} iters)", b.iters);
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body_once_outside_bench_mode() {
        let mut c = Criterion { bench_mode: false, sample_size: 10 };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_respect_sample_size_in_bench_mode() {
        let mut c = Criterion { bench_mode: true, sample_size: 10 };
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| runs += x);
            });
            group.finish();
        }
        assert_eq!(runs, 21);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("walk", 64).to_string(), "walk/64");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
