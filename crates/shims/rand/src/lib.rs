//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the thin slice of the API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`].
//!
//! The generator is SplitMix64, so the streams differ from upstream
//! `rand`. Every consumer in this workspace relies only on seeded
//! determinism, never on a specific upstream sequence, so this is an
//! acceptable (and dependency-free) substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeFrom, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`Rng::gen_range`] endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; panics if the span is empty.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_exclusive: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; panics if `lo > hi`.
    fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The largest representable value (used for open-ended ranges).
    const MAX_VALUE: Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
            const MAX_VALUE: $t = <$t>::MAX;
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between_incl(rng, *self.start(), *self.end())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeFrom<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between_incl(rng, self.start, T::MAX_VALUE)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain
    /// (`f64` draws from `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=64);
            assert!((1..=64).contains(&w));
            let x = rng.gen_range(5i32..8);
            assert!((5..8).contains(&x));
            let y: u32 = rng.gen_range(1u32..);
            assert!(y >= 1);
        }
    }

    #[test]
    fn gen_bool_and_f64_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_and_unsized_receivers() {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            let u: f64 = rng.gen();
            u
        }
        let mut rng = StdRng::seed_from_u64(9);
        let f = sample(&mut rng);
        assert!((0.0..1.0).contains(&f));
    }
}
