//! Vendored stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the slice of proptest it uses: the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`], and [`prop_assert_eq!`] macros,
//! [`strategy::Strategy`] with `prop_map`/`boxed`, [`arbitrary::any`],
//! integer-range and tuple strategies, `prop::collection::{vec,
//! btree_set}`, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberate for a hermetic build:
//!
//! - generation is driven by a seeded SplitMix64 stream derived from
//!   the test's module path and case index, so every run of a given
//!   binary explores the same inputs (fully reproducible failures);
//! - there is **no shrinking** — on failure the offending inputs are
//!   printed verbatim instead;
//! - `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case driver types: config, RNG, and failure values.

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic per-case random stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the stream for case `case` of the test named `name`.
        ///
        /// The seed mixes an FNV-1a hash of the name with the case
        /// index, so distinct tests and distinct cases get distinct,
        /// stable streams.
        #[must_use]
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        }

        /// Builds a stream directly from a seed (used by tests).
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking;
    /// `generate` draws one concrete value from the deterministic
    /// per-case stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; every weight must be nonzero.
        #[must_use]
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight bookkeeping is exhaustive")
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = u128::from(rng.next_u64()) % span;
                    (lo as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start;
                    let span = (<$t>::MAX as i128 - lo as i128) as u128 + 1;
                    let v = u128::from(rng.next_u64()) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo) as u64 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose cardinality falls in `size` (best-effort:
    /// if the element domain is too small the set may come up short).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0usize;
            while out.len() < want && tries < want * 10 + 32 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias of the crate root, so `prop::collection::vec(..)` works.
    pub use crate as prop;
}

/// Defines property tests.
///
/// Mirrors upstream syntax: an optional `#![proptest_config(..)]`
/// header followed by `#[test] fn name(arg in strategy, ..) { .. }`
/// items. Each property runs `config.cases` deterministic cases; on
/// failure the generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(__name, u64::from(__case));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!("case {}/{}:", $(" ", stringify!($arg), " = {:?};"),+),
                    __case, __config.cases $(, &$arg)+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    )) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__e)) => {
                        panic!("[{}] property failed: {}\n  {}", __name, __e, __inputs)
                    }
                    ::std::result::Result::Err(__payload) => {
                        eprintln!("[{}] property panicked\n  {}", __name, __inputs);
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts inside a property body, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let v = Strategy::generate(&(5u64..9), &mut rng);
            assert!((5..9).contains(&v));
            let w = Strategy::generate(&(1u8..=64), &mut rng);
            assert!((1..=64).contains(&w));
            let x = Strategy::generate(&(1u32..), &mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let strat = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::from_seed(11);
        let ones = (0..1000).filter(|_| Strategy::generate(&strat, &mut rng) == 1).count();
        assert!(ones > 700, "weight-9 arm picked only {ones}/1000 times");
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::from_seed(17);
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 1..120), &mut rng);
            assert!((1..120).contains(&v.len()));
            let exact = Strategy::generate(&crate::collection::vec(any::<u8>(), 64usize), &mut rng);
            assert_eq!(exact.len(), 64);
            let s = Strategy::generate(&crate::collection::btree_set(0u64..128, 1..40), &mut rng);
            assert!(!s.is_empty() && s.len() < 40);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(0u64..1000, 3..30);
        let a = Strategy::generate(&strat, &mut TestRng::deterministic("t", 5));
        let b = Strategy::generate(&strat, &mut TestRng::deterministic("t", 5));
        let c = Strategy::generate(&strat, &mut TestRng::deterministic("t", 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies_and_asserts(
            xs in prop::collection::vec(0u32..50, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 20, "len was {}", xs.len());
            let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            if flag {
                prop_assert_ne!(doubled.first().map(|x| x % 2), Some(1));
            }
        }
    }
}
