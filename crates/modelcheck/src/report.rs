//! Campaign results: violations with replayable schedules, per-scenario
//! exploration statistics (including the DPOR reduction factor), and
//! machine-readable JSON.

use std::fmt;

use pmo_analyzer::{json_string, ViolationClass};

use crate::program::Scenario;

/// One invariant violation, anchored to the exact schedule that triggers
/// it: re-running the scenario under [`Violation::schedule`] reproduces
/// the violation deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Scenario that produced the violation.
    pub scenario: String,
    /// Violated invariant's diagnostic class.
    pub class: ViolationClass,
    /// Thread (index) running when the invariant broke.
    pub thread: u32,
    /// 0-based schedule step at which the violation fired.
    pub step: usize,
    /// The full thread-index schedule up to and including `step`.
    pub schedule: Vec<u32>,
    /// What went wrong.
    pub message: String,
}

impl Violation {
    /// The repro schedule in CLI form (`"0.1.0.2"`).
    #[must_use]
    pub fn schedule_string(&self) -> String {
        schedule_string(&self.schedule)
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\":{},\"class\":{},\"thread\":{},\"step\":{},\"schedule\":{},\
             \"message\":{}}}",
            json_string(&self.scenario),
            json_string(self.class.name()),
            self.thread,
            self.step,
            json_string(&self.schedule_string()),
            json_string(&self.message),
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at step {} (thread {}): {} — replay with --replay {}@{}",
            self.scenario,
            self.class,
            self.step,
            self.thread,
            self.message,
            self.scenario,
            self.schedule_string()
        )
    }
}

/// Renders a schedule in CLI form.
#[must_use]
pub fn schedule_string(schedule: &[u32]) -> String {
    schedule.iter().map(u32::to_string).collect::<Vec<_>>().join(".")
}

/// Parses a CLI schedule (`"0.1.0.2"`).
///
/// # Errors
///
/// Returns a description when a component is not a thread index.
pub fn parse_schedule(s: &str) -> Result<Vec<u32>, String> {
    s.split('.')
        .map(|part| part.trim().parse::<u32>().map_err(|_| format!("bad schedule step {part:?}")))
        .collect()
}

/// Exploration statistics and findings for one scenario.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Complete executions explored (each a distinct schedule).
    pub schedules: u64,
    /// Total operations executed across all executions.
    pub steps: u64,
    /// Prefixes pruned because every runnable thread was asleep.
    pub sleep_blocked: u64,
    /// Schedules a reduction-free enumeration would visit (the DPOR
    /// denominator), bounded by the same depth limit.
    pub naive: u128,
    /// Whether the schedule cap was hit before exhausting the space.
    pub truncated: bool,
    /// Distinct violations (first occurrence each), most-severe first.
    pub violations: Vec<Violation>,
    /// Total violation occurrences across all schedules.
    pub violation_count: u64,
}

impl ExploreOutcome {
    /// Fresh (all-zero) outcome for a scenario, with the naive-schedule
    /// denominator precomputed for the given depth bound.
    #[must_use]
    pub fn new(scenario: &Scenario, max_depth: usize) -> Self {
        ExploreOutcome {
            scenario: scenario.name.to_string(),
            schedules: 0,
            steps: 0,
            sleep_blocked: 0,
            naive: naive_schedules(&scenario.program.op_counts(), max_depth),
            truncated: false,
            violations: Vec::new(),
            violation_count: 0,
        }
    }

    /// Whether every explored schedule satisfied every invariant.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        let violations =
            self.violations.iter().map(Violation::to_json).collect::<Vec<_>>().join(",");
        format!(
            "{{\"scenario\":{},\"schedules\":{},\"steps\":{},\"sleep_blocked\":{},\"naive\":{},\
             \"truncated\":{},\"violation_count\":{},\"violations\":[{violations}]}}",
            json_string(&self.scenario),
            self.schedules,
            self.steps,
            self.sleep_blocked,
            self.naive,
            self.truncated,
            self.violation_count,
        )
    }
}

/// A whole campaign: one [`ExploreOutcome`] per explored scenario.
#[derive(Clone, Debug, Default)]
pub struct Campaign {
    /// Per-scenario outcomes, in exploration order.
    pub runs: Vec<ExploreOutcome>,
}

impl Campaign {
    /// Total schedules explored.
    #[must_use]
    pub fn total_schedules(&self) -> u64 {
        self.runs.iter().map(|r| r.schedules).sum()
    }

    /// Total distinct violations.
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.runs.iter().map(|r| r.violations.len()).sum()
    }

    /// Total naive schedules (the reduction denominator).
    #[must_use]
    pub fn total_naive(&self) -> u128 {
        self.runs.iter().map(|r| r.naive).sum()
    }

    /// Whether every scenario passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.runs.iter().all(ExploreOutcome::passed)
    }

    /// JSON document (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        let runs = self.runs.iter().map(ExploreOutcome::to_json).collect::<Vec<_>>().join(",");
        format!(
            "{{\"total_schedules\":{},\"total_naive\":{},\"total_violations\":{},\
             \"passed\":{},\"scenarios\":[{runs}]}}",
            self.total_schedules(),
            self.total_naive(),
            self.total_violations(),
            self.passed(),
        )
    }
}

impl fmt::Display for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>10} {:>12} {:>8} {:>10}",
            "scenario", "explored", "naive", "pruned", "violations"
        )?;
        for run in &self.runs {
            let pruned = if run.naive > 0 {
                format!("{:.0}%", 100.0 - 100.0 * run.schedules as f64 / run.naive as f64)
            } else {
                "-".to_string()
            };
            writeln!(
                f,
                "{:<28} {:>10} {:>12} {:>8} {:>10}{}",
                run.scenario,
                run.schedules,
                run.naive,
                pruned,
                run.violations.len(),
                if run.truncated { " (truncated)" } else { "" },
            )?;
        }
        writeln!(
            f,
            "total: {} schedules explored of {} naive interleavings, {} violation(s)",
            self.total_schedules(),
            self.total_naive(),
            self.total_violations()
        )?;
        for v in self.runs.iter().flat_map(|r| &r.violations) {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Number of schedules a reduction-free enumeration would visit: the
/// count of distinct interleavings of per-thread op sequences, truncated
/// at `depth` steps (each maximal-or-bounded sequence counted once, the
/// same counting the explorer uses).
#[must_use]
pub fn naive_schedules(op_counts: &[usize], depth: usize) -> u128 {
    fn rec(rem: &mut [usize], depth: usize) -> u128 {
        if depth == 0 || rem.iter().all(|&r| r == 0) {
            return 1;
        }
        let mut total = 0u128;
        for t in 0..rem.len() {
            if rem[t] > 0 {
                rem[t] -= 1;
                total = total.saturating_add(rec(rem, depth - 1));
                rem[t] += 1;
            }
        }
        total
    }
    rec(&mut op_counts.to_vec(), depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_counts_are_multinomial_when_unbounded() {
        assert_eq!(naive_schedules(&[2, 2], 24), 6);
        assert_eq!(naive_schedules(&[3, 3], 24), 20);
        assert_eq!(naive_schedules(&[4, 4, 4], 24), 34650);
        assert_eq!(naive_schedules(&[0, 0], 24), 1, "empty program has one (empty) schedule");
    }

    #[test]
    fn naive_counts_respect_depth_bound() {
        // Length-2 prefixes of two 2-op threads: 00, 01, 10, 11.
        assert_eq!(naive_schedules(&[2, 2], 2), 4);
        assert_eq!(naive_schedules(&[2, 2], 1), 2);
    }

    #[test]
    fn schedules_round_trip() {
        let schedule = vec![0, 1, 0, 2, 1];
        assert_eq!(parse_schedule(&schedule_string(&schedule)).unwrap(), schedule);
        assert!(parse_schedule("0.x.1").is_err());
    }
}
