//! Stateless dynamic partial-order reduction (DPOR) over schedules.
//!
//! Flanagan–Godefroid DPOR with sleep sets: a depth-first search over
//! thread schedules that re-executes the [`World`] from its initial state
//! for every explored schedule (stateless model checking). After each
//! complete execution a vector-clock race analysis finds pairs of
//! concurrent dependent operations and seeds backtrack points at the
//! earlier operation's pre-state, so only interleavings that can change
//! the outcome are revisited; sleep sets prune schedules that merely
//! permute independent operations.

use std::collections::BTreeSet;

use pmo_protect::ProtocolBug;

use crate::program::{dependent, Op, Scenario};
use crate::report::{ExploreOutcome, Violation};
use crate::world::{CheckMode, World};

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum schedule length (steps); programs longer than this are
    /// explored up to the bound.
    pub max_depth: usize,
    /// Hard cap on complete executions (defense against state explosion;
    /// the outcome is marked truncated when hit).
    pub max_schedules: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits { max_depth: 24, max_schedules: 250_000 }
    }
}

/// One decision point in the DFS: the state *before* step `depth`.
#[derive(Clone, Debug)]
struct Frame {
    /// The thread chosen at this point on the current path.
    chosen: usize,
    /// Threads that must (eventually) be explored from this state.
    backtrack: BTreeSet<usize>,
    /// Threads whose subtrees from this state are fully explored.
    done: BTreeSet<usize>,
    /// Sleep set on entry: threads whose next operation commutes with
    /// every operation since they were preempted — scheduling them here
    /// would replay an already-explored equivalence class.
    sleep: BTreeSet<usize>,
}

/// Exhaustively explores `scenario` under the given bounds in
/// [`CheckMode::Invariants`], returning statistics and every distinct
/// invariant violation found. A planted `bug` turns the run into a
/// self-validation campaign.
#[must_use]
pub fn explore(
    scenario: &Scenario,
    bug: Option<ProtocolBug>,
    limits: &ExploreLimits,
) -> ExploreOutcome {
    explore_mode(scenario, bug, limits, CheckMode::Invariants)
}

/// [`explore`] with an explicit [`CheckMode`]. In [`CheckMode::Refine`]
/// every completed (non-sleep-blocked) execution additionally runs the
/// world's end-of-execution checks — the noninterference pass — and any
/// leak is reported against the full schedule that produced it.
#[must_use]
pub fn explore_mode(
    scenario: &Scenario,
    bug: Option<ProtocolBug>,
    limits: &ExploreLimits,
    mode: CheckMode,
) -> ExploreOutcome {
    let nthreads = scenario.program.threads.len();
    let kp = scenario.key_pressure;
    let mut frames: Vec<Frame> = Vec::new();
    let mut out = ExploreOutcome::new(scenario, limits.max_depth);
    let mut seen = BTreeSet::new();

    loop {
        // ---- Execute the schedule selected by `frames`, extending it to
        // a maximal (or bounded, or violating) execution. ----
        let mut world = World::with_mode(scenario, bug, mode);
        let mut consumed = vec![0usize; nthreads];
        let mut exec: Vec<(usize, Op)> = Vec::new();
        let mut sleep_blocked = false;
        let mut next_sleep: BTreeSet<usize> = BTreeSet::new();

        loop {
            if exec.len() >= limits.max_depth {
                break;
            }
            let depth = exec.len();
            let chosen = if depth < frames.len() {
                frames[depth].chosen
            } else {
                let enabled: Vec<usize> = (0..nthreads)
                    .filter(|&t| consumed[t] < scenario.program.threads[t].len())
                    .collect();
                if enabled.is_empty() {
                    break; // maximal execution
                }
                let Some(&pick) = enabled.iter().find(|t| !next_sleep.contains(t)) else {
                    // Every runnable thread sleeps: this prefix only
                    // replays an explored equivalence class.
                    sleep_blocked = true;
                    break;
                };
                frames.push(Frame {
                    chosen: pick,
                    backtrack: BTreeSet::from([pick]),
                    done: BTreeSet::new(),
                    sleep: next_sleep.clone(),
                });
                pick
            };
            let op = scenario.program.threads[chosen][consumed[chosen]];
            consumed[chosen] += 1;
            let findings = world.step(chosen as u32, op);
            out.steps += 1;
            exec.push((chosen, op));

            // Sleep set for the next state: previously explored/asleep
            // threads stay asleep only while their next op commutes with
            // what just executed.
            let frame = &frames[depth];
            next_sleep = frame
                .sleep
                .iter()
                .chain(frame.done.iter())
                .copied()
                .filter(|&w| {
                    w != chosen
                        && scenario.program.threads[w]
                            .get(consumed[w])
                            .is_some_and(|&next| !dependent(next, op, kp))
                })
                .collect();

            if !findings.is_empty() {
                let schedule: Vec<u32> = exec.iter().map(|&(t, _)| t as u32).collect();
                for finding in findings {
                    out.violation_count += 1;
                    let key = format!(
                        "{}|{}|{}|{}",
                        finding.class,
                        finding.thread,
                        exec.len() - 1,
                        finding.message
                    );
                    if seen.insert(key) {
                        out.violations.push(Violation {
                            scenario: scenario.name.to_string(),
                            class: finding.class,
                            thread: finding.thread,
                            step: exec.len() - 1,
                            schedule: schedule.clone(),
                            message: finding.message,
                        });
                    }
                }
                break; // prune below the violation
            }
        }

        if sleep_blocked {
            out.sleep_blocked += 1;
        } else {
            out.schedules += 1;
            // End-of-execution checks (noninterference, refine mode only):
            // anchored at the last executed step of this schedule.
            let end = world.end_checks();
            if !end.is_empty() {
                let schedule: Vec<u32> = exec.iter().map(|&(t, _)| t as u32).collect();
                let step = exec.len().saturating_sub(1);
                for finding in end {
                    out.violation_count += 1;
                    let key = format!(
                        "{}|{}|{}|{}",
                        finding.class, finding.thread, step, finding.message
                    );
                    if seen.insert(key) {
                        out.violations.push(Violation {
                            scenario: scenario.name.to_string(),
                            class: finding.class,
                            thread: finding.thread,
                            step,
                            schedule: schedule.clone(),
                            message: finding.message,
                        });
                    }
                }
            }
        }

        // ---- Vector-clock race analysis: seed backtrack points. ----
        analyze_races(&exec, &mut frames, kp, nthreads);

        if out.schedules >= limits.max_schedules {
            out.truncated = true;
            break;
        }

        // ---- Backtrack to the deepest frame with an unexplored choice. ----
        loop {
            let Some(top) = frames.last_mut() else {
                return out; // search space exhausted
            };
            top.done.insert(top.chosen);
            let next = top
                .backtrack
                .iter()
                .find(|t| !top.done.contains(t) && !top.sleep.contains(t))
                .copied();
            if let Some(next) = next {
                top.chosen = next;
                break;
            }
            frames.pop();
        }
    }
    out
}

/// Finds, for every executed step, the last concurrent dependent step of
/// every other thread and inserts the later thread into the backtrack set
/// of the earlier step's pre-state (Flanagan–Godefroid). Clocks order
/// steps by program order plus dependence edges.
fn analyze_races(exec: &[(usize, Op)], frames: &mut [Frame], kp: bool, nthreads: usize) {
    let mut thread_clock: Vec<Vec<u64>> = vec![vec![0; nthreads]; nthreads];
    let mut step_clock: Vec<Vec<u64>> = Vec::with_capacity(exec.len());
    let mut steps_of: Vec<Vec<usize>> = vec![Vec::new(); nthreads];

    for (i, &(p, op)) in exec.iter().enumerate() {
        let mut joins: Vec<usize> = Vec::new();
        for (q, q_steps) in steps_of.iter().enumerate() {
            if q == p {
                continue;
            }
            // Last dependent step of q, scanning backwards.
            let Some(&j) = q_steps.iter().rev().find(|&&j| dependent(exec[j].1, op, kp)) else {
                continue;
            };
            // Concurrent (not already ordered before p's view) → race:
            // exploring p at j's pre-state can reverse the pair.
            if step_clock[j][q] > thread_clock[p][q] && !frames[j].sleep.contains(&p) {
                frames[j].backtrack.insert(p);
            }
            joins.push(j);
        }
        let mut clock = thread_clock[p].clone();
        for j in joins {
            for (slot, &other) in clock.iter_mut().zip(step_clock[j].iter()) {
                *slot = (*slot).max(other);
            }
        }
        clock[p] += 1;
        thread_clock[p] = clock.clone();
        step_clock.push(clock);
        steps_of[p].push(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{model_config, Program};
    use pmo_trace::{AccessKind, Perm, PmoId};

    fn two_thread_scenario(threads: Vec<Vec<Op>>, key_pressure: bool) -> Scenario {
        Scenario {
            name: "unit".into(),
            about: "",
            setup: vec![PmoId::new(1), PmoId::new(2)],
            program: Program { threads },
            config: model_config(if key_pressure { 3 } else { 8 }, 4, 4),
            key_pressure,
        }
    }

    #[test]
    fn independent_threads_collapse_to_one_schedule() {
        let p1 = PmoId::new(1);
        let p2 = PmoId::new(2);
        let scenario = two_thread_scenario(
            vec![
                vec![
                    Op::SetPerm { pmo: p1, perm: Perm::ReadWrite },
                    Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write },
                ],
                vec![
                    Op::SetPerm { pmo: p2, perm: Perm::ReadWrite },
                    Op::Access { pmo: p2, offset: 0, kind: AccessKind::Write },
                ],
            ],
            false,
        );
        let out = explore(&scenario, None, &ExploreLimits::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.naive, 6, "C(4,2) interleavings exist naively");
        assert!(
            out.schedules < 6,
            "DPOR must prune commuting interleavings, explored {}",
            out.schedules
        );
    }

    #[test]
    fn dependent_threads_explore_multiple_schedules() {
        let p1 = PmoId::new(1);
        let scenario = two_thread_scenario(
            vec![
                vec![
                    Op::SetPerm { pmo: p1, perm: Perm::ReadWrite },
                    Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write },
                ],
                vec![Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read }],
            ],
            false,
        );
        let out = explore(&scenario, None, &ExploreLimits::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.schedules > 1, "conflicting accesses need reordering");
        assert!(out.schedules <= out.naive as u64);
    }

    #[test]
    fn exploration_is_deterministic() {
        let p1 = PmoId::new(1);
        let scenario = two_thread_scenario(
            vec![
                vec![
                    Op::SetPerm { pmo: p1, perm: Perm::ReadWrite },
                    Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write },
                    Op::SetPerm { pmo: p1, perm: Perm::None },
                ],
                vec![
                    Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read },
                    Op::SetPerm { pmo: p1, perm: Perm::ReadOnly },
                ],
            ],
            false,
        );
        let a = explore(&scenario, None, &ExploreLimits::default());
        let b = explore(&scenario, None, &ExploreLimits::default());
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.violations, b.violations);
    }
}
