//! `pmo-modelcheck`: stateless DPOR model checking of the PMO coherence
//! protocols.
//!
//! The paper's isolation argument (§IV.B, §VI.D) depends on several
//! *protocol* invariants that individual tests only sample: a DTTLB or
//! TLB entry must never grant through a protection key after the key was
//! evicted and shootdown completed; the PT and PTLB must never disagree
//! about a revoked permission; a thread's PKRU must always reflect
//! exactly its attached set; and the MPK-virtualization and
//! domain-virtualization designs must render identical allow/deny
//! verdicts on every access. This crate checks those invariants over
//! *every* thread interleaving (up to a bound) of small adversarial
//! programs:
//!
//! * [`program`] — the op/program/scenario model and the DPOR dependency
//!   relation;
//! * [`world`] — one explored state: the four verifiable protection
//!   machines run in lockstep against a permission oracle, with the
//!   invariants re-checked after every step;
//! * [`explore`] — Flanagan–Godefroid dynamic partial-order reduction
//!   with sleep sets over stateless re-execution;
//! * [`scenarios`] — the built-in scenario suite and the seeded-bug
//!   self-validation matrix;
//! * [`replay`] — deterministic counterexample replay through
//!   [`pmo_analyzer`] into positioned diagnostics;
//! * [`oracle`] — the predictive-analysis ground truth: exhaustive
//!   feasible-schedule enumeration, deterministic single-schedule
//!   sampling, and the union of manifest violation classes across every
//!   interleaving;
//! * [`spec`] — the executable abstract specification: a permission
//!   oracle state machine with atomic transitions and no hardware state;
//! * [`refine`] — abstraction functions mapping each design's concrete
//!   state back onto the spec, and the perturb-and-compare
//!   noninterference pass;
//! * [`enumerate`] — exhaustive, symmetry-reduced enumeration of every
//!   small-world program up to bounded ops/threads/domains, with a
//!   Burnside closed-form count cross-check.
//!
//! Violations carry the exact schedule that triggers them
//! (`--replay scenario@0.1.0.2`), so every counterexample is a
//! deterministic repro, not a flaky observation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod explore;
pub mod oracle;
pub mod program;
pub mod refine;
pub mod replay;
pub mod report;
pub mod scenarios;
pub mod spec;
pub mod world;

pub use enumerate::{enumerate_canonical, orbit_count, raw_count, to_scenario, WorldBounds};
pub use explore::{explore, explore_mode, ExploreLimits};
pub use oracle::{
    all_schedules, feasible_manifest_classes, manifest_classes, sample_schedule, schedule_trace,
    ScheduleRun,
};
pub use program::{dependent, model_config, Op, Program, Scenario, GB1, POOL_BYTES};
pub use refine::{
    alpha_dom, alpha_dpti, alpha_erim, alpha_mpk, noninterference, AccessObs, NiLeak,
};
pub use replay::{replay_schedule, replay_schedule_mode, ModelCheckPass, ReplayOutcome};
pub use report::{
    naive_schedules, parse_schedule, schedule_string, Campaign, ExploreOutcome, Violation,
};
pub use scenarios::{builtin, find, seeded_checks, SeededCheck};
pub use spec::SpecMachine;
pub use world::{CheckMode, Finding, World};
