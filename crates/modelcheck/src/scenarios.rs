//! The built-in scenario suite: small multi-thread PMO programs chosen so
//! every coherence transition of both designs — key assignment, PLRU key
//! eviction with ranged shootdown, DTTLB invalidation, PKRU rebuild, PTLB
//! fill/writeback/flush, detach teardown — is reachable within a dozen
//! operations, plus the seeded-bug expectations that validate the checker
//! against every plantable [`ProtocolBug`].

use pmo_analyzer::ViolationClass;
use pmo_protect::ProtocolBug;
use pmo_trace::{AccessKind, Perm, PmoId};

use crate::program::{model_config, Op, Program, Scenario};

fn p(raw: u32) -> PmoId {
    PmoId::new(raw)
}

fn sp(pmo: u32, perm: Perm) -> Op {
    Op::SetPerm { pmo: p(pmo), perm }
}

fn ld(pmo: u32, offset: u64) -> Op {
    Op::Access { pmo: p(pmo), offset, kind: AccessKind::Read }
}

fn st(pmo: u32, offset: u64) -> Op {
    Op::Access { pmo: p(pmo), offset, kind: AccessKind::Write }
}

fn dt(pmo: u32) -> Op {
    Op::Detach { pmo: p(pmo) }
}

fn at(pmo: u32) -> Op {
    Op::Attach { pmo: p(pmo) }
}

/// Every built-in scenario, in campaign order.
#[must_use]
pub fn builtin() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "setperm-vs-access".into(),
            about: "SETPERM racing loads/stores on the same domain across two threads",
            setup: vec![p(1), p(2)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), sp(1, Perm::None)],
                    vec![ld(1, 0), sp(2, Perm::ReadWrite), st(2, 0)],
                ],
            },
            config: model_config(8, 4, 4),
            key_pressure: false,
        },
        Scenario {
            name: "disjoint-domains".into(),
            about: "fully independent per-thread domains: the DPOR best case",
            setup: vec![p(1), p(2)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), ld(1, 0), sp(1, Perm::None)],
                    vec![sp(2, Perm::ReadWrite), st(2, 0), ld(2, 0), sp(2, Perm::None)],
                ],
            },
            config: model_config(8, 4, 4),
            key_pressure: false,
        },
        Scenario {
            name: "key-evict-storm".into(),
            about: "3 domains over 2 usable keys: every schedule reassigns a key",
            setup: vec![p(1), p(2), p(3)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), sp(3, Perm::ReadWrite), st(3, 0)],
                    vec![sp(2, Perm::ReadWrite), st(2, 0), ld(2, 4096)],
                ],
            },
            config: model_config(3, 2, 4),
            key_pressure: true,
        },
        Scenario {
            name: "detach-race".into(),
            about: "detach racing in-flight accesses on the same domain",
            setup: vec![p(1), p(2)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), ld(1, 0)],
                    vec![dt(1), sp(2, Perm::ReadWrite), st(2, 0)],
                ],
            },
            config: model_config(8, 4, 4),
            key_pressure: false,
        },
        Scenario {
            name: "attach-detach-reattach".into(),
            about: "detach + re-attach must leave no stale cached grant behind",
            setup: vec![p(1), p(2)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), dt(1), at(1), ld(1, 0)],
                    vec![sp(2, Perm::ReadWrite), st(2, 0), ld(2, 0)],
                ],
            },
            config: model_config(8, 4, 4),
            key_pressure: false,
        },
        Scenario {
            name: "three-thread-handoff".into(),
            about: "three threads trading grants on one domain through context switches",
            setup: vec![p(1), p(2)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), sp(1, Perm::None)],
                    vec![sp(1, Perm::ReadOnly), ld(1, 0)],
                    vec![sp(2, Perm::ReadWrite), st(2, 0), ld(1, 4096)],
                ],
            },
            config: model_config(8, 4, 4),
            key_pressure: false,
        },
        Scenario {
            name: "ptlb-writeback".into(),
            about: "2-entry PTLB: capacity evictions write dirty grants back to the PT",
            setup: vec![p(1), p(2), p(3)],
            program: Program {
                threads: vec![
                    vec![
                        sp(1, Perm::ReadWrite),
                        sp(2, Perm::ReadOnly),
                        sp(3, Perm::ReadWrite),
                        st(1, 0),
                    ],
                    vec![sp(3, Perm::None), ld(3, 0), ld(2, 0)],
                ],
            },
            config: model_config(8, 4, 2),
            key_pressure: false,
        },
        Scenario {
            name: "evict-then-access-victim".into(),
            about: "a key-eviction victim re-accessed after its grant is revoked",
            setup: vec![p(1), p(2), p(3)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), sp(1, Perm::None), ld(1, 0)],
                    vec![sp(2, Perm::ReadWrite), st(2, 0), sp(3, Perm::ReadWrite), st(3, 4096)],
                ],
            },
            config: model_config(3, 2, 4),
            key_pressure: true,
        },
        Scenario {
            name: "contention-stress".into(),
            about: "3 threads x 4 ops all on one domain: nothing commutes, full interleaving space",
            setup: vec![p(1)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), ld(1, 4096), sp(1, Perm::None)],
                    vec![sp(1, Perm::ReadOnly), ld(1, 0), sp(1, Perm::ReadWrite), st(1, 4096)],
                    vec![ld(1, 0), sp(1, Perm::None), ld(1, 4096), st(1, 0)],
                ],
            },
            config: model_config(8, 4, 4),
            key_pressure: false,
        },
        Scenario {
            name: "coherence-stress".into(),
            about: "3 threads x 4 ops over 3 domains, 2 keys, 2-entry DTTLB/PTLB",
            setup: vec![p(1), p(2), p(3)],
            program: Program {
                threads: vec![
                    vec![sp(1, Perm::ReadWrite), st(1, 0), ld(1, 4096), sp(1, Perm::None)],
                    vec![sp(2, Perm::ReadWrite), st(2, 0), ld(2, 4096), sp(2, Perm::None)],
                    vec![sp(3, Perm::ReadWrite), st(3, 0), ld(3, 4096), sp(3, Perm::None)],
                ],
            },
            config: model_config(3, 2, 2),
            key_pressure: true,
        },
    ]
}

/// Finds a built-in scenario by name.
#[must_use]
pub fn find(name: &str) -> Option<Scenario> {
    builtin().into_iter().find(|s| s.name == name)
}

/// One seeded-bug validation case: planting `bug` and exploring
/// `scenario` must surface at least one violation of `expect`.
#[derive(Clone, Copy, Debug)]
pub struct SeededCheck {
    /// The planted protocol bug.
    pub bug: ProtocolBug,
    /// The scenario whose schedules expose it.
    pub scenario: &'static str,
    /// The diagnostic class the checker must report.
    pub expect: ViolationClass,
}

/// The self-validation matrix: every plantable bug paired with a scenario
/// that exposes it and the diagnostic class it must produce.
#[must_use]
pub fn seeded_checks() -> Vec<SeededCheck> {
    vec![
        SeededCheck {
            bug: ProtocolBug::SkipEvictionShootdown,
            scenario: "key-evict-storm",
            expect: ViolationClass::StaleKeyGrant,
        },
        SeededCheck {
            bug: ProtocolBug::SkipPkruUpdateOnSetPerm,
            scenario: "setperm-vs-access",
            expect: ViolationClass::PkruDesync,
        },
        SeededCheck {
            bug: ProtocolBug::SkipPtlbInvalidateOnDetach,
            scenario: "attach-detach-reattach",
            expect: ViolationClass::PtlbDesync,
        },
        SeededCheck {
            bug: ProtocolBug::SkipPtlbFlushOnSwitch,
            scenario: "three-thread-handoff",
            expect: ViolationClass::PtlbDesync,
        },
        SeededCheck {
            bug: ProtocolBug::SkipGateExitKeyRestore,
            scenario: "setperm-vs-access",
            expect: ViolationClass::PkruDesync,
        },
        SeededCheck {
            bug: ProtocolBug::StaleCr3OnSwitch,
            scenario: "three-thread-handoff",
            expect: ViolationClass::PtlbDesync,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn scenario_names_are_unique_and_findable() {
        let all = builtin();
        assert!(all.len() >= 6, "the quick campaign needs at least 6 scenarios");
        let names: BTreeSet<_> = all.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), all.len());
        for s in &all {
            assert!(find(&s.name).is_some());
            assert!(!s.program.threads.is_empty());
            assert!(s.program.total_ops() > 0);
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn key_pressure_flag_matches_configs() {
        for s in builtin() {
            let usable = s.config.pkeys - 1;
            let domains = s.setup.len() as u32;
            assert_eq!(
                s.key_pressure,
                domains > usable,
                "{}: {} domains vs {} usable keys",
                s.name,
                domains,
                usable
            );
        }
    }

    #[test]
    fn seeded_checks_reference_real_scenarios() {
        for check in seeded_checks() {
            assert!(find(check.scenario).is_some(), "{} missing", check.scenario);
        }
        assert_eq!(seeded_checks().len(), ProtocolBug::ALL.len());
    }
}
