//! Multi-threaded PMO programs: the inputs the model checker explores.
//!
//! A [`Program`] is a fixed per-thread sequence of protection operations
//! (attach/detach/SETPERM/load/store). The explorer enumerates thread
//! interleavings of these sequences; a *schedule* is the sequence of
//! thread indices chosen at each step.

use std::fmt;

use pmo_simarch::{SetAssocGeometry, SimConfig};
use pmo_trace::{AccessKind, Perm, PmoId, Va};

/// 1 GiB: the domain placement stride (domain `i` lives at `i * GB1`).
pub const GB1: u64 = 1 << 30;

/// Bytes of pool actually backed per model domain (4 pages: small enough
/// to keep page walks cheap, large enough for distinct-page accesses).
pub const POOL_BYTES: u64 = 16 << 10;

/// One protection operation a thread executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Attach `pmo` at its canonical base (`pmo * GB1`, [`POOL_BYTES`]).
    Attach {
        /// Domain to attach.
        pmo: PmoId,
    },
    /// Detach `pmo`.
    Detach {
        /// Domain to detach.
        pmo: PmoId,
    },
    /// SETPERM: set the executing thread's permission for `pmo`.
    SetPerm {
        /// Target domain.
        pmo: PmoId,
        /// New absolute permission.
        perm: Perm,
    },
    /// A load/store at `pmo`'s base plus `offset` (< [`POOL_BYTES`]).
    Access {
        /// Target domain.
        pmo: PmoId,
        /// Byte offset inside the pool.
        offset: u64,
        /// Read or write.
        kind: AccessKind,
    },
}

impl Op {
    /// The domain this operation targets.
    #[must_use]
    pub fn pmo(self) -> PmoId {
        match self {
            Op::Attach { pmo }
            | Op::Detach { pmo }
            | Op::SetPerm { pmo, .. }
            | Op::Access { pmo, .. } => pmo,
        }
    }

    /// Whether the operation can allocate, evict, or free a protection
    /// key under MPK virtualization. Under key pressure (more domains
    /// than usable keys) two such operations never commute — whoever runs
    /// first may steal the other's key — so the DPOR dependency relation
    /// must couple them even across distinct domains.
    #[must_use]
    pub fn key_coupled(self) -> bool {
        matches!(self, Op::Access { .. } | Op::Attach { .. } | Op::Detach { .. })
    }

    /// The canonical base VA of a model domain.
    #[must_use]
    pub fn base_of(pmo: PmoId) -> Va {
        u64::from(pmo.raw()) * GB1
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Attach { pmo } => write!(f, "attach(P{})", pmo.raw()),
            Op::Detach { pmo } => write!(f, "detach(P{})", pmo.raw()),
            Op::SetPerm { pmo, perm } => write!(f, "setperm(P{}, {perm:?})", pmo.raw()),
            Op::Access { pmo, offset, kind } => {
                let op = match kind {
                    AccessKind::Read => "load",
                    AccessKind::Write => "store",
                };
                write!(f, "{op}(P{}+{offset:#x})", pmo.raw())
            }
        }
    }
}

/// Whether two operations of *different* threads are dependent (may not
/// commute). Over-approximates: same-domain operations always conflict,
/// and under key pressure any two key-consuming operations conflict
/// through the shared key allocator.
#[must_use]
pub fn dependent(a: Op, b: Op, key_pressure: bool) -> bool {
    a.pmo() == b.pmo() || (key_pressure && a.key_coupled() && b.key_coupled())
}

/// A fixed multi-threaded program: `threads[i]` is the op sequence of
/// thread index `i` (thread 0 is [`pmo_trace::ThreadId::MAIN`]).
#[derive(Clone, Debug)]
pub struct Program {
    /// Per-thread operation sequences.
    pub threads: Vec<Vec<Op>>,
}

impl Program {
    /// Total operations across all threads (the maximal schedule length).
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Per-thread op counts.
    #[must_use]
    pub fn op_counts(&self) -> Vec<usize> {
        self.threads.iter().map(Vec::len).collect()
    }
}

/// A named, self-contained model-checking input: a program, the domains
/// attached before exploration starts, and the (shrunken) hardware
/// configuration that makes the interesting transitions reachable within
/// the depth bound.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable scenario name (CLI selector, report key). Built-in
    /// scenarios use fixed names; enumerated small-world programs mint
    /// `world@index` names so every counterexample stays addressable.
    pub name: String,
    /// One-line description shown by `--list-scenarios`.
    pub about: &'static str,
    /// Domains attached (with no permissions) before the program runs.
    pub setup: Vec<PmoId>,
    /// The explored program.
    pub program: Program,
    /// Simulated hardware configuration.
    pub config: SimConfig,
    /// Whether the domain count exceeds the usable key count, coupling
    /// key-consuming operations in the dependency relation.
    pub key_pressure: bool,
}

/// The shrunken Table II configuration model checking uses: tiny TLBs,
/// DTTLB, and PTLB so capacity evictions and key reassignment are
/// reachable within a dozen operations, and `pkeys` usable keys so key
/// pressure is a scenario choice rather than a 16-domain prerequisite.
#[must_use]
pub fn model_config(pkeys: u32, dttlb_entries: u32, ptlb_entries: u32) -> SimConfig {
    let mut cfg = SimConfig::isca2020();
    cfg.pkeys = pkeys;
    cfg.dttlb_entries = dttlb_entries;
    cfg.ptlb_entries = ptlb_entries;
    // 8-entry 2-way L1 TLB over a 16-entry 2-way L2: invariant sweeps
    // stay cheap and capacity effects appear with a handful of pages.
    cfg.l1_tlb = SetAssocGeometry::new(8, 2);
    cfg.l2_tlb = SetAssocGeometry::new(16, 2);
    cfg.threads = 3;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_is_symmetric_and_overapproximate() {
        let p1 = PmoId::new(1);
        let p2 = PmoId::new(2);
        let a = Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read };
        let b = Op::SetPerm { pmo: p1, perm: Perm::ReadWrite };
        let c = Op::Access { pmo: p2, offset: 0, kind: AccessKind::Write };
        let d = Op::SetPerm { pmo: p2, perm: Perm::None };
        assert!(dependent(a, b, false), "same domain always conflicts");
        assert!(!dependent(a, c, false), "distinct domains commute without pressure");
        assert!(dependent(a, c, true), "key pressure couples accesses");
        assert!(!dependent(b, d, true), "SETPERM never consumes a key");
        for (x, y) in [(a, b), (a, c), (b, d)] {
            for kp in [false, true] {
                assert_eq!(dependent(x, y, kp), dependent(y, x, kp));
            }
        }
    }

    #[test]
    fn op_display_is_compact() {
        let op = Op::Access { pmo: PmoId::new(3), offset: 4096, kind: AccessKind::Write };
        assert_eq!(op.to_string(), "store(P3+0x1000)");
        assert_eq!(Op::Detach { pmo: PmoId::new(1) }.to_string(), "detach(P1)");
    }
}
