//! The checked state: both hardware designs run in lockstep against a
//! pure permission oracle, with safety invariants evaluated after every
//! operation.
//!
//! The oracle is the paper's §IV.A contract reduced to its logical core:
//! a thread may access an attached PMO iff its last SETPERM for that
//! domain allows the access kind; memory outside any attached PMO is
//! ordinary anonymous memory (always accessible). Both schemes must agree
//! with the oracle (and hence each other) on every allow/deny decision,
//! and their caches — TLB keys, DTTLB, PKRU, PTLB — must never be
//! observably ahead of or behind that contract.

use std::collections::{BTreeMap, BTreeSet};

use pmo_analyzer::ViolationClass;
use pmo_protect::scheme::{DomainVirt, MpkVirt, ProtectionScheme};
use pmo_protect::{Perm, ProtocolBug};
use pmo_simarch::PAGE_BITS;
use pmo_trace::{AccessKind, PmoId, ThreadId, TraceEvent};

use crate::program::{Op, Scenario, POOL_BYTES};

/// One invariant violation detected at a step (scenario/schedule context
/// is attached by the explorer, trace position by the replayer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The violated invariant's diagnostic class.
    pub class: ViolationClass,
    /// Thread (index) that was running when the invariant broke.
    pub thread: u32,
    /// What went wrong, with the observed vs expected state.
    pub message: String,
}

/// The logical permission state: attachment set plus per-(thread, domain)
/// SETPERM grants, updated in schedule order.
#[derive(Clone, Debug, Default)]
struct Oracle {
    attached: BTreeSet<PmoId>,
    perms: BTreeMap<(u32, PmoId), Perm>,
}

impl Oracle {
    fn attach(&mut self, pmo: PmoId) {
        self.attached.insert(pmo);
        self.clear_perms(pmo);
    }

    fn detach(&mut self, pmo: PmoId) {
        self.attached.remove(&pmo);
        self.clear_perms(pmo);
    }

    fn clear_perms(&mut self, pmo: PmoId) {
        self.perms.retain(|&(_, p), _| p != pmo);
    }

    fn set_perm(&mut self, thread: u32, pmo: PmoId, perm: Perm) {
        // SETPERM on a detached domain is a no-op (there is no PT/DTT row
        // to update); the schemes likewise have nothing to write.
        if self.attached.contains(&pmo) {
            self.perms.insert((thread, pmo), perm);
        }
    }

    fn perm(&self, thread: u32, pmo: PmoId) -> Perm {
        self.perms.get(&(thread, pmo)).copied().unwrap_or(Perm::None)
    }

    fn allows(&self, thread: u32, pmo: PmoId, kind: AccessKind) -> bool {
        if !self.attached.contains(&pmo) {
            // Detached: the VA range is ordinary anonymous memory,
            // demand-mapped read-write on touch.
            return true;
        }
        self.perm(thread, pmo).allows(kind)
    }
}

/// Both designs plus the oracle, advanced one operation at a time.
pub struct World {
    mpk: MpkVirt,
    dom: DomainVirt,
    oracle: Oracle,
    /// The trace recorded so far (replayable through `pmo-analyzer`).
    trace: Vec<TraceEvent>,
    current: u32,
    shootdowns_drained: u64,
}

impl World {
    /// Builds the initial state for a scenario, attaching its setup
    /// domains; `bug` plants a [`ProtocolBug`] into whichever scheme the
    /// bug targets (self-validation runs).
    #[must_use]
    pub fn new(scenario: &Scenario, bug: Option<ProtocolBug>) -> Self {
        let mut world = World {
            mpk: MpkVirt::with_bug(&scenario.config, bug),
            dom: DomainVirt::with_bug(&scenario.config, bug),
            oracle: Oracle::default(),
            trace: Vec::new(),
            current: 0,
            shootdowns_drained: 0,
        };
        for &pmo in &scenario.setup {
            world.do_attach(pmo);
        }
        world
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Index of the last recorded trace event (diagnostic anchor).
    #[must_use]
    pub fn position(&self) -> u64 {
        (self.trace.len() as u64).saturating_sub(1)
    }

    fn do_attach(&mut self, pmo: PmoId) {
        let base = Op::base_of(pmo);
        self.mpk.attach(pmo, base, POOL_BYTES, true);
        self.dom.attach(pmo, base, POOL_BYTES, true);
        self.oracle.attach(pmo);
        self.trace.push(TraceEvent::Attach { pmo, base, size: POOL_BYTES, nvm: true });
    }

    /// Executes one operation by thread index `thread` (context-switching
    /// both schemes if it differs from the running thread) and returns
    /// every invariant violation observable afterwards.
    pub fn step(&mut self, thread: u32, op: Op) -> Vec<Finding> {
        if thread != self.current {
            let tid = ThreadId::new(thread);
            self.mpk.context_switch(tid);
            self.dom.context_switch(tid);
            self.current = thread;
            self.trace.push(TraceEvent::ThreadSwitch { thread: tid });
        }
        let mut findings = Vec::new();
        match op {
            Op::Attach { pmo } => self.do_attach(pmo),
            Op::Detach { pmo } => {
                self.mpk.detach(pmo);
                self.dom.detach(pmo);
                self.oracle.detach(pmo);
                self.trace.push(TraceEvent::Detach { pmo });
            }
            Op::SetPerm { pmo, perm } => {
                self.mpk.set_perm(pmo, perm);
                self.dom.set_perm(pmo, perm);
                self.oracle.set_perm(thread, pmo, perm);
                self.trace.push(TraceEvent::SetPerm { pmo, perm });
            }
            Op::Access { pmo, offset, kind } => {
                let va = Op::base_of(pmo) + offset;
                let mpk_ok = self.mpk.access(va, kind).allowed();
                let dom_ok = self.dom.access(va, kind).allowed();
                let expect = self.oracle.allows(thread, pmo, kind);
                if mpk_ok != expect || dom_ok != expect {
                    findings.push(Finding {
                        class: ViolationClass::SchemeDivergence,
                        thread,
                        message: format!(
                            "{op}: oracle {} but MpkVirt {} / DomainVirt {}",
                            verdict(expect),
                            verdict(mpk_ok),
                            verdict(dom_ok),
                        ),
                    });
                }
                // Mirror the replay engine: denied accesses leave no
                // memory event in the trace.
                if expect {
                    self.trace.push(match kind {
                        AccessKind::Read => TraceEvent::Load { va, size: 8 },
                        AccessKind::Write => TraceEvent::Store { va, size: 8 },
                    });
                }
            }
        }
        for ev in self.mpk.drain_events() {
            if matches!(ev, TraceEvent::Shootdown { .. }) {
                self.shootdowns_drained += 1;
            }
            self.trace.push(ev);
        }
        self.check_invariants(&mut findings);
        findings
    }

    /// Evaluates every state invariant against the current machine state.
    fn check_invariants(&self, findings: &mut Vec<Finding>) {
        self.check_shootdown_completeness(findings);
        self.check_stale_tlb_keys(findings);
        self.check_stale_dttlb_keys(findings);
        self.check_pkru(findings);
        self.check_ptlb(findings);
    }

    /// Every key eviction must have published a ranged shootdown (§IV.B:
    /// reassigning a key without invalidating the victim's translations
    /// leaves the old domain readable through the new domain's grants).
    fn check_shootdown_completeness(&self, findings: &mut Vec<Finding>) {
        let evictions = self.mpk.stats().key_evictions;
        if evictions > self.shootdowns_drained {
            findings.push(Finding {
                class: ViolationClass::StaleKeyGrant,
                thread: self.current,
                message: format!(
                    "{evictions} key eviction(s) but only {} ranged shootdown(s) issued",
                    self.shootdowns_drained
                ),
            });
        }
    }

    /// No TLB entry may carry a protection key whose current owner does
    /// not cover that page: such an entry lets the old domain's pages be
    /// checked against the new domain's PKRU bits.
    fn check_stale_tlb_keys(&self, findings: &mut Vec<Finding>) {
        let keys = self.mpk.key_allocator();
        for (vpn, payload) in self.mpk.mmu().tlb.entries() {
            if payload.pkey == 0 {
                continue;
            }
            let va = vpn << PAGE_BITS;
            let owner = keys.owner(payload.pkey);
            let covered = owner
                .and_then(|pmo| self.mpk.mmu().region_of(pmo))
                .is_some_and(|region| region.covers(va));
            if !covered {
                findings.push(Finding {
                    class: ViolationClass::StaleKeyGrant,
                    thread: self.current,
                    message: format!(
                        "TLB entry for va {va:#x} still tagged key {} now owned by {}",
                        payload.pkey,
                        owner.map_or_else(|| "nobody".into(), |p| format!("P{}", p.raw())),
                    ),
                });
            }
        }
    }

    /// A DTTLB entry caching a key must agree with the key allocator.
    fn check_stale_dttlb_keys(&self, findings: &mut Vec<Finding>) {
        let keys = self.mpk.key_allocator();
        for entry in self.mpk.dttlb().entries() {
            if let Some(key) = entry.key {
                if keys.owner(key) != Some(entry.pmo) {
                    findings.push(Finding {
                        class: ViolationClass::StaleKeyGrant,
                        thread: self.current,
                        message: format!(
                            "DTTLB caches key {key} for P{} but the allocator disagrees",
                            entry.pmo.raw()
                        ),
                    });
                }
            }
        }
    }

    /// The materialized PKRU must grant, for every assigned key, exactly
    /// the running thread's logical permission for the owning domain.
    fn check_pkru(&self, findings: &mut Vec<Finding>) {
        let pkru = self.mpk.pkru();
        for (key, pmo) in self.mpk.key_allocator().assignments() {
            let expect = if self.oracle.attached.contains(&pmo) {
                self.oracle.perm(self.current, pmo)
            } else {
                Perm::None
            };
            let actual = pkru.perm(key);
            if actual != expect {
                findings.push(Finding {
                    class: ViolationClass::PkruDesync,
                    thread: self.current,
                    message: format!(
                        "PKRU grants {actual:?} via key {key} for P{} but thread {} holds \
                         {expect:?}",
                        pmo.raw(),
                        self.current
                    ),
                });
            }
        }
    }

    /// Every PTLB entry for an attached domain must hold exactly the
    /// running thread's logical permission (the PTLB is thread-private
    /// state: a context switch flushes it, a detach invalidates it).
    /// Entries for detached domains are ignored — the DRT no longer maps
    /// any VA to them, so they are unreachable until a re-attach makes
    /// them (checkably) stale.
    fn check_ptlb(&self, findings: &mut Vec<Finding>) {
        for entry in self.dom.ptlb().entries() {
            if !self.oracle.attached.contains(&entry.pmo) {
                continue;
            }
            let expect = self.oracle.perm(self.current, entry.pmo);
            if entry.perm != expect {
                findings.push(Finding {
                    class: ViolationClass::PtlbDesync,
                    thread: self.current,
                    message: format!(
                        "PTLB caches {:?} for P{} but thread {} holds {expect:?}",
                        entry.perm,
                        entry.pmo.raw(),
                        self.current
                    ),
                });
            }
        }
    }
}

fn verdict(allowed: bool) -> &'static str {
    if allowed {
        "allows"
    } else {
        "denies"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{model_config, Program};

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "test",
            about: "",
            setup: vec![PmoId::new(1), PmoId::new(2)],
            program: Program { threads: vec![vec![], vec![]] },
            config: model_config(8, 4, 4),
            key_pressure: false,
        }
    }

    #[test]
    fn clean_steps_produce_no_findings() {
        let scenario = tiny_scenario();
        let mut world = World::new(&scenario, None);
        let p1 = PmoId::new(1);
        let steps = [
            (0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite }),
            (0, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write }),
            (1, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read }),
            (1, Op::SetPerm { pmo: p1, perm: Perm::ReadOnly }),
            (1, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read }),
            (0, Op::Detach { pmo: p1 }),
        ];
        for (thread, op) in steps {
            let findings = world.step(thread, op);
            assert!(findings.is_empty(), "unexpected findings at {op}: {findings:?}");
        }
        assert!(world.trace().iter().any(|e| matches!(e, TraceEvent::ThreadSwitch { .. })));
    }

    #[test]
    fn planted_pkru_desync_is_caught() {
        let scenario = tiny_scenario();
        let mut world = World::new(&scenario, Some(ProtocolBug::SkipPkruUpdateOnSetPerm));
        let p1 = PmoId::new(1);
        world.step(0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite });
        // First access assigns the key (PKRU update at assignment is
        // correct), so the planted bug is still invisible...
        assert!(world
            .step(0, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write })
            .is_empty());
        // ...until a SETPERM on the key-holding domain skips the update.
        let findings = world.step(0, Op::SetPerm { pmo: p1, perm: Perm::None });
        assert!(
            findings.iter().any(|f| f.class == ViolationClass::PkruDesync),
            "expected pkru-desync, got {findings:?}"
        );
    }

    #[test]
    fn planted_ptlb_flush_skip_is_caught_on_switch() {
        let scenario = tiny_scenario();
        let mut world = World::new(&scenario, Some(ProtocolBug::SkipPtlbFlushOnSwitch));
        let p1 = PmoId::new(1);
        world.step(0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite });
        let findings = world.step(1, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read });
        assert!(
            findings.iter().any(|f| f.class == ViolationClass::PtlbDesync
                || f.class == ViolationClass::SchemeDivergence),
            "stale PTLB for the incoming thread must be caught, got {findings:?}"
        );
    }
}
