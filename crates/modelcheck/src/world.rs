//! The checked state: both hardware designs run in lockstep against the
//! executable abstract specification ([`SpecMachine`]), with safety
//! checks evaluated after every operation.
//!
//! The spec is the paper's §IV.A contract reduced to its logical core:
//! a thread may access an attached PMO iff its last SETPERM for that
//! domain allows the access kind; memory outside any attached PMO is
//! ordinary anonymous memory (always accessible). Both schemes must agree
//! with the spec (and hence each other) on every allow/deny decision,
//! and their caches — TLB keys, DTTLB, PKRU, PTLB — must never be
//! observably ahead of or behind that contract.
//!
//! Two check modes share this machinery:
//!
//! * [`CheckMode::Invariants`] — the original campaign: verdict
//!   comparison plus the five cache-coherence invariants, each reported
//!   under its own diagnostic class.
//! * [`CheckMode::Refine`] — the refinement checker: additionally
//!   compares the abstraction of each concrete machine
//!   ([`crate::refine::alpha_mpk`], [`crate::refine::alpha_dom`]) against
//!   the spec state after every step, reports *every* divergence —
//!   verdict, cache, or abstraction — uniformly as
//!   `refinement-divergence` (the underlying condition is named in the
//!   message), records an [`AccessObs`] per access, and runs the
//!   perturb-and-compare noninterference pass over the recorded
//!   observations at the end of each execution ([`World::end_checks`]).

use pmo_analyzer::ViolationClass;
use pmo_protect::scheme::{DomainVirt, Dpti, Erim, MpkVirt, ProtectionScheme};
use pmo_protect::{Perm, ProtocolBug};
use pmo_simarch::PAGE_BITS;
use pmo_trace::{AccessKind, PmoId, ThreadId, TraceEvent};

use crate::program::{Op, Scenario, POOL_BYTES};
use crate::refine::{
    alpha_dom, alpha_dpti, alpha_erim, alpha_mpk, noninterference_all, render_abs, spec_state,
    AccessObs,
};
use crate::spec::SpecMachine;

/// One invariant violation detected at a step (scenario/schedule context
/// is attached by the explorer, trace position by the replayer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The violated invariant's diagnostic class.
    pub class: ViolationClass,
    /// Thread (index) that was running when the invariant broke.
    pub thread: u32,
    /// What went wrong, with the observed vs expected state.
    pub message: String,
}

/// Which checks run after every step (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckMode {
    /// Verdict comparison + the five cache invariants (per-class
    /// diagnostics). The original campaign mode.
    #[default]
    Invariants,
    /// Invariants plus abstraction-function equality after every step,
    /// all reported as `refinement-divergence`, plus the end-of-execution
    /// noninterference pass.
    Refine,
}

/// Every concrete machine — the paper's two designs plus the
/// related-work schemes ERIM and DPTI — run in lockstep against the spec
/// machine, advanced one operation at a time.
pub struct World {
    mpk: MpkVirt,
    dom: DomainVirt,
    erim: Erim,
    dpti: Dpti,
    spec: SpecMachine,
    mode: CheckMode,
    bug: Option<ProtocolBug>,
    /// The trace recorded so far (replayable through `pmo-analyzer`).
    trace: Vec<TraceEvent>,
    /// Access observations recorded for the noninterference pass
    /// (refine mode only; empty otherwise).
    obs: Vec<AccessObs>,
    current: u32,
    shootdowns_drained: u64,
}

impl World {
    /// Builds the initial state for a scenario in [`CheckMode::Invariants`],
    /// attaching its setup domains; `bug` plants a [`ProtocolBug`] into
    /// whichever scheme the bug targets (self-validation runs).
    #[must_use]
    pub fn new(scenario: &Scenario, bug: Option<ProtocolBug>) -> Self {
        Self::with_mode(scenario, bug, CheckMode::Invariants)
    }

    /// Builds the initial state with an explicit check mode.
    #[must_use]
    pub fn with_mode(scenario: &Scenario, bug: Option<ProtocolBug>, mode: CheckMode) -> Self {
        let mut world = World {
            mpk: MpkVirt::with_bug(&scenario.config, bug),
            dom: DomainVirt::with_bug(&scenario.config, bug),
            erim: Erim::with_bug(&scenario.config, bug),
            dpti: Dpti::with_bug(&scenario.config, bug),
            spec: SpecMachine::new(),
            mode,
            bug,
            trace: Vec::new(),
            obs: Vec::new(),
            current: 0,
            shootdowns_drained: 0,
        };
        for &pmo in &scenario.setup {
            world.do_attach(pmo);
        }
        world
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The spec machine's current state.
    #[must_use]
    pub fn spec(&self) -> &SpecMachine {
        &self.spec
    }

    /// The access observations recorded so far (refine mode).
    #[must_use]
    pub fn observations(&self) -> &[AccessObs] {
        &self.obs
    }

    /// Index of the last recorded trace event (diagnostic anchor).
    #[must_use]
    pub fn position(&self) -> u64 {
        (self.trace.len() as u64).saturating_sub(1)
    }

    fn do_attach(&mut self, pmo: PmoId) {
        // EEXIST semantics: attaching an attached domain is a no-op at
        // the World level — the spec refuses, so the schemes (which would
        // panic on a double attach, as the real syscall would fail) are
        // never called and no trace event is recorded.
        if !self.spec.attach(pmo) {
            return;
        }
        let base = Op::base_of(pmo);
        self.mpk.attach(pmo, base, POOL_BYTES, true);
        self.dom.attach(pmo, base, POOL_BYTES, true);
        self.erim.attach(pmo, base, POOL_BYTES, true);
        self.dpti.attach(pmo, base, POOL_BYTES, true);
        self.trace.push(TraceEvent::Attach { pmo, base, size: POOL_BYTES, nvm: true });
    }

    /// Executes one operation by thread index `thread` (context-switching
    /// both schemes if it differs from the running thread) and returns
    /// every violation observable afterwards.
    pub fn step(&mut self, thread: u32, op: Op) -> Vec<Finding> {
        if thread != self.current {
            let tid = ThreadId::new(thread);
            self.mpk.context_switch(tid);
            self.dom.context_switch(tid);
            self.erim.context_switch(tid);
            self.dpti.context_switch(tid);
            self.current = thread;
            self.trace.push(TraceEvent::ThreadSwitch { thread: tid });
        }
        let mut findings = Vec::new();
        match op {
            Op::Attach { pmo } => self.do_attach(pmo),
            Op::Detach { pmo } => {
                // ENOENT semantics, mirroring do_attach.
                if self.spec.detach(pmo) {
                    self.mpk.detach(pmo);
                    self.dom.detach(pmo);
                    self.erim.detach(pmo);
                    self.dpti.detach(pmo);
                    self.trace.push(TraceEvent::Detach { pmo });
                    // The schemes invalidate their cached translations
                    // synchronously inside detach, so the canonical trace
                    // records the revoke as settled. The detach-time
                    // invalidation-skip bug omits exactly this record,
                    // leaving the stale window open at trace level too.
                    if self.bug != Some(ProtocolBug::SkipPtlbInvalidateOnDetach) {
                        self.trace.push(TraceEvent::Shootdown { pmo });
                    }
                }
            }
            Op::SetPerm { pmo, perm } => {
                self.mpk.set_perm(pmo, perm);
                self.dom.set_perm(pmo, perm);
                self.erim.set_perm(pmo, perm);
                self.dpti.set_perm(pmo, perm);
                self.spec.set_perm(thread, pmo, perm);
                self.trace.push(TraceEvent::SetPerm { pmo, perm });
            }
            Op::Access { pmo, offset, kind } => {
                let va = Op::base_of(pmo) + offset;
                let mpk_ok = self.mpk.access(va, kind).allowed();
                let dom_ok = self.dom.access(va, kind).allowed();
                let erim_ok = self.erim.access(va, kind).allowed();
                let dpti_ok = self.dpti.access(va, kind).allowed();
                let expect = self.spec.allows(thread, pmo, kind);
                if mpk_ok != expect || dom_ok != expect || erim_ok != expect || dpti_ok != expect {
                    findings.push(Finding {
                        class: ViolationClass::SchemeDivergence,
                        thread,
                        message: format!(
                            "{op}: spec {} but MpkVirt {} / DomainVirt {} / Erim {} / Dpti {}",
                            verdict(expect),
                            verdict(mpk_ok),
                            verdict(dom_ok),
                            verdict(erim_ok),
                            verdict(dpti_ok),
                        ),
                    });
                }
                if self.mode == CheckMode::Refine {
                    self.obs.push(AccessObs {
                        thread,
                        pmo,
                        offset,
                        kind,
                        attached: self.spec.is_attached(pmo),
                        spec_allowed: expect,
                        mpk_allowed: mpk_ok,
                        dom_allowed: dom_ok,
                        erim_allowed: erim_ok,
                        dpti_allowed: dpti_ok,
                    });
                }
                // Mirror the replay engine: denied accesses leave no
                // memory event in the trace.
                if expect {
                    self.trace.push(match kind {
                        AccessKind::Read => TraceEvent::Load { va, size: 8 },
                        AccessKind::Write => TraceEvent::Store { va, size: 8 },
                    });
                }
            }
        }
        for ev in self.mpk.drain_events() {
            if matches!(ev, TraceEvent::Shootdown { .. }) {
                self.shootdowns_drained += 1;
            }
            self.trace.push(ev);
        }
        // ERIM and DPTI publish their own gate-exit/revoke settle events.
        // The recorded trace (and the eviction-completeness count, which
        // is MpkVirt's contract) stays canonical against MpkVirt, so
        // these are drained but not re-recorded.
        let _ = self.erim.drain_events();
        let _ = self.dpti.drain_events();
        self.check_invariants(&mut findings);
        if self.mode == CheckMode::Refine {
            self.check_alpha(&mut findings);
            for f in &mut findings {
                if f.class != ViolationClass::RefinementDivergence {
                    f.message = format!("{}: {}", f.class.name(), f.message);
                    f.class = ViolationClass::RefinementDivergence;
                }
            }
        }
        findings
    }

    /// End-of-execution checks: in refine mode, the perturb-and-compare
    /// noninterference pass over every recorded access observation, one
    /// sweep per domain the program touched. Empty in invariants mode.
    #[must_use]
    pub fn end_checks(&self) -> Vec<Finding> {
        if self.mode != CheckMode::Refine {
            return Vec::new();
        }
        noninterference_all(&self.obs, &self.spec)
            .into_iter()
            .map(|leak| Finding {
                class: ViolationClass::NoninterferenceLeak,
                thread: leak.thread,
                message: leak.message,
            })
            .collect()
    }

    /// Simulation-relation core: the abstraction of each concrete machine
    /// must equal the spec state exactly after every step.
    fn check_alpha(&self, findings: &mut Vec<Finding>) {
        let spec = spec_state(&self.spec);
        let mpk = alpha_mpk(&self.mpk);
        if mpk != spec {
            findings.push(Finding {
                class: ViolationClass::RefinementDivergence,
                thread: self.current,
                message: format!(
                    "alpha-mpk: abstraction {} != spec {}",
                    render_abs(&mpk),
                    render_abs(&spec)
                ),
            });
        }
        let dom = alpha_dom(&self.dom, self.current);
        if dom != spec {
            findings.push(Finding {
                class: ViolationClass::RefinementDivergence,
                thread: self.current,
                message: format!(
                    "alpha-dom: abstraction {} != spec {}",
                    render_abs(&dom),
                    render_abs(&spec)
                ),
            });
        }
        let erim = alpha_erim(&self.erim);
        if erim != spec {
            findings.push(Finding {
                class: ViolationClass::RefinementDivergence,
                thread: self.current,
                message: format!(
                    "alpha-erim: abstraction {} != spec {}",
                    render_abs(&erim),
                    render_abs(&spec)
                ),
            });
        }
        let dpti = alpha_dpti(&self.dpti);
        if dpti != spec {
            findings.push(Finding {
                class: ViolationClass::RefinementDivergence,
                thread: self.current,
                message: format!(
                    "alpha-dpti: abstraction {} != spec {}",
                    render_abs(&dpti),
                    render_abs(&spec)
                ),
            });
        }
    }

    /// Evaluates every state invariant against the current machine state.
    fn check_invariants(&self, findings: &mut Vec<Finding>) {
        self.check_shootdown_completeness(findings);
        self.check_stale_tlb_keys(findings);
        self.check_stale_dttlb_keys(findings);
        self.check_pkru(findings);
        self.check_ptlb(findings);
        self.check_erim_pkru(findings);
        self.check_dpti_space(findings);
    }

    /// Every key eviction must have published a ranged shootdown (§IV.B:
    /// reassigning a key without invalidating the victim's translations
    /// leaves the old domain readable through the new domain's grants).
    fn check_shootdown_completeness(&self, findings: &mut Vec<Finding>) {
        let evictions = self.mpk.stats().key_evictions;
        if evictions > self.shootdowns_drained {
            findings.push(Finding {
                class: ViolationClass::StaleKeyGrant,
                thread: self.current,
                message: format!(
                    "{evictions} key eviction(s) but only {} ranged shootdown(s) issued",
                    self.shootdowns_drained
                ),
            });
        }
    }

    /// No TLB entry may carry a protection key whose current owner does
    /// not cover that page: such an entry lets the old domain's pages be
    /// checked against the new domain's PKRU bits.
    fn check_stale_tlb_keys(&self, findings: &mut Vec<Finding>) {
        let keys = self.mpk.key_allocator();
        for (vpn, payload) in self.mpk.mmu().tlb.entries() {
            if payload.pkey == 0 {
                continue;
            }
            let va = vpn << PAGE_BITS;
            let owner = keys.owner(payload.pkey);
            let covered = owner
                .and_then(|pmo| self.mpk.mmu().region_of(pmo))
                .is_some_and(|region| region.covers(va));
            if !covered {
                findings.push(Finding {
                    class: ViolationClass::StaleKeyGrant,
                    thread: self.current,
                    message: format!(
                        "TLB entry for va {va:#x} still tagged key {} now owned by {}",
                        payload.pkey,
                        owner.map_or_else(|| "nobody".into(), |p| format!("P{}", p.raw())),
                    ),
                });
            }
        }
    }

    /// A DTTLB entry caching a key must agree with the key allocator.
    fn check_stale_dttlb_keys(&self, findings: &mut Vec<Finding>) {
        let keys = self.mpk.key_allocator();
        for entry in self.mpk.dttlb().entries() {
            if let Some(key) = entry.key {
                if keys.owner(key) != Some(entry.pmo) {
                    findings.push(Finding {
                        class: ViolationClass::StaleKeyGrant,
                        thread: self.current,
                        message: format!(
                            "DTTLB caches key {key} for P{} but the allocator disagrees",
                            entry.pmo.raw()
                        ),
                    });
                }
            }
        }
    }

    /// The materialized PKRU must grant, for every assigned key, exactly
    /// the running thread's logical permission for the owning domain.
    fn check_pkru(&self, findings: &mut Vec<Finding>) {
        let pkru = self.mpk.pkru();
        for (key, pmo) in self.mpk.key_allocator().assignments() {
            let expect = if self.spec.is_attached(pmo) {
                self.spec.perm(self.current, pmo)
            } else {
                Perm::None
            };
            let actual = pkru.perm(key);
            if actual != expect {
                findings.push(Finding {
                    class: ViolationClass::PkruDesync,
                    thread: self.current,
                    message: format!(
                        "PKRU grants {actual:?} via key {key} for P{} but thread {} holds \
                         {expect:?}",
                        pmo.raw(),
                        self.current
                    ),
                });
            }
        }
    }

    /// Every PTLB entry for an attached domain must hold exactly the
    /// running thread's logical permission (the PTLB is thread-private
    /// state: a context switch flushes it, a detach invalidates it).
    /// Entries for detached domains are ignored — the DRT no longer maps
    /// any VA to them, so they are unreachable until a re-attach makes
    /// them (checkably) stale.
    /// ERIM's materialized PKRU must grant, for every key the allocator
    /// has assigned, exactly the running thread's session for the owning
    /// domain. A call gate that skips the restore half of its exit path
    /// (the planted [`ProtocolBug::SkipGateExitKeyRestore`]) leaves a
    /// wider grant in PKRU than the session table records.
    fn check_erim_pkru(&self, findings: &mut Vec<Finding>) {
        let pkru = self.erim.pkru();
        for (key, pmo) in self.erim.key_allocator().assignments() {
            let expect = if self.spec.is_attached(pmo) {
                self.spec.perm(self.current, pmo)
            } else {
                Perm::None
            };
            let actual = pkru.perm(key);
            if actual != expect {
                findings.push(Finding {
                    class: ViolationClass::PkruDesync,
                    thread: self.current,
                    message: format!(
                        "ERIM PKRU grants {actual:?} via key {key} for P{} but thread {} holds \
                         {expect:?}",
                        pmo.raw(),
                        self.current
                    ),
                });
            }
        }
    }

    /// DPTI's loaded address space must be the running thread's: CR3 must
    /// track every context switch, and the rows of the loaded per-thread
    /// table must hold exactly the running thread's logical permission
    /// for each attached domain. A skipped CR3 write (the planted
    /// [`ProtocolBug::StaleCr3OnSwitch`]) leaves the previous thread's
    /// page tables — and all their grants — live under the new thread.
    fn check_dpti_space(&self, findings: &mut Vec<Finding>) {
        if self.dpti.cr3().raw() != self.current {
            findings.push(Finding {
                class: ViolationClass::PtlbDesync,
                thread: self.current,
                message: format!(
                    "DPTI CR3 still points at thread {}'s address space while thread {} runs",
                    self.dpti.cr3().raw(),
                    self.current
                ),
            });
        }
        let loaded = self.dpti.tables().get(&self.dpti.cr3());
        for &pmo in self.spec.attached() {
            let expect = self.spec.perm(self.current, pmo);
            let actual = loaded.and_then(|rows| rows.get(&pmo)).copied().unwrap_or(Perm::None);
            if actual != expect {
                findings.push(Finding {
                    class: ViolationClass::PtlbDesync,
                    thread: self.current,
                    message: format!(
                        "DPTI loaded tables grant {actual:?} for P{} but thread {} holds \
                         {expect:?}",
                        pmo.raw(),
                        self.current
                    ),
                });
            }
        }
    }

    fn check_ptlb(&self, findings: &mut Vec<Finding>) {
        for entry in self.dom.ptlb().entries() {
            if !self.spec.is_attached(entry.pmo) {
                continue;
            }
            let expect = self.spec.perm(self.current, entry.pmo);
            if entry.perm != expect {
                findings.push(Finding {
                    class: ViolationClass::PtlbDesync,
                    thread: self.current,
                    message: format!(
                        "PTLB caches {:?} for P{} but thread {} holds {expect:?}",
                        entry.perm,
                        entry.pmo.raw(),
                        self.current
                    ),
                });
            }
        }
    }
}

fn verdict(allowed: bool) -> &'static str {
    if allowed {
        "allows"
    } else {
        "denies"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{model_config, Program};

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "test".into(),
            about: "",
            setup: vec![PmoId::new(1), PmoId::new(2)],
            program: Program { threads: vec![vec![], vec![]] },
            config: model_config(8, 4, 4),
            key_pressure: false,
        }
    }

    #[test]
    fn clean_steps_produce_no_findings() {
        let scenario = tiny_scenario();
        let mut world = World::new(&scenario, None);
        let p1 = PmoId::new(1);
        let steps = [
            (0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite }),
            (0, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write }),
            (1, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read }),
            (1, Op::SetPerm { pmo: p1, perm: Perm::ReadOnly }),
            (1, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read }),
            (0, Op::Detach { pmo: p1 }),
        ];
        for (thread, op) in steps {
            let findings = world.step(thread, op);
            assert!(findings.is_empty(), "unexpected findings at {op}: {findings:?}");
        }
        assert!(world.trace().iter().any(|e| matches!(e, TraceEvent::ThreadSwitch { .. })));
    }

    #[test]
    fn planted_pkru_desync_is_caught() {
        let scenario = tiny_scenario();
        let mut world = World::new(&scenario, Some(ProtocolBug::SkipPkruUpdateOnSetPerm));
        let p1 = PmoId::new(1);
        world.step(0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite });
        // First access assigns the key (PKRU update at assignment is
        // correct), so the planted bug is still invisible...
        assert!(world
            .step(0, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write })
            .is_empty());
        // ...until a SETPERM on the key-holding domain skips the update.
        let findings = world.step(0, Op::SetPerm { pmo: p1, perm: Perm::None });
        assert!(
            findings.iter().any(|f| f.class == ViolationClass::PkruDesync),
            "expected pkru-desync, got {findings:?}"
        );
    }

    #[test]
    fn planted_ptlb_flush_skip_is_caught_on_switch() {
        let scenario = tiny_scenario();
        let mut world = World::new(&scenario, Some(ProtocolBug::SkipPtlbFlushOnSwitch));
        let p1 = PmoId::new(1);
        world.step(0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite });
        let findings = world.step(1, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read });
        assert!(
            findings.iter().any(|f| f.class == ViolationClass::PtlbDesync
                || f.class == ViolationClass::SchemeDivergence),
            "stale PTLB for the incoming thread must be caught, got {findings:?}"
        );
    }

    #[test]
    fn double_attach_and_detach_are_noops() {
        let scenario = tiny_scenario();
        let mut world = World::new(&scenario, None);
        let p1 = PmoId::new(1);
        let before = world.trace().len();
        assert!(world.step(0, Op::Attach { pmo: p1 }).is_empty(), "EEXIST attach");
        assert_eq!(world.trace().len(), before, "no-op attach records nothing");
        assert!(world.step(0, Op::Detach { pmo: p1 }).is_empty());
        assert!(world.step(0, Op::Detach { pmo: p1 }).is_empty(), "ENOENT detach");
        assert!(world.step(0, Op::Attach { pmo: p1 }).is_empty(), "re-attach after detach");
    }

    #[test]
    fn refine_mode_is_clean_on_clean_runs_and_records_observations() {
        let scenario = tiny_scenario();
        let mut world = World::with_mode(&scenario, None, CheckMode::Refine);
        let p1 = PmoId::new(1);
        let steps = [
            (0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite }),
            (0, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write }),
            (1, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read }),
            (0, Op::Detach { pmo: p1 }),
            (0, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Read }),
        ];
        for (thread, op) in steps {
            let findings = world.step(thread, op);
            assert!(findings.is_empty(), "refine divergence at {op}: {findings:?}");
        }
        assert_eq!(world.observations().len(), 3, "one observation per access");
        assert!(world.end_checks().is_empty(), "clean run is noninterferent");
    }

    #[test]
    fn refine_mode_reports_planted_bugs_as_refinement_divergence() {
        let scenario = tiny_scenario();
        let mut world = World::with_mode(
            &scenario,
            Some(ProtocolBug::SkipPkruUpdateOnSetPerm),
            CheckMode::Refine,
        );
        let p1 = PmoId::new(1);
        world.step(0, Op::SetPerm { pmo: p1, perm: Perm::ReadWrite });
        world.step(0, Op::Access { pmo: p1, offset: 0, kind: AccessKind::Write });
        let findings = world.step(0, Op::SetPerm { pmo: p1, perm: Perm::None });
        assert!(
            findings.iter().all(|f| f.class == ViolationClass::RefinementDivergence),
            "refine mode reports uniformly, got {findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.starts_with("pkru-desync:")),
            "the underlying condition is named in the message: {findings:?}"
        );
    }
}
