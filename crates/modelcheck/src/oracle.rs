//! Ground-truth oracle for the predictive-analysis certification.
//!
//! The `predict` campaign takes *one* observed schedule per enumerated
//! program and asks the predictive pass what other schedules could have
//! manifested. This module supplies both sides of the certificate:
//!
//! * [`all_schedules`] — the exhaustive feasible set: every maximal
//!   interleaving of the program's per-thread op sequences, in
//!   deterministic lexicographic order (tractable at enumerator scale,
//!   where programs have a handful of ops — exactly the worlds DPOR
//!   covers);
//! * [`feasible_manifest_classes`] — the union of manifest analyzer
//!   error classes over that whole set: a predicted class is *sound* iff
//!   some real schedule manifests it;
//! * [`sample_schedule`] — the single observed schedule, a pure
//!   function of the scenario name (SplitMix64 over an FNV-1a seed, no
//!   RNG state anywhere): byte-identical across runs and job counts;
//! * [`schedule_trace`] — runs one schedule through a fresh [`World`]
//!   and hands back the raw event trace the analyzer consumes.

use std::collections::BTreeSet;

use pmo_analyzer::{Analyzer, PersistOrderPass, RacePass};
use pmo_protect::ProtocolBug;
use pmo_trace::{TraceEvent, TraceSink};

use crate::program::Scenario;
use crate::world::{CheckMode, Finding, World};

/// FNV-1a over the scenario name: the whole sampling seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 step: a tiny, stateless-friendly mixer (the same choice
/// the workloads use for deterministic pseudo-randomness).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Every maximal interleaving of per-thread op counts, lexicographic by
/// thread index, capped at `cap` schedules. Returns the schedules and
/// whether the cap truncated the enumeration.
#[must_use]
pub fn all_schedules(op_counts: &[usize], cap: usize) -> (Vec<Vec<u32>>, bool) {
    fn rec(
        rem: &mut [usize],
        prefix: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
        cap: usize,
        truncated: &mut bool,
    ) {
        if out.len() == cap {
            *truncated = true;
            return;
        }
        if rem.iter().all(|&r| r == 0) {
            out.push(prefix.clone());
            return;
        }
        for t in 0..rem.len() {
            if rem[t] > 0 {
                rem[t] -= 1;
                prefix.push(t as u32);
                rec(rem, prefix, out, cap, truncated);
                prefix.pop();
                rem[t] += 1;
            }
        }
    }
    let mut out = Vec::new();
    let mut truncated = false;
    rec(&mut op_counts.to_vec(), &mut Vec::new(), &mut out, cap, &mut truncated);
    (out, truncated)
}

/// The one observed schedule the predict campaign analyzes per program:
/// a maximal schedule chosen by hashing the scenario name — a pure
/// function of its input, with no RNG and no global state, so any job
/// count and any run produce the identical schedule.
#[must_use]
pub fn sample_schedule(name: &str, op_counts: &[usize]) -> Vec<u32> {
    let mut state = fnv1a(name);
    let mut rem = op_counts.to_vec();
    let total: usize = rem.iter().sum();
    let mut out = Vec::with_capacity(total);
    loop {
        let enabled: Vec<u32> = (0..rem.len()).filter(|&t| rem[t] > 0).map(|t| t as u32).collect();
        if enabled.is_empty() {
            break;
        }
        let pick = enabled[(splitmix64(&mut state) % enabled.len() as u64) as usize];
        rem[pick as usize] -= 1;
        out.push(pick);
    }
    out
}

/// One schedule executed to completion: the raw trace plus any invariant
/// findings the world reported along the way.
#[derive(Debug)]
pub struct ScheduleRun {
    /// The event stream the analyzer consumes. Events before
    /// `steps[0].0` are scenario setup (attaches by thread 0).
    pub trace: Vec<TraceEvent>,
    /// Per schedule step, the half-open `[start, end)` range of trace
    /// indices that step emitted (lets a consumer map events back onto
    /// operations, e.g. to lift a witness reordering to an op schedule).
    pub steps: Vec<(usize, usize)>,
    /// Protocol-invariant findings (empty on clean worlds).
    pub findings: Vec<Finding>,
}

/// Executes `schedule` against a fresh [`World`] for `scenario` and
/// returns the recorded trace (the predict campaign's input).
///
/// # Errors
///
/// Returns a description when a schedule step names an out-of-range or
/// exhausted thread.
pub fn schedule_trace(
    scenario: &Scenario,
    bug: Option<ProtocolBug>,
    schedule: &[u32],
) -> Result<ScheduleRun, String> {
    let nthreads = scenario.program.threads.len();
    let mut world = World::with_mode(scenario, bug, CheckMode::Invariants);
    let mut consumed = vec![0usize; nthreads];
    let mut findings = Vec::new();
    let mut steps = Vec::with_capacity(schedule.len());
    for (step, &t) in schedule.iter().enumerate() {
        let thread = t as usize;
        if thread >= nthreads {
            return Err(format!("step {step}: thread {t} out of range (program has {nthreads})"));
        }
        let Some(&op) = scenario.program.threads[thread].get(consumed[thread]) else {
            return Err(format!("step {step}: thread {t} has no operations left"));
        };
        consumed[thread] += 1;
        let start = world.trace().len();
        findings.extend(world.step(t, op));
        steps.push((start, world.trace().len()));
    }
    Ok(ScheduleRun { trace: world.trace().to_vec(), steps, findings })
}

/// Feeds a trace through the manifest passes the predictive analysis
/// predicts for (happens-before races / stale windows and persist
/// ordering — the same pair `predict` replays witnesses through) and
/// returns the error class names.
#[must_use]
pub fn manifest_classes(trace: &[TraceEvent], source: &str) -> BTreeSet<&'static str> {
    let mut a = Analyzer::new(source).with_pass(RacePass::new()).with_pass(PersistOrderPass::new());
    for &ev in trace {
        a.event(ev);
    }
    a.finish().errors().map(|d| d.class.name()).collect()
}

/// The DPOR-exhaustive feasible set of manifest violation classes: the
/// union of [`manifest_classes`] over *every* maximal schedule of the
/// program. A predicted class from one observed schedule is sound iff it
/// is in this set; on clean worlds the set is empty, so *any* prediction
/// is a false positive.
///
/// Returns the class set and whether the schedule cap truncated the
/// enumeration (truncated programs cannot certify soundness and are
/// counted separately by the campaign).
///
/// # Errors
///
/// Propagates [`schedule_trace`] failures (impossible for schedules this
/// module enumerates itself).
pub fn feasible_manifest_classes(
    scenario: &Scenario,
    bug: Option<ProtocolBug>,
    cap: usize,
) -> Result<(BTreeSet<&'static str>, bool), String> {
    let counts: Vec<usize> = scenario.program.threads.iter().map(Vec::len).collect();
    let (schedules, truncated) = all_schedules(&counts, cap);
    let mut classes = BTreeSet::new();
    for s in &schedules {
        let run = schedule_trace(scenario, bug, s)?;
        classes.extend(manifest_classes(&run.trace, &scenario.name));
    }
    Ok((classes, truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::naive_schedules;
    use crate::scenarios;

    #[test]
    fn all_schedules_match_the_multinomial_count() {
        let (s, truncated) = all_schedules(&[2, 2], 1 << 20);
        assert!(!truncated);
        assert_eq!(s.len() as u128, naive_schedules(&[2, 2], usize::MAX));
        assert_eq!(s.len(), 6);
        // Lexicographic and duplicate-free.
        let mut sorted = s.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(s, sorted);
    }

    #[test]
    fn all_schedules_cap_is_loud() {
        let (s, truncated) = all_schedules(&[3, 3], 4);
        assert_eq!(s.len(), 4);
        assert!(truncated);
    }

    #[test]
    fn sample_schedule_is_a_pure_function_of_the_name() {
        let a = sample_schedule("w1@17", &[3, 2]);
        let b = sample_schedule("w1@17", &[3, 2]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5, "maximal schedule consumes every op");
        assert_eq!(a.iter().filter(|&&t| t == 0).count(), 3);
        assert_eq!(a.iter().filter(|&&t| t == 1).count(), 2);
        // Different names may differ (and these do, witnessing that the
        // name actually feeds the choice).
        assert_ne!(sample_schedule("w1@17", &[4, 4]), sample_schedule("w1@18", &[4, 4]));
    }

    #[test]
    fn schedule_trace_records_events() {
        let scenario = scenarios::find("setperm-vs-access").unwrap();
        let counts: Vec<usize> = scenario.program.threads.iter().map(Vec::len).collect();
        let run = schedule_trace(&scenario, None, &sample_schedule(&scenario.name, &counts))
            .expect("sampled schedule is executable");
        assert!(!run.trace.is_empty());
        assert!(run.findings.is_empty(), "builtin scenario is clean: {:?}", run.findings);
        assert!(schedule_trace(&scenario, None, &[9]).is_err());
    }

    #[test]
    fn clean_scenario_has_an_empty_feasible_set() {
        let scenario = scenarios::find("setperm-vs-access").unwrap();
        let (classes, truncated) =
            feasible_manifest_classes(&scenario, None, 1 << 16).expect("enumerable");
        assert!(!truncated);
        assert!(classes.is_empty(), "{classes:?}");
    }
}
