//! DPOR model-checking front-end for the PMO coherence protocols.
//!
//! ```text
//! pmo-modelcheck                              # quick campaign: every scenario
//! pmo-modelcheck --list-scenarios
//! pmo-modelcheck --scenario key-evict-storm --depth 16
//! pmo-modelcheck --json modelcheck-report.json
//! pmo-modelcheck --jobs 4                     # fan scenarios across 4 workers
//! pmo-modelcheck --seeded                     # seeded-bug self-validation
//! pmo-modelcheck --replay key-evict-storm@0.1.0.0.1.1.0
//! pmo-modelcheck --replay setperm-vs-access@0.1.0 --bug skip-pkru-update-on-setperm
//! ```
//!
//! Exits non-zero when any explored schedule violates an invariant
//! (campaign mode), when a planted bug escapes detection (`--seeded`), or
//! when a replayed schedule reports a violation.

use std::io;
use std::path::Path;
use std::process::ExitCode;

use pmo_modelcheck::{
    builtin, explore, find, parse_schedule, replay_schedule, scenarios::seeded_checks, Campaign,
    ExploreLimits,
};
use pmo_protect::ProtocolBug;

fn arg_values(flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.next() {
                out.push(v);
            }
        }
    }
    out
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn parse_bug(label: &str) -> Option<ProtocolBug> {
    ProtocolBug::ALL.iter().copied().find(|b| b.label() == label)
}

fn limits_from_args() -> Result<ExploreLimits, String> {
    let mut limits = ExploreLimits::default();
    if let Some(depth) = arg_values("--depth").last() {
        limits.max_depth = depth.parse().map_err(|_| format!("bad --depth {depth:?}"))?;
    }
    if let Some(cap) = arg_values("--max-schedules").last() {
        limits.max_schedules = cap.parse().map_err(|_| format!("bad --max-schedules {cap:?}"))?;
    }
    Ok(limits)
}

fn list_scenarios() {
    println!("{:<26} {:>8} {:>8} {:>6}  about", "scenario", "threads", "ops", "keys");
    for s in builtin() {
        println!(
            "{:<26} {:>8} {:>8} {:>6}  {}",
            s.name,
            s.program.threads.len(),
            s.program.total_ops(),
            s.config.pkeys - 1,
            s.about
        );
    }
    println!("\nreplay: pmo-modelcheck --replay <scenario>@<schedule> [--bug <label>]");
    println!("bugs:   {}", bug_labels().join(", "));
}

fn bug_labels() -> Vec<&'static str> {
    ProtocolBug::ALL.iter().map(|b| b.label()).collect()
}

fn run_replay(spec: &str, bug: Option<ProtocolBug>) -> Result<bool, String> {
    let (name, sched) =
        spec.split_once('@').ok_or_else(|| format!("bad --replay {spec:?} (want name@0.1.0)"))?;
    let scenario = find(name).ok_or_else(|| format!("unknown scenario {name:?}"))?;
    let schedule = parse_schedule(sched)?;
    let outcome = replay_schedule(&scenario, bug, &schedule)?;
    println!("{}", outcome.report);
    Ok(outcome.violations.is_empty())
}

fn run_seeded(limits: &ExploreLimits) -> bool {
    let mut all_caught = true;
    for check in seeded_checks() {
        let scenario = find(check.scenario).expect("seeded checks reference builtin scenarios");
        let out = explore(&scenario, Some(check.bug), limits);
        let witness = out.violations.iter().find(|v| v.class == check.expect);
        match witness {
            Some(v) => {
                // The counterexample must also replay deterministically.
                let replayed = replay_schedule(&scenario, Some(check.bug), &v.schedule)
                    .map(|r| r.violations.iter().any(|rv| rv.class == check.expect))
                    .unwrap_or(false);
                if replayed {
                    println!(
                        "PASS {:<32} -> {} in {} schedules (repro {}@{})",
                        check.bug.label(),
                        check.expect,
                        out.schedules,
                        check.scenario,
                        v.schedule_string()
                    );
                } else {
                    all_caught = false;
                    println!(
                        "FAIL {:<32} -> caught but replay did not reproduce it",
                        check.bug.label()
                    );
                }
            }
            None => {
                all_caught = false;
                println!(
                    "FAIL {:<32} -> expected {} in {}, explored {} schedules, found {:?}",
                    check.bug.label(),
                    check.expect,
                    check.scenario,
                    out.schedules,
                    out.violations.iter().map(|v| v.class).collect::<Vec<_>>()
                );
            }
        }
    }
    all_caught
}

fn run_campaign(
    limits: &ExploreLimits,
    selected: &[String],
    jobs: usize,
) -> Result<Campaign, String> {
    let mut campaign = Campaign::default();
    let scenarios = if selected.is_empty() {
        builtin()
    } else {
        selected
            .iter()
            .map(|name| find(name).ok_or_else(|| format!("unknown scenario {name:?}")))
            .collect::<Result<Vec<_>, _>>()?
    };
    // Scenario explorations are independent; fan them across the workers
    // and keep the runs in the canonical scenario order so the campaign
    // report is byte-identical at any job count.
    campaign.runs = pmo_simarch::pool::parallel_map(jobs, scenarios, |s| explore(&s, None, limits));
    Ok(campaign)
}

fn real_main() -> Result<bool, String> {
    if has_flag("--list-scenarios") {
        list_scenarios();
        return Ok(true);
    }
    let limits = limits_from_args()?;
    let bug = match arg_values("--bug").last() {
        Some(label) => Some(parse_bug(label).ok_or_else(|| {
            format!("unknown --bug {label:?} (known: {})", bug_labels().join(", "))
        })?),
        None => None,
    };
    if let Some(spec) = arg_values("--replay").last() {
        return run_replay(spec, bug);
    }
    if has_flag("--seeded") {
        return Ok(run_seeded(&limits));
    }
    if bug.is_some() {
        return Err("--bug requires --replay (use --seeded for validation campaigns)".into());
    }
    let jobs = match arg_values("--jobs").last() {
        Some(n) => n.parse::<usize>().map_err(|_| format!("bad --jobs {n:?}"))?.max(1),
        None => 1,
    };
    let campaign = run_campaign(&limits, &arg_values("--scenario"), jobs)?;
    print!("{campaign}");
    if let Some(path) = arg_values("--json").last() {
        std::fs::write(Path::new(&path), campaign.to_json())
            .map_err(|e: io::Error| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(campaign.passed())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("pmo-modelcheck: {msg}");
            ExitCode::FAILURE
        }
    }
}
