//! Deterministic counterexample replay.
//!
//! A violating schedule reported by [`crate::explore`] is re-executed
//! verbatim; the [`World`]'s event stream (the same [`TraceEvent`]s the
//! timing simulator records) is then fed through a [`pmo_analyzer::Analyzer`]
//! carrying a [`ModelCheckPass`], producing positioned [`Diagnostic`]s
//! whose `source` is the `scenario@schedule` repro string. Because the
//! world is deterministic, replaying the schedule reproduces the exact
//! violation — this is the checker's evidence trail.

use pmo_analyzer::{
    AnalysisReport, Analyzer, AnalyzerPass, Diagnostic, EventCtx, Severity, ViolationClass,
};
use pmo_protect::ProtocolBug;
use pmo_trace::{TraceEvent, TraceSink};

use crate::program::Scenario;
use crate::report::{schedule_string, Violation};
use crate::world::{CheckMode, World};

/// An [`AnalyzerPass`] that anchors model-checker findings to trace
/// positions: the replay engine records at which event index each
/// invariant broke, and this pass emits the matching [`Diagnostic`] when
/// the analyzed stream reaches that index. This routes counterexamples
/// through the same diagnostic machinery (`--json`, severity filters,
/// positions) as the trace analyzer's own passes.
#[derive(Debug, Default)]
pub struct ModelCheckPass {
    pending: Vec<(u64, ViolationClass, String)>,
}

impl ModelCheckPass {
    /// A pass that will emit `class`/`message` when the stream reaches
    /// `position`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a finding at a trace position.
    pub fn record(&mut self, position: u64, class: ViolationClass, message: String) {
        self.pending.push((position, class, message));
    }
}

impl AnalyzerPass for ModelCheckPass {
    fn name(&self) -> &'static str {
        "modelcheck"
    }

    fn check(&mut self, ctx: EventCtx, _ev: &TraceEvent, out: &mut Vec<Diagnostic>) {
        for (_, class, message) in self.pending.iter().filter(|(pos, ..)| *pos == ctx.pos) {
            out.push(Diagnostic {
                pass: "modelcheck",
                class: *class,
                severity: Severity::Error,
                thread: ctx.thread,
                position: ctx.pos,
                message: message.clone(),
            });
        }
    }

    fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        // Findings past the stream end (empty trace edge case) still
        // surface rather than vanish.
        for (pos, class, message) in self.pending.iter().filter(|(pos, ..)| *pos >= ctx.pos) {
            out.push(Diagnostic {
                pass: "modelcheck",
                class: *class,
                severity: Severity::Error,
                thread: ctx.thread,
                position: *pos,
                message: message.clone(),
            });
        }
    }
}

/// The result of replaying one schedule.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Analyzer report over the replayed trace: one positioned
    /// [`Diagnostic`] per invariant violation, `source` set to the
    /// `scenario@schedule` repro string.
    pub report: AnalysisReport,
    /// The violations in model-checker form (with schedule context).
    pub violations: Vec<Violation>,
}

/// Re-executes `schedule` (a sequence of thread indices) against a fresh
/// [`World`] for `scenario` and runs the resulting event stream through
/// the analyzer.
///
/// The schedule may be a prefix of a maximal execution (violation
/// counterexamples are); steps naming an exhausted or out-of-range
/// thread are rejected.
///
/// # Errors
///
/// Returns a description when a schedule step names a thread with no
/// remaining operations.
pub fn replay_schedule(
    scenario: &Scenario,
    bug: Option<ProtocolBug>,
    schedule: &[u32],
) -> Result<ReplayOutcome, String> {
    replay_schedule_mode(scenario, bug, schedule, CheckMode::Invariants)
}

/// [`replay_schedule`] with an explicit [`CheckMode`]. In
/// [`CheckMode::Refine`] the end-of-execution noninterference pass runs
/// after the last step and its findings are anchored at the final trace
/// position.
///
/// # Errors
///
/// Returns a description when a schedule step names a thread with no
/// remaining operations.
pub fn replay_schedule_mode(
    scenario: &Scenario,
    bug: Option<ProtocolBug>,
    schedule: &[u32],
    mode: CheckMode,
) -> Result<ReplayOutcome, String> {
    let nthreads = scenario.program.threads.len();
    let mut world = World::with_mode(scenario, bug, mode);
    let mut consumed = vec![0usize; nthreads];
    let mut pass = ModelCheckPass::new();
    let mut violations = Vec::new();

    for (step, &t) in schedule.iter().enumerate() {
        let thread = t as usize;
        if thread >= nthreads {
            return Err(format!("step {step}: thread {t} out of range (program has {nthreads})"));
        }
        let Some(&op) = scenario.program.threads[thread].get(consumed[thread]) else {
            return Err(format!("step {step}: thread {t} has no operations left"));
        };
        consumed[thread] += 1;
        for finding in world.step(t, op) {
            pass.record(world.position(), finding.class, finding.message.clone());
            violations.push(Violation {
                scenario: scenario.name.to_string(),
                class: finding.class,
                thread: finding.thread,
                step,
                schedule: schedule[..=step].to_vec(),
                message: finding.message,
            });
        }
    }

    for finding in world.end_checks() {
        pass.record(world.position(), finding.class, finding.message.clone());
        violations.push(Violation {
            scenario: scenario.name.to_string(),
            class: finding.class,
            thread: finding.thread,
            step: schedule.len().saturating_sub(1),
            schedule: schedule.to_vec(),
            message: finding.message,
        });
    }

    let source = format!("{}@{}", scenario.name, schedule_string(schedule));
    let mut analyzer = Analyzer::new(source).with_pass(pass);
    for &ev in world.trace() {
        analyzer.event(ev);
    }
    Ok(ReplayOutcome { report: analyzer.finish(), violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreLimits};
    use crate::scenarios;

    #[test]
    fn clean_replay_produces_clean_report() {
        let scenario = scenarios::find("setperm-vs-access").unwrap();
        // Round-robin over both threads: a complete maximal schedule.
        let out = replay_schedule(&scenario, None, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.report.passed());
        assert!(out.report.events > 0, "replay must produce a trace");
    }

    #[test]
    fn replay_rejects_exhausted_threads() {
        let scenario = scenarios::find("setperm-vs-access").unwrap();
        assert!(replay_schedule(&scenario, None, &[0, 0, 0, 0]).is_err());
        assert!(replay_schedule(&scenario, None, &[7]).is_err());
    }

    #[test]
    fn seeded_counterexamples_replay_deterministically() {
        for check in scenarios::seeded_checks() {
            let scenario = scenarios::find(check.scenario).unwrap();
            let out = explore(&scenario, Some(check.bug), &ExploreLimits::default());
            let witness = out
                .violations
                .iter()
                .find(|v| v.class == check.expect)
                .unwrap_or_else(|| panic!("{:?} not caught in {}", check.bug, check.scenario));
            let replay = replay_schedule(&scenario, Some(check.bug), &witness.schedule)
                .expect("reported schedule must be executable");
            assert!(
                replay.violations.iter().any(|v| v.class == check.expect),
                "{:?}: replay of {} lost the violation",
                check.bug,
                witness.schedule_string()
            );
            let diag = replay
                .report
                .diagnostics
                .iter()
                .find(|d| d.pass == "modelcheck" && d.class == check.expect);
            assert!(diag.is_some(), "{:?}: no positioned diagnostic in report", check.bug);
        }
    }
}
