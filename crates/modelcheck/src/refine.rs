//! The refinement layer: abstraction functions from concrete machine
//! state to [`SpecMachine`] state, and the noninterference pass.
//!
//! # Simulation relation
//!
//! The checker maintains `R(c, s) := alpha(c) == state(s) ∧ caches(c) ⊑ s`
//! for every concrete machine `c` — the paper's two designs plus the
//! related-work schemes ERIM ([`alpha_erim`]: the session table is the
//! logical state, key multiplexing is cache) and DPTI ([`alpha_dpti`]:
//! the union of per-thread page-table rows, CR3 selection checked
//! separately) — after every schedule step:
//!
//! * **Abstraction equality.** [`alpha_mpk`] reads the DTT — the
//!   authoritative store design 1's SETPERM writes through immediately —
//!   and [`alpha_dom`] reads the PT overlaid with the running thread's
//!   PTLB (design 2's SETPERM "completes in the PTLB", so the PTLB *is*
//!   the current thread's authoritative row until writeback). Both must
//!   equal the spec's `(attached set, perm map)` exactly.
//! * **Cache soundness.** The derived caches — TLB protection keys,
//!   DTTLB key copies, the materialized PKRU, PTLB rows for the running
//!   thread — must never be observably ahead of or behind the spec; these
//!   are the five invariants [`crate::world::World`] already sweeps, which
//!   the refine mode reports uniformly as `refinement-divergence`.
//! * **Verdict equality.** Every allow/deny decision of either design
//!   must equal the spec's [`SpecMachine::allows`].
//!
//! # Noninterference
//!
//! Both concrete machines are data-oblivious: no allow/deny verdict, no
//! cache transition, and no cost depends on the *values* loaded or
//! stored. Perturbing a domain's data therefore cannot change the
//! schedule or the verdicts, so the perturb-and-compare run does not need
//! to re-execute the schemes — it only needs to re-run the memory model
//! over the recorded access observations ([`AccessObs`]) with the target
//! domain's contents tagged. A flow exists exactly when a thread that
//! never held a grant on the target domain observes a value that differs
//! between the base and the perturbed run.

use std::collections::BTreeMap;

use pmo_protect::scheme::{DomainVirt, Dpti, Erim, MpkVirt};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId};

use crate::spec::SpecMachine;

/// The abstract `(attached set, perm map)` pair an abstraction function
/// produces, in the spec's canonical form (no [`Perm::None`] rows).
pub type AbsState = (Vec<PmoId>, BTreeMap<(u32, PmoId), Perm>);

/// Abstraction function for design 1 (MPK virtualization).
///
/// The DTT is the authoritative permission store: SETPERM writes it
/// through immediately (invalidating the DTTLB copy), so the abstract
/// perm map is exactly the per-thread rows of every attached domain's
/// DTT entry. Keys, PKRU, DTTLB, and TLB contents are derived caches and
/// do not appear in the abstraction.
#[must_use]
pub fn alpha_mpk(mpk: &MpkVirt) -> AbsState {
    let dtt = mpk.dtt();
    let attached: Vec<PmoId> = dtt.domains().collect();
    let mut perms = BTreeMap::new();
    for &pmo in &attached {
        if let Some(entry) = dtt.entry(pmo) {
            for (thread, perm) in entry.thread_perms() {
                if perm != Perm::None {
                    perms.insert((thread.raw(), pmo), perm);
                }
            }
        }
    }
    (attached, perms)
}

/// Abstraction function for design 2 (domain virtualization).
///
/// The PT holds every thread's rows, but the running thread's truth may
/// still live in its PTLB (SETPERM completes there; writeback happens on
/// eviction or context switch). The abstraction is therefore the PT
/// overlaid, for `current` only, with the PTLB's rows for attached
/// domains. PTLB rows for detached domains are unreachable (the DRT no
/// longer maps any VA to them) and are excluded — the cache-soundness
/// sweep separately rejects them if they ever become reachable again.
#[must_use]
pub fn alpha_dom(dom: &DomainVirt, current: u32) -> AbsState {
    let pt = dom.pt();
    let attached: Vec<PmoId> = pt.domain_ids().collect();
    let mut perms = BTreeMap::new();
    for ((pmo, thread), perm) in pt.entries() {
        if perm != Perm::None {
            perms.insert((thread.raw(), pmo), perm);
        }
    }
    for entry in dom.ptlb().entries() {
        if !pt.contains(entry.pmo) {
            continue;
        }
        if entry.perm == Perm::None {
            perms.remove(&(current, entry.pmo));
        } else {
            perms.insert((current, entry.pmo), entry.perm);
        }
    }
    (attached, perms)
}

/// Abstraction function for ERIM (call-gate sessions over raw MPK).
///
/// ERIM's session table *is* its logical permission state: every call
/// gate writes the thread's `(domain, perm)` session through
/// immediately, and the protection-key multiplexing underneath (key
/// assignments, software remaps under pressure, the materialized PKRU)
/// is derived cache only. The abstraction is therefore the attached
/// region set plus the session rows verbatim.
#[must_use]
pub fn alpha_erim(erim: &Erim) -> AbsState {
    let mut attached: Vec<PmoId> = erim.mmu().regions().map(|r| r.pmo).collect();
    attached.sort_unstable();
    let mut perms = BTreeMap::new();
    for (&(thread, pmo), &perm) in erim.sessions() {
        if perm != Perm::None {
            perms.insert((thread.raw(), pmo), perm);
        }
    }
    (attached, perms)
}

/// Abstraction function for DPTI (per-domain page tables).
///
/// DPTI keeps one page-table permission map per thread; the kernel's
/// SETPERM writes the calling thread's map directly (regardless of which
/// root CR3 currently points at), so the abstraction is the union of
/// every thread's rows. The loaded-root selection (CR3) is derived
/// hardware state: [`crate::world::World`]'s DPTI sweep checks it
/// separately, which is exactly where a stale CR3 becomes observable.
#[must_use]
pub fn alpha_dpti(dpti: &Dpti) -> AbsState {
    let mut attached: Vec<PmoId> = dpti.mmu().regions().map(|r| r.pmo).collect();
    attached.sort_unstable();
    let mut perms = BTreeMap::new();
    for (thread, rows) in dpti.tables() {
        for (&pmo, &perm) in rows {
            if perm != Perm::None {
                perms.insert((thread.raw(), pmo), perm);
            }
        }
    }
    (attached, perms)
}

/// The spec state in [`AbsState`] form, for equality comparison.
#[must_use]
pub fn spec_state(spec: &SpecMachine) -> AbsState {
    (spec.attached().iter().copied().collect(), spec.perms().clone())
}

/// Renders an [`AbsState`] compactly for divergence messages.
#[must_use]
pub fn render_abs(state: &AbsState) -> String {
    let attached = state.0.iter().map(|p| format!("P{}", p.raw())).collect::<Vec<_>>().join(",");
    let perms = state
        .1
        .iter()
        .map(|(&(t, p), perm)| format!("t{t}/P{}={perm:?}", p.raw()))
        .collect::<Vec<_>>()
        .join(",");
    format!("attached[{attached}] perms[{perms}]")
}

/// One recorded load/store observation, the input to the noninterference
/// replay. Recorded for *every* access the program issues, allowed or
/// not, with each machine's verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessObs {
    /// Executing thread index.
    pub thread: u32,
    /// Target domain.
    pub pmo: PmoId,
    /// Byte offset inside the pool.
    pub offset: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Whether the domain was attached (spec view) at access time.
    pub attached: bool,
    /// The spec's verdict.
    pub spec_allowed: bool,
    /// Design 1's verdict.
    pub mpk_allowed: bool,
    /// Design 2's verdict.
    pub dom_allowed: bool,
    /// ERIM's verdict (call-gate sessions over raw MPK).
    pub erim_allowed: bool,
    /// DPTI's verdict (per-domain page tables).
    pub dpti_allowed: bool,
}

impl AccessObs {
    /// Whether any concrete machine admitted the access: a concrete
    /// allow returns data to the program, whatever the spec says, so
    /// this is the noninterference pass's "the load observed" predicate.
    #[must_use]
    pub fn any_concrete_allowed(self) -> bool {
        self.mpk_allowed || self.dom_allowed || self.erim_allowed || self.dpti_allowed
    }
}

/// One noninterference violation: an unauthorized thread observed a
/// value that depends on the target domain's data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NiLeak {
    /// The thread that observed the flow.
    pub thread: u32,
    /// The domain whose data leaked.
    pub target: PmoId,
    /// Index of the observing load in the observation sequence.
    pub obs_index: usize,
    /// What happened.
    pub message: String,
}

/// Initial (pre-perturbation) content of a persistent domain cell: PMO
/// contents exist before the program runs, so they are part of the
/// secret.
fn initial(pmo: PmoId, offset: u64) -> u64 {
    (u64::from(pmo.raw()) << 32) | offset
}

/// The perturbation tag: flips a high bit in every cell of the target
/// domain (initial content and stored values alike).
const TAG: u64 = 1 << 63;

/// Replays the memory model over `obs` twice — base and with `target`'s
/// data perturbed — and reports every load by a thread that never held a
/// grant on `target` whose observed value differs between the runs.
///
/// Memory model: PMO cells persist across detach/re-attach (they are
/// persistent objects); a detached domain's VA range reads/writes
/// ordinary anonymous memory (fresh zero pages, discarded at re-attach),
/// which is never part of any domain's secret. Stores take effect when
/// the spec admits them (authorized data flow defines the secret);
/// loads observe when either concrete design admits them (a concrete
/// allow returns data to the program, whatever the spec says).
///
/// Because both designs are data-oblivious (see module docs), verdicts
/// recorded in `obs` are identical in the perturbed run, and this pure
/// replay is exact — not an approximation of re-executing the machines.
#[must_use]
pub fn noninterference(obs: &[AccessObs], spec: &SpecMachine, target: PmoId) -> Vec<NiLeak> {
    let mut leaks = Vec::new();
    let mut base: BTreeMap<(PmoId, u64), u64> = BTreeMap::new();
    let mut pert: BTreeMap<(PmoId, u64), u64> = BTreeMap::new();
    let mut anon: BTreeMap<(PmoId, u64), u64> = BTreeMap::new();
    for (i, o) in obs.iter().enumerate() {
        match o.kind {
            AccessKind::Write => {
                if !o.spec_allowed {
                    continue;
                }
                let value = i as u64 + 1;
                if o.attached {
                    base.insert((o.pmo, o.offset), value);
                    let tagged = if o.pmo == target { value | TAG } else { value };
                    pert.insert((o.pmo, o.offset), tagged);
                } else {
                    anon.insert((o.pmo, o.offset), value);
                }
            }
            AccessKind::Read => {
                if !o.any_concrete_allowed() {
                    continue;
                }
                if !o.attached {
                    // Anonymous page: same cell in both runs by
                    // construction, never tagged.
                    continue;
                }
                let v_base = base
                    .get(&(o.pmo, o.offset))
                    .copied()
                    .unwrap_or_else(|| initial(o.pmo, o.offset));
                let v_pert = pert.get(&(o.pmo, o.offset)).copied().unwrap_or_else(|| {
                    let v = initial(o.pmo, o.offset);
                    if o.pmo == target {
                        v | TAG
                    } else {
                        v
                    }
                });
                if v_base != v_pert && !spec.ever_granted(o.thread, target) {
                    leaks.push(NiLeak {
                        thread: o.thread,
                        target,
                        obs_index: i,
                        message: format!(
                            "thread {} observes P{} data at +{:#x} (load #{i}) with no grant \
                             ever held on P{}: perturbing P{}'s contents changes the value read",
                            o.thread,
                            target.raw(),
                            o.offset,
                            target.raw(),
                            target.raw(),
                        ),
                    });
                }
            }
        }
    }
    let _ = &anon; // anonymous cells can never differ between runs
    leaks
}

/// Runs [`noninterference`] against every domain that appears in `obs`
/// and returns all leaks, in domain order.
#[must_use]
pub fn noninterference_all(obs: &[AccessObs], spec: &SpecMachine) -> Vec<NiLeak> {
    let mut targets: Vec<PmoId> = obs.iter().map(|o| o.pmo).collect();
    targets.sort_unstable();
    targets.dedup();
    targets.into_iter().flat_map(|t| noninterference(obs, spec, t)).collect()
}

/// Identity check used by tests: the trivial thread used for ThreadId
/// conversion round-trips.
#[must_use]
pub fn thread_of(raw: u32) -> ThreadId {
    ThreadId::new(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p1() -> PmoId {
        PmoId::new(1)
    }

    fn spec_with_grant(thread: u32) -> SpecMachine {
        let mut s = SpecMachine::new();
        s.attach(p1());
        s.set_perm(thread, p1(), Perm::ReadWrite);
        s
    }

    fn obs(thread: u32, kind: AccessKind, allowed: bool) -> AccessObs {
        AccessObs {
            thread,
            pmo: p1(),
            offset: 0,
            kind,
            attached: true,
            spec_allowed: allowed,
            mpk_allowed: allowed,
            dom_allowed: allowed,
            erim_allowed: allowed,
            dpti_allowed: allowed,
        }
    }

    #[test]
    fn authorized_reader_is_not_a_leak() {
        let spec = spec_with_grant(0);
        let trace = [obs(0, AccessKind::Write, true), obs(0, AccessKind::Read, true)];
        assert!(noninterference(&trace, &spec, p1()).is_empty());
    }

    #[test]
    fn unauthorized_concrete_allowed_read_leaks() {
        // Thread 1 never granted; a (buggy) concrete machine lets its
        // read through while the spec denies it.
        let spec = spec_with_grant(0);
        let mut bad = obs(1, AccessKind::Read, false);
        bad.dom_allowed = true;
        let trace = [obs(0, AccessKind::Write, true), bad];
        let leaks = noninterference(&trace, &spec, p1());
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].thread, 1);
        assert_eq!(leaks[0].obs_index, 1);
    }

    #[test]
    fn initial_contents_are_part_of_the_secret() {
        // No store at all: the leaked value is the PMO's pre-existing
        // content.
        let spec = spec_with_grant(0);
        let mut bad = obs(1, AccessKind::Read, false);
        bad.mpk_allowed = true;
        assert_eq!(noninterference(&[bad], &spec, p1()).len(), 1);
    }

    #[test]
    fn denied_reads_and_anonymous_pages_never_leak() {
        let spec = spec_with_grant(0);
        let denied = obs(1, AccessKind::Read, false);
        let mut anon = obs(1, AccessKind::Read, true);
        anon.attached = false;
        assert!(noninterference(&[denied, anon], &spec, p1()).is_empty());
    }

    #[test]
    fn a_leak_through_only_the_new_schemes_is_still_a_leak() {
        // Only DPTI (then only ERIM) lets the unauthorized read through:
        // the observe predicate must cover all four machines.
        let spec = spec_with_grant(0);
        for scheme in 0..2 {
            let mut bad = obs(1, AccessKind::Read, false);
            if scheme == 0 {
                bad.dpti_allowed = true;
            } else {
                bad.erim_allowed = true;
            }
            assert!(bad.any_concrete_allowed());
            let trace = [obs(0, AccessKind::Write, true), bad];
            assert_eq!(noninterference(&trace, &spec, p1()).len(), 1, "scheme {scheme}");
        }
    }

    #[test]
    fn all_targets_sweep_covers_every_domain() {
        let spec = spec_with_grant(0);
        let mut bad = obs(1, AccessKind::Read, false);
        bad.dom_allowed = true;
        let leaks = noninterference_all(&[obs(0, AccessKind::Write, true), bad], &spec);
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].target, p1());
        assert_eq!(thread_of(1).raw(), 1);
    }
}
