//! The executable abstract specification: a permission-oracle state
//! machine over `(thread, domain, perm)` with atomic operations and no
//! hardware state — no TLBs, no keys, no shootdowns, no caches.
//!
//! This is the paper's §IV.A contract reduced to its logical core, now a
//! first-class machine the refinement checker runs in lockstep with the
//! concrete designs:
//!
//! * `ATTACH(d)` — adds `d` to the attached set with no permissions
//!   (every thread starts inaccessible). Attaching an attached domain is
//!   a no-op (`EEXIST` semantics).
//! * `DETACH(d)` — removes `d` and all its permissions. Detaching a
//!   detached domain is a no-op (`ENOENT` semantics).
//! * `SETPERM(t, d, p)` — sets thread `t`'s permission for `d` if `d` is
//!   attached; otherwise a no-op (there is no row to update).
//! * `LOAD`/`STORE(t, d)` — allowed iff `d` is detached (the VA range is
//!   then ordinary anonymous memory, demand-mapped read-write) or `t`'s
//!   current permission for `d` admits the access kind.
//!
//! Every transition is atomic and sequentially consistent in schedule
//! order; the simulation relation in [`crate::refine`] maps concrete
//! machine state (DTT/PKRU, PT/PTLB) back onto this state.

use std::collections::{BTreeMap, BTreeSet};

use pmo_trace::{AccessKind, Perm, PmoId};

/// The abstract permission-oracle state machine.
///
/// The state is exactly `(attached set, (thread, domain) → perm map)`;
/// the perm map is kept canonical (no [`Perm::None`] rows) so it can be
/// compared for equality against abstraction-function output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecMachine {
    attached: BTreeSet<PmoId>,
    perms: BTreeMap<(u32, PmoId), Perm>,
    /// Every `(thread, domain)` pair that ever held a non-`None` grant —
    /// the noninterference pass's notion of "authorized for the domain's
    /// data at some point in this execution".
    granted_ever: BTreeSet<(u32, PmoId)>,
}

impl SpecMachine {
    /// A fresh machine with nothing attached.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `ATTACH(d)`: returns `false` (no-op) if already attached.
    pub fn attach(&mut self, pmo: PmoId) -> bool {
        if !self.attached.insert(pmo) {
            return false;
        }
        self.clear_perms(pmo);
        true
    }

    /// `DETACH(d)`: returns `false` (no-op) if not attached.
    pub fn detach(&mut self, pmo: PmoId) -> bool {
        if !self.attached.remove(&pmo) {
            return false;
        }
        self.clear_perms(pmo);
        true
    }

    fn clear_perms(&mut self, pmo: PmoId) {
        self.perms.retain(|&(_, p), _| p != pmo);
    }

    /// `SETPERM(t, d, p)`: no-op when `d` is detached.
    pub fn set_perm(&mut self, thread: u32, pmo: PmoId, perm: Perm) {
        if !self.attached.contains(&pmo) {
            return;
        }
        if perm == Perm::None {
            self.perms.remove(&(thread, pmo));
        } else {
            self.perms.insert((thread, pmo), perm);
            self.granted_ever.insert((thread, pmo));
        }
    }

    /// The permission `thread` currently holds for `pmo`.
    #[must_use]
    pub fn perm(&self, thread: u32, pmo: PmoId) -> Perm {
        self.perms.get(&(thread, pmo)).copied().unwrap_or(Perm::None)
    }

    /// Whether `pmo` is attached.
    #[must_use]
    pub fn is_attached(&self, pmo: PmoId) -> bool {
        self.attached.contains(&pmo)
    }

    /// The attached set.
    #[must_use]
    pub fn attached(&self) -> &BTreeSet<PmoId> {
        &self.attached
    }

    /// The canonical `(thread, domain) → perm` map (no `None` rows).
    #[must_use]
    pub fn perms(&self) -> &BTreeMap<(u32, PmoId), Perm> {
        &self.perms
    }

    /// Whether `thread` ever held a grant on `pmo` in this execution.
    #[must_use]
    pub fn ever_granted(&self, thread: u32, pmo: PmoId) -> bool {
        self.granted_ever.contains(&(thread, pmo))
    }

    /// The spec's allow/deny verdict for an access.
    #[must_use]
    pub fn allows(&self, thread: u32, pmo: PmoId, kind: AccessKind) -> bool {
        if !self.attached.contains(&pmo) {
            // Detached: the VA range is ordinary anonymous memory,
            // demand-mapped read-write on touch.
            return true;
        }
        self.perm(thread, pmo).allows(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p1() -> PmoId {
        PmoId::new(1)
    }

    #[test]
    fn attach_detach_are_idempotent_noops() {
        let mut s = SpecMachine::new();
        assert!(s.attach(p1()));
        assert!(!s.attach(p1()), "second attach is a no-op");
        assert!(s.detach(p1()));
        assert!(!s.detach(p1()), "second detach is a no-op");
    }

    #[test]
    fn detached_memory_is_anonymous_and_open() {
        let mut s = SpecMachine::new();
        assert!(s.allows(0, p1(), AccessKind::Write), "detached VA = anonymous RW");
        s.attach(p1());
        assert!(!s.allows(0, p1(), AccessKind::Read), "attached domains start inaccessible");
    }

    #[test]
    fn setperm_is_per_thread_and_guarded_by_attachment() {
        let mut s = SpecMachine::new();
        s.set_perm(0, p1(), Perm::ReadWrite);
        assert_eq!(s.perm(0, p1()), Perm::None, "SETPERM on detached domain is a no-op");
        s.attach(p1());
        s.set_perm(0, p1(), Perm::ReadOnly);
        assert!(s.allows(0, p1(), AccessKind::Read));
        assert!(!s.allows(0, p1(), AccessKind::Write));
        assert!(!s.allows(1, p1(), AccessKind::Read), "grants are thread-private");
    }

    #[test]
    fn reattach_clears_grants_and_perm_map_stays_canonical() {
        let mut s = SpecMachine::new();
        s.attach(p1());
        s.set_perm(0, p1(), Perm::ReadWrite);
        s.detach(p1());
        s.attach(p1());
        assert!(!s.allows(0, p1(), AccessKind::Read), "re-attach starts clean");
        s.set_perm(0, p1(), Perm::ReadWrite);
        s.set_perm(0, p1(), Perm::None);
        assert!(s.perms().is_empty(), "None rows are erased, not stored");
        assert!(s.ever_granted(0, p1()), "grant history survives revocation");
        assert!(!s.ever_granted(1, p1()));
    }
}
