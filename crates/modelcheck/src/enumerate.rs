//! Bounded small-world program enumeration: *every* canonical
//! multi-threaded protection program up to `N` total operations over `M`
//! threads and `K` domains.
//!
//! The op alphabet has 7 symbols per domain — attach, detach,
//! SETPERM(None/RO/RW), load, store — so a world has `7K` symbols and
//! `Σ_{n≤N} C(n+M-1, M-1) · (7K)^n` raw programs (ordered thread
//! sequences summing to at most `N` ops). Two programs that differ only
//! by renaming threads or domains explore isomorphic state spaces, so the
//! enumerator emits exactly one representative per orbit of the symmetry
//! group `S_M × S_K`: a program is *canonical* iff it equals the minimum,
//! over all domain relabelings, of its lexicographically sorted thread
//! tuple. The orbit count has a closed form by Burnside's lemma
//! ([`orbit_count`]), which the campaign asserts against the enumerated
//! count — a disagreement means the enumerator dropped or duplicated an
//! equivalence class.

use pmo_trace::{AccessKind, Perm, PmoId};

use crate::program::{Op, Program, Scenario};

/// Op-alphabet symbols per domain (attach, detach, 3 SETPERMs, load,
/// store).
pub const OPS_PER_DOMAIN: usize = 7;

/// Bounds of one enumerated world.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorldBounds {
    /// Maximum total operations across all threads (`N`).
    pub ops: usize,
    /// Thread count (`M`).
    pub threads: usize,
    /// Domain count (`K`); domains are `P1..=PK`.
    pub domains: usize,
}

impl WorldBounds {
    /// Alphabet size: `7K`.
    #[must_use]
    pub fn alphabet(&self) -> usize {
        OPS_PER_DOMAIN * self.domains
    }

    /// The domains of this world, `P1..=PK`.
    #[must_use]
    pub fn domain_ids(&self) -> Vec<PmoId> {
        (1..=self.domains as u32).map(PmoId::new).collect()
    }
}

/// Decodes an alphabet symbol (`0..7K`) into an [`Op`].
#[must_use]
pub fn decode(code: u16) -> Op {
    let pmo = PmoId::new(u32::from(code) / OPS_PER_DOMAIN as u32 + 1);
    match code as usize % OPS_PER_DOMAIN {
        0 => Op::Attach { pmo },
        1 => Op::Detach { pmo },
        2 => Op::SetPerm { pmo, perm: Perm::None },
        3 => Op::SetPerm { pmo, perm: Perm::ReadOnly },
        4 => Op::SetPerm { pmo, perm: Perm::ReadWrite },
        5 => Op::Access { pmo, offset: 0, kind: AccessKind::Read },
        _ => Op::Access { pmo, offset: 0, kind: AccessKind::Write },
    }
}

/// A program in symbol form: one code sequence per thread.
pub type Codes = Vec<Vec<u16>>;

/// Relabels one symbol under a domain permutation (`perm[d-1]` is the
/// new 1-based ID of domain `d`).
fn relabel(code: u16, perm: &[usize]) -> u16 {
    let d = code as usize / OPS_PER_DOMAIN;
    let c = code as usize % OPS_PER_DOMAIN;
    ((perm[d] - 1) * OPS_PER_DOMAIN + c) as u16
}

/// All permutations of `1..=n` in lexicographic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(remaining: &mut Vec<usize>, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            let v = remaining.remove(i);
            prefix.push(v);
            rec(remaining, prefix, out);
            prefix.pop();
            remaining.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut (1..=n).collect(), &mut Vec::new(), &mut out);
    out
}

/// The canonical representative of `codes`'s symmetry orbit: the minimum,
/// over every domain relabeling, of the lex-sorted thread tuple (sorting
/// is the lex-minimal thread arrangement, so this minimizes over the full
/// `S_M × S_K` orbit).
#[must_use]
pub fn canonicalize(codes: &Codes, bounds: &WorldBounds) -> Codes {
    let mut best: Option<Codes> = None;
    for sigma in permutations(bounds.domains) {
        let mut candidate: Codes =
            codes.iter().map(|t| t.iter().map(|&c| relabel(c, &sigma)).collect()).collect();
        candidate.sort();
        if best.as_ref().is_none_or(|b| candidate < *b) {
            best = Some(candidate);
        }
    }
    best.unwrap_or_default()
}

/// Whether `codes` is its own orbit representative.
#[must_use]
pub fn is_canonical(codes: &Codes, bounds: &WorldBounds) -> bool {
    canonicalize(codes, bounds) == *codes
}

/// The raw (pre-symmetry-reduction) program count:
/// `Σ_{n=0}^{N} C(n+M-1, M-1) · (7K)^n`.
#[must_use]
pub fn raw_count(bounds: &WorldBounds) -> u128 {
    let a = bounds.alphabet() as u128;
    (0..=bounds.ops)
        .map(|n| binomial(n + bounds.threads - 1, bounds.threads - 1) * a.pow(n as u32))
        .sum()
}

fn binomial(n: usize, k: usize) -> u128 {
    let k = k.min(n - k);
    let mut out = 1u128;
    for i in 0..k {
        out = out * (n - i) as u128 / (i + 1) as u128;
    }
    out
}

/// The symmetry-reduced program count by Burnside's lemma:
/// `|orbits| = (1 / M!K!) Σ_{(π,σ)} |Fix(π,σ)|`, where a program is fixed
/// by `(π, σ)` iff along every length-`ℓ` cycle of π the thread sequences
/// are σ-shifted copies of each other and every symbol of the generating
/// sequence is fixed by `σ^ℓ` — so each cycle contributes
/// `Σ_m f(σ^ℓ)^m x^{ℓm}` ops, with `f(τ) = 7 · |fixed domains of τ|`.
///
/// # Panics
///
/// Panics if the fixed-point total is not divisible by `|S_M × S_K|`
/// (impossible for a group action; a failure means an arithmetic bug).
#[must_use]
pub fn orbit_count(bounds: &WorldBounds) -> u128 {
    let (m, k, n) = (bounds.threads, bounds.domains, bounds.ops);
    let mut total = 0u128;
    for pi in permutations(m) {
        let cycles = cycle_lengths(&pi);
        for sigma in permutations(k) {
            // Polynomial in x (ops used), truncated at degree N.
            let mut poly = vec![0u128; n + 1];
            poly[0] = 1;
            for &len in &cycles {
                let fixed = (OPS_PER_DOMAIN * fixed_domains(&sigma, len)) as u128;
                let mut next = vec![0u128; n + 1];
                for (j, &coeff) in poly.iter().enumerate() {
                    if coeff == 0 {
                        continue;
                    }
                    let mut weight = 1u128;
                    let mut used = 0;
                    while j + used <= n {
                        next[j + used] += coeff * weight;
                        used += len;
                        weight *= fixed;
                    }
                }
                poly = next;
            }
            total += poly.iter().sum::<u128>();
        }
    }
    let order = (factorial(m) * factorial(k)) as u128;
    assert_eq!(total % order, 0, "Burnside sum must divide the group order");
    total / order
}

fn factorial(n: usize) -> u64 {
    (1..=n as u64).product::<u64>().max(1)
}

/// Cycle lengths of a permutation of `1..=n` (one entry per cycle).
fn cycle_lengths(perm: &[usize]) -> Vec<usize> {
    let mut seen = vec![false; perm.len()];
    let mut out = Vec::new();
    for start in 0..perm.len() {
        if seen[start] {
            continue;
        }
        let mut len = 0;
        let mut i = start;
        while !seen[i] {
            seen[i] = true;
            len += 1;
            i = perm[i] - 1;
        }
        out.push(len);
    }
    out
}

/// Number of domains fixed by `sigma` iterated `power` times.
fn fixed_domains(sigma: &[usize], power: usize) -> usize {
    (0..sigma.len())
        .filter(|&d| {
            let mut i = d;
            for _ in 0..power {
                i = sigma[i] - 1;
            }
            i == d
        })
        .count()
}

/// Enumerates every canonical program of the world, in deterministic
/// order: total op count ascending, then thread-length composition in lex
/// order, then symbol assignment in mixed-radix order.
#[must_use]
pub fn enumerate_canonical(bounds: &WorldBounds) -> Vec<Codes> {
    let alphabet = bounds.alphabet() as u64;
    let mut out = Vec::new();
    for n in 0..=bounds.ops {
        for comp in compositions(n, bounds.threads) {
            let mut digits = vec![0u16; n];
            loop {
                // Split the digit string into per-thread sequences.
                let mut codes: Codes = Vec::with_capacity(bounds.threads);
                let mut at = 0;
                for &len in &comp {
                    codes.push(digits[at..at + len].to_vec());
                    at += len;
                }
                if is_canonical(&codes, bounds) {
                    out.push(codes);
                }
                // Mixed-radix increment; most-significant digit first.
                let mut i = n;
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    digits[i] += 1;
                    if u64::from(digits[i]) < alphabet {
                        break;
                    }
                    digits[i] = 0;
                }
                if digits.iter().all(|&d| d == 0) {
                    break;
                }
            }
        }
    }
    out
}

/// Ordered compositions of `n` into `m` non-negative parts, lex order.
fn compositions(n: usize, m: usize) -> Vec<Vec<usize>> {
    fn rec(n: usize, m: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if m == 1 {
            prefix.push(n);
            out.push(prefix.clone());
            prefix.pop();
            return;
        }
        for first in 0..=n {
            prefix.push(first);
            rec(n - first, m - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(n, m, &mut Vec::new(), &mut out);
    out
}

/// Materializes one enumerated program as a [`Scenario`] named
/// `world@index` (the refine campaign's replay key). All `K` domains are
/// attached before the program runs, so detach/re-attach sequences are
/// reachable within the op budget.
#[must_use]
pub fn to_scenario(
    world: &str,
    index: usize,
    codes: &Codes,
    bounds: &WorldBounds,
    config: pmo_simarch::SimConfig,
) -> Scenario {
    let usable_keys = config.pkeys.saturating_sub(1) as usize;
    Scenario {
        name: format!("{world}@{index}"),
        about: "enumerated small-world program",
        setup: bounds.domain_ids(),
        program: Program {
            threads: codes.iter().map(|t| t.iter().map(|&c| decode(c)).collect()).collect(),
        },
        config,
        key_pressure: bounds.domains > usable_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_covers_the_alphabet() {
        assert_eq!(decode(0), Op::Attach { pmo: PmoId::new(1) });
        assert_eq!(
            decode(6),
            Op::Access { pmo: PmoId::new(1), offset: 0, kind: AccessKind::Write }
        );
        assert_eq!(decode(7), Op::Attach { pmo: PmoId::new(2) });
        assert_eq!(decode(10), Op::SetPerm { pmo: PmoId::new(2), perm: Perm::ReadOnly });
    }

    #[test]
    fn raw_count_matches_hand_computation() {
        // N=4, M=2, K=2: Σ C(n+1,1)·14^n = 1+28+588+10976+192080.
        let w = WorldBounds { ops: 4, threads: 2, domains: 2 };
        assert_eq!(raw_count(&w), 203_673);
        let tiny = WorldBounds { ops: 1, threads: 1, domains: 1 };
        assert_eq!(raw_count(&tiny), 8, "empty program + 7 one-op programs");
    }

    #[test]
    fn enumerated_count_equals_burnside_orbit_count() {
        for (n, m, k) in [(2, 2, 2), (3, 2, 1), (2, 3, 2), (3, 1, 2)] {
            let w = WorldBounds { ops: n, threads: m, domains: k };
            let programs = enumerate_canonical(&w);
            assert_eq!(
                programs.len() as u128,
                orbit_count(&w),
                "N={n} M={m} K={k}: enumerated vs Burnside"
            );
        }
    }

    #[test]
    fn single_thread_single_domain_has_no_symmetry() {
        let w = WorldBounds { ops: 2, threads: 1, domains: 1 };
        // No nontrivial symmetry: canonical count == raw count.
        assert_eq!(enumerate_canonical(&w).len() as u128, raw_count(&w));
    }

    #[test]
    fn every_emitted_program_is_canonical_and_distinct() {
        let w = WorldBounds { ops: 3, threads: 2, domains: 2 };
        let programs = enumerate_canonical(&w);
        let mut seen = std::collections::BTreeSet::new();
        for p in &programs {
            assert!(is_canonical(p, &w), "{p:?} not canonical");
            assert!(seen.insert(p.clone()), "{p:?} duplicated");
        }
        // No two emitted programs are permutation-equivalent: canonical
        // forms are orbit representatives, and all are distinct.
        for p in &programs {
            assert!(seen.contains(&canonicalize(p, &w)));
        }
    }

    #[test]
    fn swapped_threads_and_domains_canonicalize_back() {
        let w = WorldBounds { ops: 4, threads: 2, domains: 2 };
        // Thread 0 acts on P2, thread 1 on P1 — the mirror image of a
        // canonical program.
        let mirrored: Codes = vec![vec![7, 11], vec![0, 4]];
        let canon = canonicalize(&mirrored, &w);
        assert_ne!(canon, mirrored);
        assert!(is_canonical(&canon, &w));
        assert_eq!(canon, vec![vec![0, 4], vec![7, 11]]);
    }

    #[test]
    fn scenario_conversion_names_and_attaches_every_domain() {
        let w = WorldBounds { ops: 2, threads: 2, domains: 2 };
        let codes: Codes = vec![vec![4], vec![5]];
        let s = to_scenario("w1", 17, &codes, &w, crate::program::model_config(8, 4, 4));
        assert_eq!(s.name, "w1@17");
        assert_eq!(s.setup, vec![PmoId::new(1), PmoId::new(2)]);
        assert_eq!(s.program.total_ops(), 2);
        assert!(!s.key_pressure);
        let pressured = to_scenario("w2", 0, &codes, &w, crate::program::model_config(2, 2, 2));
        assert!(pressured.key_pressure, "2 domains over 1 usable key");
    }
}
