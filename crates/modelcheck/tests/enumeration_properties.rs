//! Property-based validation of the small-world enumerator: for random
//! bounds the emitted canonical set must match the Burnside closed form
//! exactly, contain only canonical programs with no duplicates, and be
//! closed under the thread/domain symmetry group (any relabeling of an
//! emitted program canonicalizes back to it).

use std::collections::BTreeSet;

use proptest::prelude::*;

use pmo_modelcheck::enumerate::{canonicalize, is_canonical, Codes, OPS_PER_DOMAIN};
use pmo_modelcheck::{enumerate_canonical, orbit_count, raw_count, WorldBounds};

/// All permutations of `1..=n` (n is at most 3 here, so this is tiny).
fn perms(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (1..=n).collect();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(items.len(), &mut items, &mut out);
    out.sort();
    out
}

/// Applies a thread permutation and a domain relabeling to a program.
/// `tperm[i]` says which original thread lands in slot `i`;
/// `dperm[d-1]` is the new id of domain `d`.
fn relabel(codes: &Codes, tperm: &[usize], dperm: &[usize]) -> Codes {
    tperm
        .iter()
        .map(|&src| {
            codes[src - 1]
                .iter()
                .map(|&code| {
                    let c = code as usize % OPS_PER_DOMAIN;
                    let d = code as usize / OPS_PER_DOMAIN + 1;
                    ((dperm[d - 1] - 1) * OPS_PER_DOMAIN + c) as u16
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The enumerator emits exactly one representative per symmetry
    /// orbit: its count equals the Burnside closed form, every program
    /// is canonical, and no two are equal.
    #[test]
    fn enumerator_matches_closed_form(
        ops in 1usize..=3,
        threads in 1usize..=3,
        domains in 1usize..=2,
    ) {
        let bounds = WorldBounds { ops, threads, domains };
        let worlds = enumerate_canonical(&bounds);

        prop_assert_eq!(worlds.len() as u128, orbit_count(&bounds));
        prop_assert!(orbit_count(&bounds) <= raw_count(&bounds));

        let mut seen: BTreeSet<Codes> = BTreeSet::new();
        for w in &worlds {
            prop_assert!(is_canonical(w, &bounds), "non-canonical {w:?}");
            prop_assert!(seen.insert(w.clone()), "duplicate {w:?}");
        }
    }

    /// No two emitted programs are permutation-equivalent, and every
    /// relabeling of an emitted program canonicalizes back to it: the
    /// emitted set is a transversal of the S_M x S_K group action.
    #[test]
    fn emitted_programs_are_orbit_representatives(
        ops in 1usize..=3,
        threads in 1usize..=3,
        domains in 1usize..=2,
        pick in 0u64..,
        tsel in 0u64..,
        dsel in 0u64..,
    ) {
        let bounds = WorldBounds { ops, threads, domains };
        let worlds = enumerate_canonical(&bounds);
        let tperms = perms(threads);
        let dperms = perms(domains);

        // Every relabeling of a randomly chosen program canonicalizes
        // back to the program itself...
        let w = &worlds[pick as usize % worlds.len()];
        let tperm = &tperms[tsel as usize % tperms.len()];
        let dperm = &dperms[dsel as usize % dperms.len()];
        let shuffled = relabel(w, tperm, dperm);
        prop_assert_eq!(&canonicalize(&shuffled, &bounds), w);

        // ...so two distinct emitted programs can never share an orbit
        // (each is its own canonical form). Spot-check the full orbit of
        // the chosen program against every other emitted program.
        for tp in &tperms {
            for dp in &dperms {
                let variant = relabel(w, tp, dp);
                for other in &worlds {
                    if other != w {
                        prop_assert_ne!(other, &variant);
                    }
                }
            }
        }
    }
}
