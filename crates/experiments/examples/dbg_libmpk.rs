use pmo_experiments::{report_for, run_micro, RunOptions, Scale};
use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::MicroBench;

fn main() {
    let sim = SimConfig::isca2020();
    for n in [16u32, 64, 256] {
        let cfg = Scale::Quick.micro_config(n);
        let reports = run_micro(
            MicroBench::Avl,
            &cfg,
            &[SchemeKind::Lowerbound, SchemeKind::LibMpk, SchemeKind::MpkVirt],
            &sim,
            RunOptions::default(),
        );
        let lb = report_for(&reports, SchemeKind::Lowerbound);
        let lm = report_for(&reports, SchemeKind::LibMpk);
        let mv = report_for(&reports, SchemeKind::MpkVirt);
        println!("n={n}: ops={} libmpk: evic={} swf={} shoot={} inval={} oh={:.1}% | mpkvirt: evic={} dttlbmiss={} inval={} oh={:.1}%",
            lm.ops, lm.scheme_stats.key_evictions, lm.scheme_stats.sw_faults, lm.scheme_stats.shootdowns,
            lm.scheme_stats.tlb_entries_invalidated, lm.overhead_pct_over(lb),
            mv.scheme_stats.key_evictions, mv.scheme_stats.dttlb_misses, mv.scheme_stats.tlb_entries_invalidated, mv.overhead_pct_over(lb));
    }
}
