//! Table VI: lowerbound overheads and permission-switch frequencies for
//! the multi-PMO microbenchmarks, plus the two keyless-or-gated
//! baselines (ERIM call gates, DPTI CR3 switches) at the same switch
//! rate.

use std::fmt;

use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::MicroBench;

use crate::pool::parallel_map;
use crate::runner::{report_for, run_micro, RunOptions};
use crate::text::{f, grouped, TextTable};
use crate::Scale;

/// One benchmark's row of Table VI.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Benchmark abbreviation.
    pub bench: &'static str,
    /// Permission switches per simulated second.
    pub switches_per_sec: f64,
    /// Lowerbound (WRPKRU-only) overhead over the baseline, in percent.
    pub lowerbound_pct: f64,
    /// ERIM call-gate overhead at the same switch rate, in percent.
    pub erim_pct: f64,
    /// DPTI CR3-switch overhead at the same switch rate, in percent.
    pub dpti_pct: f64,
}

/// The full Table VI result.
#[derive(Clone, Debug)]
pub struct Table6 {
    /// Per-benchmark rows.
    pub rows: Vec<Table6Row>,
}

/// Runs the Table VI experiment (at the scale's maximum PMO count).
/// Benchmarks fan across `opts.jobs` workers; rows keep canonical order.
#[must_use]
pub fn table6(scale: Scale, sim: &SimConfig, opts: RunOptions) -> Table6 {
    let kinds =
        [SchemeKind::Unprotected, SchemeKind::Lowerbound, SchemeKind::Erim, SchemeKind::Dpti];
    let config = scale.micro_config(scale.max_pmos());
    let rows = parallel_map(opts.jobs, MicroBench::ALL.to_vec(), |bench| {
        let reports = run_micro(bench, &config, &kinds, sim, opts.serial());
        let base = report_for(&reports, SchemeKind::Unprotected);
        let lb = report_for(&reports, SchemeKind::Lowerbound);
        Table6Row {
            bench: bench.label(),
            switches_per_sec: lb.switches_per_sec(sim),
            lowerbound_pct: lb.overhead_pct_over(base),
            erim_pct: report_for(&reports, SchemeKind::Erim).overhead_pct_over(base),
            dpti_pct: report_for(&reports, SchemeKind::Dpti).overhead_pct_over(base),
        }
    });
    Table6 { rows }
}

impl fmt::Display for Table6 {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table VI: lowerbound, ERIM and DPTI overheads and permission switch \
             frequencies for the multi-PMO benchmarks",
            &["Benchmark", "Switches/sec", "Lowerbound overhead %", "ERIM %", "DPTI %"],
        );
        for r in &self.rows {
            t.row(vec![
                r.bench.to_string(),
                grouped(r.switches_per_sec),
                f(r.lowerbound_pct, 2),
                f(r.erim_pct, 2),
                f(r.dpti_pct, 2),
            ]);
        }
        write!(out, "{t}")
    }
}
