//! Table VIII: area overhead summary of the two designs (computed from
//! the configuration, no simulation required).

use std::fmt;

use crate::text::TextTable;
use pmo_protect::{domain_virt_area, mpk_virt_area, AreaReport};
use pmo_simarch::SimConfig;

/// The full Table VIII result.
#[derive(Clone, Debug)]
pub struct Table8 {
    /// Domains/threads assumed (the paper uses 1024/1024).
    pub domains: u64,
    /// Threads per process assumed.
    pub threads: u64,
    /// Design 1's report.
    pub mpk_virt: AreaReport,
    /// Design 2's report.
    pub domain_virt: AreaReport,
}

/// Computes Table VIII with the paper's sizing assumptions.
#[must_use]
pub fn table8(sim: &SimConfig) -> Table8 {
    let domains = 1024;
    let threads = 1024;
    Table8 {
        domains,
        threads,
        mpk_virt: mpk_virt_area(sim, domains, threads),
        domain_virt: domain_virt_area(sim, domains, threads),
    }
}

impl fmt::Display for Table8 {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            format!(
                "Table VIII: area overhead summary of the two designs \
                 ({} domains, up to {} threads per process)",
                self.domains, self.threads
            ),
            &["", "Hardware-based MPK virtualization", "Domain virtualization"],
        );
        t.row(vec![
            "Registers per core".into(),
            format!("{}", self.mpk_virt.registers_per_core),
            format!("{}", self.domain_virt.registers_per_core),
        ]);
        t.row(vec![
            "Dedicated buffer per core".into(),
            format!("{} bytes (DTTLB)", self.mpk_virt.buffer_bytes),
            format!("{} bytes (PTLB)", self.domain_virt.buffer_bytes),
        ]);
        t.row(vec![
            "TLB entry extension".into(),
            "none".into(),
            format!("+{} bits per entry", self.domain_virt.tlb_extra_bits),
        ]);
        t.row(vec![
            "Software tables per process".into(),
            format!("{} KB (DTT)", self.mpk_virt.software_bytes / 1024),
            format!("{} KB (DRT + PT)", self.domain_virt.software_bytes / 1024),
        ]);
        write!(out, "{t}")?;
        write!(out, "\nPaper's values: DTTLB 152B, PTLB 24B, +6 TLB bits, DTT 256KB, DRT+PT 272KB")
    }
}
