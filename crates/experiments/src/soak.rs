//! Chaos soak campaign over the sharded multi-tenant pool service.
//!
//! The campaign spreads N simulated tenants across independent shards
//! (one [`PoolServer`] each) and drives every tenant through a mixed
//! insert/remove/contains workload while a *seeded chaos schedule* arms
//! power-failure, torn-write, and media-error faults against individual
//! tenants mid-traffic. Each shard maintains a per-tenant oracle of the
//! keys that must (or may) be present and flags any divergence; every
//! shard trace is audited through `pmo-analyzer` (permission windows +
//! switch-gate integrity) as it streams.
//!
//! Everything derives from `soak_seed`: the tenant schedule, the op mix,
//! the chaos schedule, and every fault seed. Shards are pure functions
//! of `(config, shard_index)`, fanned across workers by
//! [`crate::pool::parallel_map`], so the merged report is byte-identical
//! at any `--jobs` count. Latency is measured on the server's injected
//! logical clock — no wall-clock reads anywhere in the campaign.
//!
//! The headline properties the soak proves:
//!
//! * **isolation** — a tenant driven into quarantine never causes a
//!   correctness failure for a healthy tenant, and every tenant
//!   completes its workload;
//! * **recovery** — quarantined tenants re-admit through the
//!   scrub/release ladder and serve again;
//! * **bounded loss** — media damage surfaces only as typed outcomes
//!   ([`OpOutcome::MediaFault`], wipes), never as silent divergence.

use std::collections::BTreeMap;
use std::fmt;

use pmo_analyzer::{Analyzer, GatePass, PermWindowPass};
use pmo_runtime::FaultPlan;
use pmo_server::{
    nearest_rank, Op, OpOutcome, PoolServer, RetryPolicy, ServerConfig, TenantHealth, WorkloadKind,
};
use pmo_trace::{FaultKind, NullSink, RecordedTrace, TraceEvent, TraceSink};

use crate::faultsim::FAULT_KINDS;
use crate::Scale;

/// Violation log entries kept per shard; overflow is counted in
/// [`ShardReport::violations_dropped`], never silently discarded.
pub const VIOLATION_LOG_CAP: usize = 64;

/// SplitMix64-style finalizer for every schedule derivation (tenant
/// order, op mix, chaos plan). Pure, so any tenant's entire timeline is
/// replayable from `(soak_seed, shard, step)`.
fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Campaign shape.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Root seed; the whole campaign derives from it deterministically.
    pub soak_seed: u64,
    /// Independent shards (the parallel unit; one runtime + key
    /// allocator each).
    pub shards: u32,
    /// Tenants per shard. Above `keys - 1` the shard runs under
    /// admission-control pressure and evicts.
    pub tenants_per_shard: u32,
    /// Operations each tenant performs.
    pub ops_per_tenant: u64,
    /// Architected protection keys per shard (16 = the MPK cliff).
    pub keys: u32,
    /// Value payload bytes for tenant structures.
    pub value_bytes: u32,
    /// Steps between chaos arms within a shard (0 disables chaos).
    pub chaos_interval: u64,
    /// Distinct keys each tenant's op mix draws from (small, so
    /// remove/contains hit existing keys often).
    pub key_space: u64,
    /// Audit every shard trace through the analyzer (permission windows
    /// + switch gates); audit errors become violations.
    pub audit: bool,
}

impl SoakConfig {
    /// The campaign shape for a [`Scale`].
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            // 4 shards x 16 tenants = 64 concurrent tenants, each shard
            // over-committed against 15 usable keys.
            Scale::Quick => SoakConfig {
                soak_seed: SOAK_SEED,
                shards: 4,
                tenants_per_shard: 16,
                ops_per_tenant: 24,
                keys: 16,
                value_bytes: 32,
                chaos_interval: 48,
                key_space: 24,
                audit: true,
            },
            Scale::Paper => SoakConfig {
                soak_seed: SOAK_SEED,
                shards: 8,
                tenants_per_shard: 24,
                ops_per_tenant: 96,
                keys: 16,
                value_bytes: 64,
                chaos_interval: 64,
                key_space: 48,
                audit: true,
            },
        }
    }

    /// Total tenants across all shards.
    #[must_use]
    pub fn tenants(&self) -> u64 {
        u64::from(self.shards) * u64::from(self.tenants_per_shard)
    }

    /// Total operations across all tenants.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.tenants() * self.ops_per_tenant
    }

    /// The shard hosting global tenant `t`, for `--tenant` replays.
    #[must_use]
    pub fn shard_of(&self, tenant: u64) -> u32 {
        (tenant / u64::from(self.tenants_per_shard.max(1))) as u32
    }

    /// The workload mix assigns structures round-robin by global tenant
    /// index, so every shard runs all five families.
    #[must_use]
    pub fn workload_of(&self, tenant: u64) -> WorkloadKind {
        WorkloadKind::ALL[(tenant % WorkloadKind::ALL.len() as u64) as usize]
    }
}

/// Default root seed shared by the quick and paper campaigns.
pub const SOAK_SEED: u64 = 0x50a_5eed;

/// Per-fault-kind chaos accounting for one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Chaos plans of this kind armed by the schedule.
    pub armed: u64,
    /// Armed plans that actually fired mid-traffic.
    pub fired: u64,
    /// Transient retries attributed to this kind.
    pub retries: u64,
    /// Retry budgets exhausted under this kind.
    pub exhausted: u64,
    /// Degradations (read-only ladder steps) attributed to this kind.
    pub degradations: u64,
    /// Scrub recoveries (wipes) attributed to this kind.
    pub wipes: u64,
}

/// One tenant's final standing in the shard report.
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// Global tenant id.
    pub tenant: u64,
    /// Workload family the tenant ran.
    pub workload: WorkloadKind,
    /// Final health ladder position.
    pub health: TenantHealth,
    /// Operations served (must equal `ops_per_tenant`: completing the
    /// workload is the isolation property).
    pub ops: u64,
    /// Operations that applied.
    pub applied: u64,
    /// Median / p99 / p999 / max latency in logical ticks.
    pub p50: u64,
    /// 99th percentile latency.
    pub p99: u64,
    /// 99.9th percentile latency.
    pub p999: u64,
    /// Worst latency.
    pub max: u64,
}

/// Everything one shard produced.
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// Operations served.
    pub ops: u64,
    /// Operations that concluded applied.
    pub applied: u64,
    /// Reads that surfaced typed media faults.
    pub media_faults: u64,
    /// Operations that exhausted their retry budget.
    pub gave_up: u64,
    /// Transient retries across all operations.
    pub retries: u64,
    /// Chaos accounting per fault kind, in [`FAULT_KINDS`] order.
    pub kinds: [KindCounters; 3],
    /// Chaos arms skipped because the target could not be admitted.
    pub chaos_skipped: u64,
    /// Tenants evicted by admission control.
    pub evictions: u64,
    /// Ladder steps into quarantine.
    pub quarantines: u64,
    /// Scrub recoveries started.
    pub recoveries: u64,
    /// Steps back to healthy.
    pub readmissions: u64,
    /// Pool wipes performed by recovery.
    pub wipes: u64,
    /// All latency samples the shard's tenants recorded, sorted.
    pub latencies: Vec<u64>,
    /// Latency samples dropped by the per-tenant cap.
    pub latency_dropped: u64,
    /// Per-tenant final standings, in global tenant order.
    pub tenants: Vec<TenantSummary>,
    /// Invariant violations and audit errors (capped at
    /// [`VIOLATION_LOG_CAP`]).
    pub violations: Vec<String>,
    /// Violations beyond the cap (counted, never silent).
    pub violations_dropped: u64,
    /// Op-by-op log of the watched tenant (empty unless a `--tenant`
    /// replay asked for one).
    pub tenant_log: Vec<String>,
}

impl ShardReport {
    fn violation(&mut self, text: String) {
        if self.violations.len() < VIOLATION_LOG_CAP {
            self.violations.push(text);
        } else {
            self.violations_dropped += 1;
        }
    }

    /// Whether the shard completed with zero violations (including
    /// dropped ones) and zero audit errors.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.violations_dropped == 0
    }
}

/// The merged campaign report.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    /// Root seed the campaign derived everything from.
    pub soak_seed: u64,
    /// Total tenants driven.
    pub tenants: u64,
    /// One report per shard, in shard order.
    pub shards: Vec<ShardReport>,
    /// Host wall-clock nanoseconds; left 0 by [`run_soak`] (its output
    /// is deterministic) and stamped by the CLI afterwards.
    pub wall_nanos: u64,
}

impl SoakReport {
    /// Whether every shard completed clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(ShardReport::is_clean)
    }

    /// Total operations served.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.ops).sum()
    }

    /// Campaign throughput: tenant operations per host wall-clock
    /// second (tenants × ops / wall time). 0.0 until `wall_nanos` is
    /// stamped.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.total_ops() as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Global latency percentiles (merged across every shard).
    #[must_use]
    pub fn latency_percentiles(&self) -> (u64, u64, u64, u64) {
        let mut all: Vec<u64> = self.shards.iter().flat_map(|s| s.latencies.clone()).collect();
        all.sort_unstable();
        (
            nearest_rank(&all, 50, 100),
            nearest_rank(&all, 99, 100),
            nearest_rank(&all, 999, 1000),
            all.last().copied().unwrap_or(0),
        )
    }

    /// Total violations, including dropped ones.
    #[must_use]
    pub fn violation_count(&self) -> u64 {
        self.shards.iter().map(|s| s.violations.len() as u64 + s.violations_dropped).sum()
    }

    /// Renders the campaign as JSON (for CI artifacts and benchtrend).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let (p50, p99, p999, max) = self.latency_percentiles();
        let mut shards = String::new();
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                shards.push(',');
            }
            let mut kinds = String::new();
            for (j, (kind, k)) in FAULT_KINDS.iter().zip(s.kinds.iter()).enumerate() {
                if j > 0 {
                    kinds.push(',');
                }
                let _ = write!(
                    kinds,
                    "{{\"fault\":{},\"armed\":{},\"fired\":{},\"retries\":{},\
                     \"exhausted\":{},\"degradations\":{},\"wipes\":{}}}",
                    pmo_analyzer::json_string(&kind.to_string()),
                    k.armed,
                    k.fired,
                    k.retries,
                    k.exhausted,
                    k.degradations,
                    k.wipes,
                );
            }
            let mut violations = String::new();
            for (j, v) in s.violations.iter().enumerate() {
                if j > 0 {
                    violations.push(',');
                }
                violations.push_str(&pmo_analyzer::json_string(v));
            }
            let _ = write!(
                shards,
                "{{\"shard\":{},\"ops\":{},\"applied\":{},\"media_faults\":{},\
                 \"gave_up\":{},\"retries\":{},\"chaos_skipped\":{},\"evictions\":{},\
                 \"quarantines\":{},\"recoveries\":{},\"readmissions\":{},\"wipes\":{},\
                 \"latency_dropped\":{},\"violations_dropped\":{},\"kinds\":[{}],\
                 \"violations\":[{}]}}",
                s.shard,
                s.ops,
                s.applied,
                s.media_faults,
                s.gave_up,
                s.retries,
                s.chaos_skipped,
                s.evictions,
                s.quarantines,
                s.recoveries,
                s.readmissions,
                s.wipes,
                s.latency_dropped,
                s.violations_dropped,
                kinds,
                violations,
            );
        }
        format!(
            "{{\"soak_seed\":{},\"tenants\":{},\"ops\":{},\"clean\":{},\"violations\":{},\
             \"wall_nanos\":{},\"ops_per_sec\":{:.1},\"latency_p50\":{},\"latency_p99\":{},\
             \"latency_p999\":{},\"latency_max\":{},\"shards\":[{}]}}",
            self.soak_seed,
            self.tenants,
            self.total_ops(),
            self.is_clean(),
            self.violation_count(),
            self.wall_nanos,
            self.ops_per_sec(),
            p50,
            p99,
            p999,
            max,
            shards,
        )
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (p50, p99, p999, max) = self.latency_percentiles();
        writeln!(
            f,
            "chaos soak (seed {:#x}): {} tenants over {} shards, {} ops",
            self.soak_seed,
            self.tenants,
            self.shards.len(),
            self.total_ops(),
        )?;
        writeln!(
            f,
            "{:<6} {:>6} {:>8} {:>6} {:>7} {:>7} {:>6} {:>6} {:>7} {:>6} {:>6}",
            "shard",
            "ops",
            "applied",
            "media",
            "gaveup",
            "retries",
            "fired",
            "evict",
            "quarant",
            "wipes",
            "viols"
        )?;
        for s in &self.shards {
            let fired: u64 = s.kinds.iter().map(|k| k.fired).sum();
            writeln!(
                f,
                "{:<6} {:>6} {:>8} {:>6} {:>7} {:>7} {:>6} {:>6} {:>7} {:>6} {:>6}",
                s.shard,
                s.ops,
                s.applied,
                s.media_faults,
                s.gave_up,
                s.retries,
                fired,
                s.evictions,
                s.quarantines,
                s.wipes,
                s.violations.len() as u64 + s.violations_dropped,
            )?;
        }
        writeln!(f, "latency (logical ticks): p50={p50} p99={p99} p999={p999} max={max}")?;
        for s in &self.shards {
            for v in &s.violations {
                writeln!(f, "VIOLATION [shard {}] {v}", s.shard)?;
            }
            if s.violations_dropped > 0 {
                writeln!(
                    f,
                    "VIOLATION [shard {}] ({} more dropped from the log)",
                    s.shard, s.violations_dropped
                )?;
            }
        }
        if self.is_clean() {
            writeln!(f, "soak clean: zero invariant violations, zero audit errors")?;
        } else {
            writeln!(f, "soak FAILED: {} violation(s)", self.violation_count())?;
        }
        Ok(())
    }
}

/// What the oracle knows about one key of one tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KeyState {
    /// A committed insert must be durable.
    Present,
    /// Removed (or never inserted, or wiped away).
    Absent,
    /// A write gave up mid-chaos: the key may legally be either way.
    Unknown,
}

/// One step of a shard's deterministic schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Local tenant index within the shard.
    pub tenant: u32,
    /// The operation to serve.
    pub op: Op,
}

/// The shard's schedule: each tenant gets exactly `ops_per_tenant`
/// operations, interleaved in a seed-derived order that changes every
/// round (a pure function of `(soak_seed, shard)`).
#[must_use]
pub fn schedule(cfg: &SoakConfig, shard: u32) -> Vec<ScheduleStep> {
    let tenants = cfg.tenants_per_shard;
    let lane_base = u64::from(shard) << 40;
    let mut steps = Vec::with_capacity(tenants as usize * cfg.ops_per_tenant as usize);
    for round in 0..cfg.ops_per_tenant {
        // A deterministic permutation of the tenants for this round
        // (Fisher–Yates keyed off the seed stream).
        let mut order: Vec<u32> = (0..tenants).collect();
        for i in (1..order.len()).rev() {
            let j = (mix(cfg.soak_seed, lane_base ^ (round << 20) ^ i as u64) as usize) % (i + 1);
            order.swap(i, j);
        }
        for t in order {
            let r = mix(cfg.soak_seed, lane_base ^ (round << 20) ^ (u64::from(t) << 8) ^ 0xa5);
            let key = (r >> 8) % cfg.key_space.max(1);
            let op = match r % 4 {
                0 | 1 => Op::Insert(key),
                2 => Op::Remove(key),
                _ => Op::Contains(key),
            };
            steps.push(ScheduleStep { tenant: t, op });
        }
    }
    steps
}

/// One chaos arm: before `step`, arm `kind` against `tenant` to fire
/// after `after_stores` further stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Schedule step index the plan is armed before.
    pub step: u64,
    /// Local tenant index targeted.
    pub tenant: u32,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// Stores until the fault fires.
    pub after_stores: u64,
    /// Storage-layer fault seed (drives torn/media damage placement).
    pub seed: u64,
}

/// The shard's chaos schedule — a pure function of `(soak_seed, shard)`,
/// printed in replay logs so any single event is reproducible.
#[must_use]
pub fn chaos_schedule(cfg: &SoakConfig, shard: u32) -> Vec<ChaosEvent> {
    if cfg.chaos_interval == 0 {
        return Vec::new();
    }
    let total_steps = u64::from(cfg.tenants_per_shard) * cfg.ops_per_tenant;
    let lane_base = (u64::from(shard) << 40) | 0xc4a0_5000;
    let mut events = Vec::new();
    let mut step = cfg.chaos_interval / 2;
    while step < total_steps {
        let r = mix(cfg.soak_seed, lane_base ^ step);
        events.push(ChaosEvent {
            step,
            tenant: (r % u64::from(cfg.tenants_per_shard.max(1))) as u32,
            kind: FAULT_KINDS[((r >> 16) % 3) as usize],
            after_stores: (r >> 32) % 16 + 1,
            seed: mix(r, 0xdead),
        });
        step += cfg.chaos_interval;
    }
    events
}

fn kind_index(kind: FaultKind) -> usize {
    FAULT_KINDS.iter().position(|k| *k == kind).expect("kind is in FAULT_KINDS")
}

/// Runs one shard start to finish. Pure in `(cfg, shard)`; `watch`
/// (a global tenant id) additionally collects that tenant's op-by-op
/// log for `--tenant` replays.
#[must_use]
pub fn run_shard(cfg: &SoakConfig, shard: u32, watch: Option<u64>) -> ShardReport {
    if cfg.audit {
        let mut analyzer = Analyzer::new(format!("soak-shard-{shard}"))
            .with_pass(PermWindowPass::baseline())
            .with_pass(GatePass::new());
        let mut report = shard_body(cfg, shard, watch, &mut analyzer);
        let audit = analyzer.finish();
        if !audit.complete() {
            report.violation(format!(
                "audit truncated: {} finding(s) dropped from the log",
                audit.dropped()
            ));
        }
        for e in audit.errors() {
            report.violation(format!("audit: {e}"));
        }
        report
    } else {
        shard_body(cfg, shard, watch, &mut NullSink::new())
    }
}

/// Records one shard's full event trace — the predictive-analysis
/// campaign's at-scale input. Same deterministic schedule as
/// [`run_shard`], with the events captured instead of audited inline.
#[must_use]
pub fn shard_trace(cfg: &SoakConfig, shard: u32) -> Vec<TraceEvent> {
    let mut trace = RecordedTrace::new();
    shard_body(cfg, shard, None, &mut trace);
    trace.into_events()
}

/// The shard loop: serve the schedule, arm chaos, keep the oracle, and
/// cross-check every outcome.
fn shard_body(
    cfg: &SoakConfig,
    shard: u32,
    watch: Option<u64>,
    sink: &mut dyn TraceSink,
) -> ShardReport {
    let mut report = ShardReport { shard, ..ShardReport::default() };
    let mut srv = PoolServer::new(ServerConfig {
        keys: cfg.keys,
        pool_bytes: 1 << 20,
        value_bytes: cfg.value_bytes,
        policy: RetryPolicy {
            jitter_seed: mix(cfg.soak_seed, u64::from(shard)),
            ..RetryPolicy::default()
        },
    });
    let base = u64::from(shard) * u64::from(cfg.tenants_per_shard);
    for local in 0..cfg.tenants_per_shard {
        srv.register(local, cfg.workload_of(base + u64::from(local)));
    }
    // The oracle: per-tenant expected key states, plus the fault kind
    // pending against each tenant (for per-kind attribution) and the
    // last-seen fired-fault count.
    let mut oracle: Vec<BTreeMap<u64, KeyState>> =
        vec![BTreeMap::new(); cfg.tenants_per_shard as usize];
    // (kind, fired-yet) of the chaos plan pending against each tenant.
    let mut pending: Vec<Option<(FaultKind, bool)>> = vec![None; cfg.tenants_per_shard as usize];
    let mut fired_seen: Vec<u64> = vec![0; cfg.tenants_per_shard as usize];
    let mut degr_seen: Vec<u64> = vec![0; cfg.tenants_per_shard as usize];

    let steps = schedule(cfg, shard);
    let chaos = chaos_schedule(cfg, shard);
    let mut chaos_iter = chaos.iter().peekable();

    for (step_index, step) in steps.iter().enumerate() {
        // Arm any chaos scheduled before this step.
        while let Some(ev) = chaos_iter.peek() {
            if ev.step > step_index as u64 {
                break;
            }
            let plan = FaultPlan { kind: ev.kind, after_stores: ev.after_stores, seed: ev.seed };
            match srv.inject_chaos(ev.tenant, plan, sink) {
                Ok(evictions) => {
                    report.evictions += evictions;
                    report.kinds[kind_index(ev.kind)].armed += 1;
                    pending[ev.tenant as usize] = Some((ev.kind, false));
                }
                // The target is mid-recovery (e.g. quarantined); the
                // schedule moves on rather than blocking on it.
                Err(_) => report.chaos_skipped += 1,
            }
            chaos_iter.next();
        }

        let t = step.tenant;
        let r = match srv.op(t, step.op, sink) {
            Ok(r) => r,
            Err(e) => {
                report.violation(format!(
                    "tenant {} step {step_index}: hard error from {:?}: {e}",
                    base + u64::from(t),
                    step.op,
                ));
                continue;
            }
        };
        report.ops += 1;
        report.retries += r.retries;
        report.evictions += r.evictions;

        // Per-kind attribution: everything a tenant weathers while a
        // chaos plan is pending against it belongs to that plan's kind.
        let ten_now = srv.tenant(t).expect("registered");
        let fired_now = ten_now.counters().faults;
        let degr_now = ten_now.health_counters().degradations;
        let healthy_now = ten_now.health() == TenantHealth::Healthy;
        let fired_this_op = fired_now > fired_seen[t as usize];
        let degraded_this_op = degr_now > degr_seen[t as usize];
        fired_seen[t as usize] = fired_now;
        degr_seen[t as usize] = degr_now;
        if let Some((kind, was_fired)) = pending[t as usize] {
            let k = &mut report.kinds[kind_index(kind)];
            if fired_this_op {
                k.fired += 1;
            }
            k.retries += r.retries;
            if degraded_this_op {
                k.degradations += 1;
            }
            if r.outcome == OpOutcome::GaveUp {
                k.exhausted += 1;
            }
            if r.wiped {
                k.wipes += 1;
            }
            // The plan is spent once its fault has fired and the tenant
            // is back in healthy, applied service.
            let now_fired = was_fired || fired_this_op;
            let spent = now_fired && healthy_now && matches!(r.outcome, OpOutcome::Applied { .. });
            pending[t as usize] = if spent { None } else { Some((kind, now_fired)) };
        }

        // The oracle cross-check.
        let model = &mut oracle[t as usize];
        if r.wiped {
            // Recovery scrubbed the pool: everything committed is gone,
            // by design (bounded, *typed* loss).
            for state in model.values_mut() {
                *state = KeyState::Absent;
            }
        }
        let key = step.op.key();
        let expected = model.get(&key).copied().unwrap_or(KeyState::Absent);
        match r.outcome {
            OpOutcome::Applied { present } => {
                let consistent = match (step.op, expected) {
                    (Op::Insert(_), _) => present,
                    (Op::Remove(_) | Op::Contains(_), KeyState::Present) => present,
                    (Op::Remove(_) | Op::Contains(_), KeyState::Absent) => !present,
                    (_, KeyState::Unknown) => true,
                };
                // A retried op's observation is ambiguous by design: a
                // failed attempt may have committed durably right before
                // the crash (e.g. a remove that landed, so the retry
                // sees the key already gone). Only un-retried ops are
                // held against the oracle; the op's *final* state below
                // is deterministic either way.
                if !consistent && r.retries == 0 {
                    report.violation(format!(
                        "tenant {} step {step_index}: {:?} saw present={present} but the \
                         oracle expected {expected:?}",
                        base + u64::from(t),
                        step.op,
                    ));
                }
                report.applied += 1;
                match step.op {
                    Op::Insert(_) => {
                        model.insert(key, KeyState::Present);
                    }
                    Op::Remove(_) => {
                        model.insert(key, KeyState::Absent);
                    }
                    Op::Contains(_) => {
                        // Settle an Unknown key to what the structure
                        // reported.
                        if expected == KeyState::Unknown {
                            model.insert(
                                key,
                                if present { KeyState::Present } else { KeyState::Absent },
                            );
                        }
                    }
                }
            }
            OpOutcome::MediaFault => {
                report.media_faults += 1;
            }
            OpOutcome::GaveUp => {
                report.gave_up += 1;
                if step.op.is_write() {
                    model.insert(key, KeyState::Unknown);
                }
            }
        }

        // Admission-control invariants hold after every single op.
        if let Err(msg) = srv.check_key_invariants() {
            report.violation(format!("step {step_index}: key invariant: {msg}"));
        }

        if watch == Some(base + u64::from(t)) {
            report.tenant_log.push(format!(
                "step {step_index}: {:?} -> {:?} (latency {} ticks, retries {}, wiped {}, \
                 health {})",
                step.op,
                r.outcome,
                r.latency,
                r.retries,
                r.wiped,
                srv.tenant(t).expect("registered").health(),
            ));
        }
    }

    // Final health bookkeeping and per-tenant standings.
    for (local, ten) in srv.tenants() {
        let hc = ten.health_counters();
        report.quarantines += hc.quarantines;
        report.recoveries += hc.recoveries;
        report.readmissions += hc.readmissions;
        let c = ten.counters();
        report.wipes += c.wipes;
        report.latency_dropped += c.latency_dropped;
        report.latencies.extend_from_slice(ten.latencies());
        let lat = ten.latency_summary();
        report.tenants.push(TenantSummary {
            tenant: base + u64::from(local),
            workload: ten.workload(),
            health: ten.health(),
            ops: c.ops,
            applied: c.applied,
            p50: lat.p50,
            p99: lat.p99,
            p999: lat.p999,
            max: lat.max,
        });
        if c.ops != cfg.ops_per_tenant {
            report.violation(format!(
                "tenant {} served {} of {} ops (denial of service)",
                base + u64::from(local),
                c.ops,
                cfg.ops_per_tenant,
            ));
        }
    }
    report.latencies.sort_unstable();
    report
}

/// Runs the full campaign: every shard, fanned across `jobs` workers.
/// Shards are pure functions of `(cfg, shard)`, so the merged report is
/// byte-identical at any job count.
#[must_use]
pub fn run_soak(cfg: &SoakConfig, jobs: usize) -> SoakReport {
    let shards = crate::pool::parallel_map(jobs, (0..cfg.shards).collect(), |shard| {
        run_shard(cfg, shard, None)
    });
    SoakReport { soak_seed: cfg.soak_seed, tenants: cfg.tenants(), shards, wall_nanos: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakConfig {
        SoakConfig {
            soak_seed: 0x7e57,
            shards: 2,
            tenants_per_shard: 6,
            ops_per_tenant: 12,
            keys: 4, // 3 usable: heavy admission pressure
            value_bytes: 16,
            chaos_interval: 10,
            key_space: 12,
            audit: true,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_complete() {
        let cfg = tiny();
        let a = schedule(&cfg, 1);
        let b = schedule(&cfg, 1);
        assert_eq!(a, b);
        assert_ne!(a, schedule(&cfg, 0), "shards get distinct schedules");
        assert_eq!(a.len(), 6 * 12);
        for t in 0..6u32 {
            let count = a.iter().filter(|s| s.tenant == t).count() as u64;
            assert_eq!(count, cfg.ops_per_tenant, "tenant {t} gets every op");
        }
    }

    #[test]
    fn chaos_schedule_is_seeded_and_mixed() {
        let cfg = tiny();
        let a = chaos_schedule(&cfg, 0);
        assert_eq!(a, chaos_schedule(&cfg, 0));
        assert!(!a.is_empty());
        assert!(a.iter().all(|e| e.after_stores >= 1 && e.tenant < cfg.tenants_per_shard));
        let no_chaos = SoakConfig { chaos_interval: 0, ..cfg };
        assert!(chaos_schedule(&no_chaos, 0).is_empty());
    }

    #[test]
    fn tiny_soak_is_clean_under_pressure_and_chaos() {
        let cfg = tiny();
        let report = run_soak(&cfg, 1);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.total_ops(), cfg.total_ops());
        // Pressure and chaos actually happened.
        let evictions: u64 = report.shards.iter().map(|s| s.evictions).sum();
        let fired: u64 = report.shards.iter().flat_map(|s| s.kinds.iter()).map(|k| k.fired).sum();
        assert!(evictions > 0, "6 tenants over 3 keys must evict\n{report}");
        assert!(fired > 0, "chaos must fire\n{report}");
        // Every tenant finished its workload despite both.
        for shard in &report.shards {
            for ten in &shard.tenants {
                assert_eq!(ten.ops, cfg.ops_per_tenant, "tenant {}", ten.tenant);
            }
        }
    }

    #[test]
    fn parallel_soak_is_byte_identical_to_serial() {
        let cfg = tiny();
        let serial = run_soak(&cfg, 1);
        let parallel = run_soak(&cfg, 4);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(format!("{serial}"), format!("{parallel}"));
    }

    #[test]
    fn quarantine_recovery_round_trips_somewhere() {
        // Media-error chaos must drive at least one tenant through the
        // full quarantine -> scrub -> readmit ladder across the
        // campaign, and that tenant still completes its workload.
        let cfg = tiny();
        let report = run_soak(&cfg, 2);
        let wipes: u64 = report.shards.iter().map(|s| s.wipes).sum();
        let recoveries: u64 = report.shards.iter().map(|s| s.recoveries).sum();
        assert!(wipes > 0, "no tenant was wiped — weaken the chaos less\n{report}");
        assert!(recoveries > 0, "{report}");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn watched_tenant_log_replays() {
        let cfg = tiny();
        let watched = 7; // shard 1, local tenant 1
        assert_eq!(cfg.shard_of(watched), 1);
        let report = run_shard(&cfg, 1, Some(watched));
        assert_eq!(report.tenant_log.len() as u64, cfg.ops_per_tenant);
        // The log is itself deterministic.
        let again = run_shard(&cfg, 1, Some(watched));
        assert_eq!(report.tenant_log, again.tenant_log);
        // Watching changes nothing about the measured report.
        let unwatched = run_shard(&cfg, 1, None);
        assert_eq!(report.ops, unwatched.ops);
        assert_eq!(report.violations, unwatched.violations);
    }

    #[test]
    fn json_is_well_formed_and_counts_truncation() {
        let mut report = run_soak(&SoakConfig { shards: 1, ..tiny() }, 1);
        report.wall_nanos = 1_000_000_000;
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(json.contains("\"ops_per_sec\":"), "{json}");
        assert!(json.contains("\"fault\":\"power-failure\""), "{json}");
        // The truncation discipline: drops are counted in the report.
        let shard = &mut report.shards[0];
        for i in 0..(VIOLATION_LOG_CAP + 5) {
            shard.violation(format!("synthetic {i}"));
        }
        assert_eq!(shard.violations.len(), VIOLATION_LOG_CAP);
        assert_eq!(shard.violations_dropped, 5);
        assert!(report.to_json().contains("\"violations_dropped\":5"));
        assert!(!report.is_clean());
    }
}
