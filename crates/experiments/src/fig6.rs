//! Figure 6: execution-time overhead over the lowerbound as the number of
//! PMOs varies, for libmpk, ERIM, DPTI and the two hardware designs.

use std::fmt;

use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::MicroBench;

use crate::pool::parallel_map;
use crate::runner::{report_for, run_micro, RunOptions};
use crate::text::{f, TextTable};
use crate::Scale;

/// One sweep point of one benchmark's Figure 6 curve.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Active PMO count (x-axis).
    pub pmos: u32,
    /// libmpk overhead over lowerbound, percent.
    pub libmpk_pct: f64,
    /// ERIM call-gate overhead over lowerbound, percent (software key
    /// multiplexing degrades past 15 domains).
    pub erim_pct: f64,
    /// DPTI overhead over lowerbound, percent (keyless, pays per-switch).
    pub dpti_pct: f64,
    /// Hardware MPK-virtualization overhead, percent.
    pub mpk_virt_pct: f64,
    /// Hardware domain-virtualization overhead, percent.
    pub domain_virt_pct: f64,
}

/// One benchmark's curve.
#[derive(Clone, Debug)]
pub struct Fig6Series {
    /// Benchmark abbreviation.
    pub bench: &'static str,
    /// Points in ascending PMO order.
    pub points: Vec<Fig6Point>,
}

/// The full Figure 6 result.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// One series per microbenchmark.
    pub series: Vec<Fig6Series>,
}

/// Runs the Figure 6 sweep. Every (benchmark, PMO-count) cell is an
/// independent 6-scheme replay, fanned across `opts.jobs` workers and
/// reassembled in canonical benchmark/sweep order — the result is
/// byte-identical at any job count.
#[must_use]
pub fn fig6(scale: Scale, sim: &SimConfig, opts: RunOptions) -> Fig6 {
    let kinds = [
        SchemeKind::Lowerbound,
        SchemeKind::LibMpk,
        SchemeKind::Erim,
        SchemeKind::Dpti,
        SchemeKind::MpkVirt,
        SchemeKind::DomainVirt,
    ];
    let sweep = scale.pmo_sweep();
    let cells: Vec<(MicroBench, u32)> = MicroBench::ALL
        .into_iter()
        .flat_map(|bench| sweep.iter().map(move |&pmos| (bench, pmos)))
        .collect();
    // Workers run whole cells; the inner per-scheme loop stays serial so
    // the thread count is exactly `jobs`.
    let points = parallel_map(opts.jobs, cells, |(bench, pmos)| {
        let config = scale.micro_config(pmos);
        let reports = run_micro(bench, &config, &kinds, sim, opts.serial());
        let lb = report_for(&reports, SchemeKind::Lowerbound);
        Fig6Point {
            pmos,
            libmpk_pct: report_for(&reports, SchemeKind::LibMpk).overhead_pct_over(lb),
            erim_pct: report_for(&reports, SchemeKind::Erim).overhead_pct_over(lb),
            dpti_pct: report_for(&reports, SchemeKind::Dpti).overhead_pct_over(lb),
            mpk_virt_pct: report_for(&reports, SchemeKind::MpkVirt).overhead_pct_over(lb),
            domain_virt_pct: report_for(&reports, SchemeKind::DomainVirt).overhead_pct_over(lb),
        }
    });
    let series = MicroBench::ALL
        .into_iter()
        .zip(points.chunks(sweep.len()))
        .map(|(bench, points)| Fig6Series { bench: bench.label(), points: points.to_vec() })
        .collect();
    Fig6 { series }
}

impl Fig6 {
    /// Renders the sweep as CSV (`bench,pmos,libmpk_pct,erim_pct,
    /// dpti_pct,mpk_virt_pct,domain_virt_pct`), one row per benchmark x
    /// sweep point — ready for external plotting of the paper's Figure 6.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("bench,pmos,libmpk_pct,erim_pct,dpti_pct,mpk_virt_pct,domain_virt_pct\n");
        for s in &self.series {
            for p in &s.points {
                out.push_str(&format!(
                    "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                    s.bench,
                    p.pmos,
                    p.libmpk_pct,
                    p.erim_pct,
                    p.dpti_pct,
                    p.mpk_virt_pct,
                    p.domain_virt_pct
                ));
            }
        }
        out
    }
}

fn log2_or_dash(pct: f64) -> String {
    if pct > 0.0 {
        f(pct.log2(), 1)
    } else {
        "-".to_string()
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "Figure 6: execution time overheads for the multi-PMO benchmarks as the \
             number of PMOs varies\n(percent slowdown over lowerbound; log2 columns \
             match the paper's y-axis, where 2^2 means 4% slower)\n"
        )?;
        for s in &self.series {
            let mut t = TextTable::new(
                format!("{} overhead over lowerbound", s.bench),
                &[
                    "PMOs",
                    "libmpk %",
                    "erim %",
                    "dpti %",
                    "mpk-virt %",
                    "domain-virt %",
                    "log2(libmpk)",
                    "log2(erim)",
                    "log2(dpti)",
                    "log2(mpk-virt)",
                    "log2(domain-virt)",
                ],
            );
            for p in &s.points {
                t.row(vec![
                    p.pmos.to_string(),
                    f(p.libmpk_pct, 1),
                    f(p.erim_pct, 1),
                    f(p.dpti_pct, 1),
                    f(p.mpk_virt_pct, 1),
                    f(p.domain_virt_pct, 1),
                    log2_or_dash(p.libmpk_pct),
                    log2_or_dash(p.erim_pct),
                    log2_or_dash(p.dpti_pct),
                    log2_or_dash(p.mpk_virt_pct),
                    log2_or_dash(p.domain_virt_pct),
                ]);
            }
            writeln!(out, "{t}")?;
        }
        Ok(())
    }
}
