//! Minimal aligned text-table formatting for experiment output.

use std::fmt;

/// An aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        let line = |f: &mut fmt::Formatter<'_>| {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (w, h) in widths.iter().zip(&self.headers) {
            write!(f, "| {h:>w$} ")?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                write!(f, "| {cell:>w$} ")?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

/// Formats a float with `digits` decimal places.
#[must_use]
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a rate with thousands separators (e.g. `1,152,379`).
#[must_use]
pub fn grouped(value: f64) -> String {
    let v = value.round() as i64;
    let raw = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "23".into()]);
        let s = format!("{t}");
        assert!(s.contains("Demo"));
        assert!(s.contains("| longer |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(grouped(1_152_379.4), "1,152,379");
        assert_eq!(grouped(926.0), "926");
        assert_eq!(grouped(-12_345.0), "-12,345");
    }
}
