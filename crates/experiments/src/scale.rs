//! Experiment scale presets.

use pmo_workloads::{MicroConfig, WhisperConfig};

/// How big to run the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale run preserving every structural property; the
    /// default for `cargo run` and the benches.
    Quick,
    /// The paper's full evaluation scale (1024 PMOs, 1M ops, 100k txns).
    Paper,
}

impl Scale {
    /// Parses `--full`/`--paper` style CLI args (anything else = quick).
    #[must_use]
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full" || a == "--paper");
        if full {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// Micro-benchmark configuration for `active` PMOs at this scale.
    #[must_use]
    pub fn micro_config(self, active: u32) -> MicroConfig {
        let base = match self {
            Scale::Quick => MicroConfig { initial_nodes: 160, ops: 4_000, ..MicroConfig::paper() },
            Scale::Paper => MicroConfig::paper(),
        };
        MicroConfig { pmos: active, active_pmos: active, ..base }
    }

    /// The Figure 6/7 sweep of PMO counts at this scale.
    #[must_use]
    pub fn pmo_sweep(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![16, 32, 64, 128, 256],
            Scale::Paper => vec![16, 32, 64, 128, 256, 512, 1024],
        }
    }

    /// The largest PMO count of the sweep (Table VII's operating point).
    #[must_use]
    pub fn max_pmos(self) -> u32 {
        *self.pmo_sweep().last().expect("sweep is non-empty")
    }

    /// WHISPER configuration at this scale. Redis runs `redis_factor()`
    /// times more operations, as in the paper (1M vs 100k).
    #[must_use]
    pub fn whisper_config(self) -> WhisperConfig {
        match self {
            Scale::Quick => WhisperConfig { txns: 4_000, records: 4_096, ..WhisperConfig::paper() },
            Scale::Paper => WhisperConfig::paper(),
        }
    }

    /// Extra operation multiplier for Redis (paper: 1M ops vs 100k txns).
    #[must_use]
    pub fn redis_factor(self) -> u64 {
        match self {
            Scale::Quick => 2,
            Scale::Paper => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_evaluation() {
        let cfg = Scale::Paper.micro_config(1024);
        assert_eq!(cfg.pmos, 1024);
        assert_eq!(cfg.ops, 1_000_000);
        assert_eq!(Scale::Paper.pmo_sweep().last(), Some(&1024));
        assert_eq!(Scale::Paper.whisper_config().txns, 100_000);
        assert_eq!(Scale::Paper.redis_factor(), 10);
    }

    #[test]
    fn quick_scale_preserves_structure() {
        let cfg = Scale::Quick.micro_config(64);
        assert_eq!(cfg.pmos, 64);
        assert_eq!(cfg.active_pmos, 64);
        assert_eq!(cfg.pmo_bytes, 8 << 20, "PMO size (and VA granule) unchanged");
        assert_eq!(cfg.insert_pct, 90);
        assert_eq!(Scale::Quick.max_pmos(), 256);
    }
}
