//! Prints Table II: the simulation parameters.

use pmo_simarch::SimConfig;

fn main() {
    println!("Table II: simulation parameters\n");
    println!("{}", SimConfig::isca2020());
}
