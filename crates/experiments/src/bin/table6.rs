//! Regenerates Table VI (multi-PMO lowerbound overheads and switch
//! frequencies). Pass --full for the paper's scale.

use pmo_experiments::{table6::table6, RunOptions, Scale};
use pmo_simarch::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let sim = SimConfig::isca2020();
    println!("(scale: {scale:?})\n{}", table6(scale, &sim, RunOptions::from_args()));
}
