//! Campaign + replay-throughput benchmark with a tracked trajectory.
//!
//! Runs the quick campaigns serially and at `--jobs N` (asserting the
//! outputs are byte-identical), measures single-thread replay throughput
//! three ways — full walk on every access, the streamed same-page fast
//! path, and the batched block engine (struct-of-arrays decode + summary
//! table + run-length settlement) — asserting all three reports are
//! field-identical, and appends one entry to `BENCH_campaign.json` so
//! the performance trajectory is tracked across commits.
//!
//! ```text
//! cargo run --release -p pmo-experiments --bin benchtrend
//! cargo run --release -p pmo-experiments --bin benchtrend -- --jobs 4 --out BENCH_campaign.json
//! ```
//!
//! Exits non-zero if any determinism or equivalence check fails, or if
//! any replay row regresses more than [`GATE_TOLERANCE`] against the last
//! recorded entry measured at the same host parallelism (the regression
//! gate prints a delta table either way).

// This binary *is* the wall-clock harness: it times deterministic runs
// and stamps the trajectory, so the clock reads the determinism wall
// bans elsewhere are its entire purpose.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use pmo_experiments::faultsim::FaultsimConfig;
use pmo_experiments::predict::PredictConfig;
use pmo_experiments::refine::RefineConfig;
use pmo_experiments::soak::SoakConfig;
use pmo_experiments::{faultsim, predict, refine, soak, table5, table6, RunOptions, Scale};
use pmo_protect::SchemeKind;
use pmo_sim::{Replay, ReplayReport};
use pmo_simarch::SimConfig;
use pmo_trace::{block, BlockTrace, RecordedTrace, TraceSource};
use pmo_workloads::{MicroBench, MicroConfig, MicroWorkload, Workload};

/// Replay-throughput measurement repetitions (best-of to damp noise).
const REPS: u32 = 3;

/// Allowed per-row events/sec regression against the previous trajectory
/// entry before the gate fails the run.
const GATE_TOLERANCE: f64 = 0.10;

struct CampaignRow {
    name: &'static str,
    wall_jobs1: u64,
    wall_jobsn: u64,
}

/// Times `render(jobs)` at 1 and `jobs` workers and asserts the two
/// serialized outputs are byte-identical.
fn time_campaign(name: &'static str, jobs: usize, render: impl Fn(usize) -> String) -> CampaignRow {
    let started = Instant::now();
    let serial = render(1);
    let wall_jobs1 = started.elapsed().as_nanos() as u64;
    let started = Instant::now();
    let parallel = render(jobs);
    let wall_jobsn = started.elapsed().as_nanos() as u64;
    assert_eq!(serial, parallel, "{name}: --jobs {jobs} output diverged from --jobs 1");
    println!(
        "campaign {name:<16} jobs=1 {:>8.1} ms   jobs={jobs} {:>8.1} ms   speedup {:.2}x",
        wall_jobs1 as f64 / 1e6,
        wall_jobsn as f64 / 1e6,
        wall_jobs1 as f64 / wall_jobsn as f64,
    );
    CampaignRow { name, wall_jobs1, wall_jobsn }
}

/// The two replay-throughput traces: a pointer-chasing AVL sweep over 32
/// PMOs (adversarial for the fast path — low same-page locality, lots of
/// cache and TLB misses) and a string-swap array workload (the paper's
/// common case — long runs of same-domain, same-page accesses).
fn replay_traces() -> Vec<(&'static str, RecordedTrace)> {
    let record = |bench, pmos, initial_nodes, ops| {
        let config = MicroConfig {
            pmos,
            active_pmos: pmos,
            pmo_bytes: 8 << 20,
            initial_nodes,
            ops,
            insert_pct: 90,
            value_bytes: 64,
            seed: 0xbe9c,
        };
        let mut workload = MicroWorkload::new(bench, config);
        let mut trace = RecordedTrace::new();
        workload.setup(&mut trace);
        workload.run(&mut trace);
        trace
    };
    vec![
        ("pointer-chase", record(MicroBench::Avl, 32, 64, 20_000)),
        ("string-swap", record(MicroBench::StringSwap, 4, 64, 150_000)),
    ]
}

struct ReplayRow {
    trace: &'static str,
    scheme: SchemeKind,
    events: u64,
    wall_walk: u64,
    wall_fast: u64,
}

/// Asserts a timed replay produced a clean, untruncated report.
fn assert_clean(kind: SchemeKind, report: &ReplayReport) {
    // Benchmark traces are fault-free by construction: a faulting (or
    // fault-log-truncated) replay means the trajectory entry would be
    // timing a broken run, so fail loudly instead of recording it.
    assert!(
        !report.faulted() && report.fault_log_complete(),
        "[{kind}] timed replay faulted: {} faults ({} dropped from the log)",
        report.scheme_stats.faults,
        report.faults_dropped,
    );
}

/// Best-of-`REPS` wall times replaying the trace under `kind`: the full
/// walk (fast path off, streamed events) as the slow lane, the batched
/// block engine as the fast lane. The streamed fast path is run once,
/// untimed, so all three reports can be asserted field-identical.
fn time_replay(
    trace: &RecordedTrace,
    blocks: &BlockTrace,
    kind: SchemeKind,
) -> (u64, u64, ReplayReport) {
    let sim = SimConfig::isca2020();
    let mut best_walk = u64::MAX;
    let mut report_walk = None;
    for _ in 0..REPS {
        let mut replay = Replay::new(kind, &sim);
        replay.set_fast_path(false);
        let started = Instant::now();
        trace.replay(&mut replay);
        let report = replay.finish();
        best_walk = best_walk.min(started.elapsed().as_nanos() as u64);
        assert_clean(kind, &report);
        report_walk = Some(report);
    }
    let mut best_fast = u64::MAX;
    let mut report_fast = None;
    for _ in 0..REPS {
        let mut replay = Replay::new(kind, &sim);
        let started = Instant::now();
        replay.replay_blocks(blocks);
        let report = replay.finish();
        best_fast = best_fast.min(started.elapsed().as_nanos() as u64);
        assert_clean(kind, &report);
        report_fast = Some(report);
    }
    let report_walk = report_walk.expect("at least one walk rep");
    let report_fast = report_fast.expect("at least one fast rep");
    assert_eq!(
        report_walk, report_fast,
        "[{kind}] batched block replay diverged from the full-walk report"
    );
    let mut streamed = Replay::new(kind, &sim);
    trace.replay(&mut streamed);
    assert_eq!(
        report_walk,
        streamed.finish(),
        "[{kind}] streamed fast-path replay diverged from the full-walk report"
    );
    (best_walk, best_fast, report_walk)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let jobs = RunOptions::from_args().jobs.max(1);
    let jobs = if args.iter().any(|a| a == "--jobs") { jobs } else { host_parallelism };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let sim = SimConfig::isca2020();
    println!("benchtrend: host parallelism {host_parallelism}, fanning with --jobs {jobs}\n");

    // Part 1: campaign wall clock, serial vs parallel, byte-identical.
    let soak_cfg = SoakConfig::for_scale(Scale::Quick);
    let refine_cfg = RefineConfig::for_scale(Scale::Quick);
    // Enumeration + DPOR throughput of the refine campaign, captured
    // from inside the timing closure so the worlds run exactly twice.
    let refine_programs = std::cell::Cell::new(0u64);
    let refine_schedules = std::cell::Cell::new(0u64);
    // Prediction-certification throughput, captured the same way.
    let predict_cfg = PredictConfig::for_scale(Scale::Quick);
    let predict_programs = std::cell::Cell::new(0u64);
    let predict_events = std::cell::Cell::new(0u64);
    let campaigns = [
        time_campaign("faultsim-quick", jobs, |j| {
            let cfg = FaultsimConfig::for_scale(Scale::Quick);
            faultsim::run_campaign(&cfg, j).to_json()
        }),
        time_campaign("soak-quick", jobs, |j| {
            let report = soak::run_soak(&soak_cfg, j);
            assert!(report.is_clean(), "soak-quick campaign must stay clean:\n{report}");
            report.to_json()
        }),
        time_campaign("refine-quick", jobs, |j| {
            let report = refine::run_campaign(&refine_cfg, j);
            assert!(report.is_clean(), "refine-quick campaign must stay clean:\n{report}");
            refine_programs.set(report.total_programs());
            refine_schedules.set(report.total_schedules());
            report.to_json()
        }),
        time_campaign("predict-quick", jobs, |j| {
            let report = predict::run_campaign(&predict_cfg, Scale::Quick, j);
            assert!(report.is_clean(), "predict-quick campaign must stay clean:\n{report}");
            predict_programs.set(report.total_programs());
            predict_events.set(report.total_events());
            report.to_json()
        }),
        time_campaign("table5-quick", jobs, |j| {
            let opts = RunOptions { jobs: j, ..RunOptions::default() };
            table5::table5(Scale::Quick, &sim, opts).to_string()
        }),
        time_campaign("table6-quick", jobs, |j| {
            let opts = RunOptions { jobs: j, ..RunOptions::default() };
            table6::table6(Scale::Quick, &sim, opts).to_string()
        }),
    ];

    // Part 2: single-thread replay throughput, radix/DTT/PT walk on every
    // access (streamed) vs the batched block engine, identical reports.
    let mut rows = Vec::new();
    for (label, trace) in &replay_traces() {
        println!();
        let blocks = block::block_trace_of(trace);
        for kind in SchemeKind::ALL {
            let (wall_walk, wall_fast, report) = time_replay(trace, &blocks, kind);
            let events = report.counts.events;
            println!(
                "replay {label:<14} {kind:<12} {events:>9} events   walk {:>7.1} ms   \
                 fast {:>7.1} ms   {:>5.1} -> {:>5.1} Mev/s   speedup {:.2}x",
                wall_walk as f64 / 1e6,
                wall_fast as f64 / 1e6,
                events as f64 * 1e3 / wall_walk as f64,
                events as f64 * 1e3 / wall_fast as f64,
                wall_walk as f64 / wall_fast as f64,
            );
            rows.push(ReplayRow { trace: label, scheme: kind, events, wall_walk, wall_fast });
        }
    }
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    let total_walk: u64 = rows.iter().map(|r| r.wall_walk).sum();
    let total_fast: u64 = rows.iter().map(|r| r.wall_fast).sum();
    let overall = total_walk as f64 / total_fast as f64;
    println!(
        "\nreplay overall: {:.1} -> {:.1} Mev/s, speedup {overall:.2}x",
        total_events as f64 * 1e3 / total_walk as f64,
        total_events as f64 * 1e3 / total_fast as f64,
    );

    // Regression gate: every replay row must hold its events/sec against
    // the last trajectory entry recorded at this host parallelism. On
    // failure the baseline entry is left as-is (nothing is appended), so
    // the next run is still measured against the last good numbers.
    if !regression_gate(&out, host_parallelism, &rows) {
        eprintln!(
            "benchtrend: replay throughput regression exceeds the {:.0}% tolerance",
            GATE_TOLERANCE * 100.0
        );
        return ExitCode::FAILURE;
    }

    // Part 3: append the trajectory entry.
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut entry = String::new();
    let _ = write!(
        entry,
        "{{\"unix_secs\":{unix_secs},\"git_sha\":{},\"host_parallelism\":{host_parallelism},\
         \"jobs\":{jobs},\"campaigns\":[",
        pmo_analyzer::json_string(&git_sha()),
    );
    for (i, c) in campaigns.iter().enumerate() {
        if i > 0 {
            entry.push(',');
        }
        let _ = write!(
            entry,
            "{{\"name\":\"{}\",\"wall_nanos_jobs1\":{},\"wall_nanos_jobsn\":{},\
             \"speedup\":{:.3}}}",
            c.name,
            c.wall_jobs1,
            c.wall_jobsn,
            c.wall_jobs1 as f64 / c.wall_jobsn as f64,
        );
    }
    // The soak's headline throughput: tenant-ops applied per wall second
    // across the whole multi-tenant campaign (64 tenants x 24 ops at
    // quick scale), at both job counts.
    let soak_row = campaigns.iter().find(|c| c.name == "soak-quick").expect("soak row");
    let soak_ops = soak_cfg.total_ops();
    let _ = write!(
        entry,
        "],\"soak\":{{\"tenants\":{},\"ops\":{},\"tenant_ops_per_sec_jobs1\":{:.0},\
         \"tenant_ops_per_sec_jobsn\":{:.0}}}",
        soak_cfg.tenants(),
        soak_ops,
        soak_ops as f64 * 1e9 / soak_row.wall_jobs1 as f64,
        soak_ops as f64 * 1e9 / soak_row.wall_jobsn as f64,
    );
    // The refine campaign's headline throughput: canonical programs
    // verified and DPOR-distinct schedules explored per wall second over
    // the exhaustive quick worlds, at both job counts.
    let refine_row = campaigns.iter().find(|c| c.name == "refine-quick").expect("refine row");
    let _ = write!(
        entry,
        ",\"refine\":{{\"programs\":{},\"schedules\":{},\
         \"programs_per_sec_jobs1\":{:.0},\"programs_per_sec_jobsn\":{:.0},\
         \"schedules_per_sec_jobs1\":{:.0},\"schedules_per_sec_jobsn\":{:.0}}}",
        refine_programs.get(),
        refine_schedules.get(),
        refine_programs.get() as f64 * 1e9 / refine_row.wall_jobs1 as f64,
        refine_programs.get() as f64 * 1e9 / refine_row.wall_jobsn as f64,
        refine_schedules.get() as f64 * 1e9 / refine_row.wall_jobs1 as f64,
        refine_schedules.get() as f64 * 1e9 / refine_row.wall_jobsn as f64,
    );
    // The prediction campaign's headline throughput: canonical programs
    // certified (sampled trace, predictive pass, witness certification)
    // and sampled-trace events analyzed per wall second, at both job
    // counts.
    let predict_row = campaigns.iter().find(|c| c.name == "predict-quick").expect("predict row");
    let _ = write!(
        entry,
        ",\"predict\":{{\"programs\":{},\"events\":{},\
         \"programs_per_sec_jobs1\":{:.0},\"programs_per_sec_jobsn\":{:.0},\
         \"events_per_sec_jobs1\":{:.0},\"events_per_sec_jobsn\":{:.0}}}",
        predict_programs.get(),
        predict_events.get(),
        predict_programs.get() as f64 * 1e9 / predict_row.wall_jobs1 as f64,
        predict_programs.get() as f64 * 1e9 / predict_row.wall_jobsn as f64,
        predict_events.get() as f64 * 1e9 / predict_row.wall_jobs1 as f64,
        predict_events.get() as f64 * 1e9 / predict_row.wall_jobsn as f64,
    );
    entry.push_str(",\"replay\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            entry.push(',');
        }
        let _ = write!(
            entry,
            "{{\"trace\":\"{}\",\"scheme\":\"{}\",\"events\":{},\"wall_nanos_walk\":{},\
             \"wall_nanos_fast\":{},\"events_per_sec_walk\":{:.0},\
             \"events_per_sec_fast\":{:.0},\"speedup\":{:.3}}}",
            r.trace,
            r.scheme,
            r.events,
            r.wall_walk,
            r.wall_fast,
            r.events as f64 * 1e9 / r.wall_walk as f64,
            r.events as f64 * 1e9 / r.wall_fast as f64,
            r.wall_walk as f64 / r.wall_fast as f64,
        );
    }
    let _ = write!(
        entry,
        "],\"replay_overall\":{{\"events\":{total_events},\
         \"events_per_sec_walk\":{:.0},\"events_per_sec_fast\":{:.0},\"speedup\":{overall:.3}}}}}",
        total_events as f64 * 1e9 / total_walk as f64,
        total_events as f64 * 1e9 / total_fast as f64,
    );
    if let Err(e) = append_entry(&out, &entry) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("appended trajectory entry to {out}");
    ExitCode::SUCCESS
}

/// A replay row parsed back out of a previous trajectory entry.
struct BaselineRow {
    trace: String,
    scheme: String,
    walk: f64,
    fast: f64,
}

/// Extracts one `"key":"value"` string field from a JSON object slice.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let rest = obj.split(&format!("\"{key}\":\"")).nth(1)?;
    rest.split('"').next().map(str::to_string)
}

/// Extracts one numeric `"key":value` field from a JSON object slice.
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let rest = obj.split(&format!("\"{key}\":")).nth(1)?;
    rest.split([',', '}']).next()?.trim().parse().ok()
}

/// The replay rows of the newest trajectory entry measured at this host
/// parallelism. The trajectory file is machine-written, one entry per
/// line, so a line-oriented field scan is exact — no JSON parser needed.
fn baseline_rows(path: &str, host_parallelism: usize) -> Option<Vec<BaselineRow>> {
    let body = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"host_parallelism\":{host_parallelism},");
    let line = body.lines().rev().find(|l| l.contains(&needle) && l.contains("\"replay\":["))?;
    let replay = line.split("\"replay\":[").nth(1)?.split(']').next()?;
    let mut rows = Vec::new();
    for obj in replay.split("},{") {
        rows.push(BaselineRow {
            trace: field_str(obj, "trace")?,
            scheme: field_str(obj, "scheme")?,
            walk: field_f64(obj, "events_per_sec_walk")?,
            fast: field_f64(obj, "events_per_sec_fast")?,
        });
    }
    Some(rows)
}

/// Compares every current replay row against the baseline entry and
/// prints the delta table; returns false if any lane of any row lost
/// more than [`GATE_TOLERANCE`] of its events/sec.
fn regression_gate(path: &str, host_parallelism: usize, rows: &[ReplayRow]) -> bool {
    let Some(baseline) = baseline_rows(path, host_parallelism) else {
        println!(
            "\nregression gate: no prior entry at host_parallelism {host_parallelism} \
             in {path}; skipping"
        );
        return true;
    };
    println!(
        "\nregression gate vs last entry at host_parallelism {host_parallelism} \
         (tolerance -{:.0}%):",
        GATE_TOLERANCE * 100.0
    );
    let mut ok = true;
    for r in rows {
        let scheme = r.scheme.to_string();
        let Some(b) = baseline.iter().find(|b| b.trace == r.trace && b.scheme == scheme) else {
            println!("  {:<14} {scheme:<12} new row (no baseline)", r.trace);
            continue;
        };
        let walk = r.events as f64 * 1e9 / r.wall_walk as f64;
        let fast = r.events as f64 * 1e9 / r.wall_fast as f64;
        for (lane, now, then) in [("walk", walk, b.walk), ("fast", fast, b.fast)] {
            let delta = now / then - 1.0;
            let fail = delta < -GATE_TOLERANCE;
            ok &= !fail;
            println!(
                "  {:<14} {scheme:<12} {lane}  {:>8.2} -> {:>8.2} Mev/s  {:>+6.1}%{}",
                r.trace,
                then / 1e6,
                now / 1e6,
                delta * 100.0,
                if fail { "  REGRESSION" } else { "" },
            );
        }
    }
    ok
}

/// The commit this entry measures, so the bench trajectory is
/// attributable per PR; `"unknown"` outside a git checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Appends `entry` to the JSON array in `path`, creating the file (or
/// restarting the array if the file isn't one) as needed.
fn append_entry(path: &str, entry: &str) -> std::io::Result<()> {
    let trimmed = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim_end().strip_suffix(']').map(|t| t.trim_end().to_string()));
    let body = match trimmed {
        Some(t) if t.ends_with('[') => format!("{t}\n  {entry}\n]\n"),
        Some(t) => format!("{t},\n  {entry}\n]\n"),
        None => format!("[\n  {entry}\n]\n"),
    };
    std::fs::write(path, body)
}
