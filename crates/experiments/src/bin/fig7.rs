//! Regenerates Figure 7 (average overheads and libmpk speedup factors).
//! Pass --full for the paper's scale.

use pmo_experiments::{fig6::fig6, fig7::fig7, RunOptions, Scale};
use pmo_simarch::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let sim = SimConfig::isca2020();
    let f6 = fig6(scale, &sim, RunOptions::from_args());
    let f7 = fig7(&f6);
    println!("(scale: {scale:?})\n{f7}");
    if std::env::args().any(|a| a == "--csv") {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/fig6.csv", f6.to_csv()).expect("write csv");
        std::fs::write("results/fig7.csv", f7.to_csv()).expect("write csv");
        eprintln!("wrote results/fig6.csv and results/fig7.csv");
    }
}
