//! Exhaustive crash-image enumeration campaign: verify recovery against
//! *every* memory image the persistency model allows, not a sampled few.
//!
//! Default run enumerates all fence-delimited windows of every workload
//! trace, materializes each distinct image, runs real recovery, and
//! checks the structure invariants; pass `--full` for the paper-scale
//! configuration. `--seeded` additionally runs the self-validation
//! plants (torn-write, dropped-flush, reordered-persist — each must be
//! caught exhaustively, and the unmutated control must stay silent).
//!
//! A single violating image replays from its printed repro line:
//!
//! ```text
//! cargo run -p pmo-experiments --bin crashenum -- \
//!     --workload avl --window 12 --rank 3
//! ```
//!
//! `--json PATH` writes the report as JSON; `--jobs N` fans image
//! verification across N worker threads (the report is byte-identical
//! at any job count). Exits non-zero on any violating image, membership
//! miss, or missed plant.

use std::process::ExitCode;
use std::time::Instant;

use pmo_experiments::crashenum::{run_campaign, run_seeded, verify_one, CrashenumConfig};
use pmo_experiments::faultsim::FaultWorkload;
use pmo_experiments::{RunOptions, Scale};

/// Returns the value following `flag` on the command line, if any.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let mut cfg = CrashenumConfig::for_scale(scale);
    if let Some(seed) = arg_value("--seed").as_deref().and_then(parse_u64) {
        cfg.campaign_seed = seed;
    }

    // Repro mode: re-verify exactly one image from a printed repro line.
    let workload = arg_value("--workload");
    let window = arg_value("--window").as_deref().and_then(parse_u64);
    let rank = arg_value("--rank").as_deref().and_then(parse_u64);
    if workload.is_some() || window.is_some() || rank.is_some() {
        let (Some(workload), Some(window), Some(rank)) =
            (workload.as_deref().and_then(FaultWorkload::from_label), window, rank)
        else {
            eprintln!(
                "repro mode needs all of: --workload {{avl|rbtree|bplus|list|hashmap}} \
                 --window N --rank N [--seed N]"
            );
            return ExitCode::FAILURE;
        };
        let Some((hash, violation)) = verify_one(&cfg, workload, window, rank) else {
            eprintln!(
                "no such image: workload {} has no window {window} rank {rank} \
                 at this configuration",
                workload.label()
            );
            return ExitCode::FAILURE;
        };
        println!("image {} / window {window} / rank {rank} (hash {hash:#018x})", workload.label());
        return match violation {
            Some(detail) => {
                println!("outcome: VIOLATION — {detail}");
                ExitCode::FAILURE
            }
            None => {
                println!("outcome: recovered or quarantined cleanly");
                ExitCode::SUCCESS
            }
        };
    }

    // Campaign mode. Recovery panics are part of the verdict, so silence
    // the default "thread panicked" spew while images are checked.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    // Wall-clock stamping is the one sanctioned clock read: the campaign
    // itself is deterministic and stamped only after it finishes.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut report = run_campaign(&cfg, RunOptions::from_args().jobs);
    if std::env::args().any(|a| a == "--seeded") {
        report.seeded = run_seeded(&cfg);
    }
    report.wall_nanos = started.elapsed().as_nanos() as u64;
    std::panic::set_hook(default_hook);

    println!("(scale: {scale:?})\n{report}");
    if let Some(path) = arg_value("--json") {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
