//! Regenerates Table VII (overhead breakdown at the maximum PMO count).
//! Pass --full for the paper's scale.

use pmo_experiments::{table7::table7, RunOptions, Scale};
use pmo_simarch::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let sim = SimConfig::isca2020();
    println!("(scale: {scale:?})\n{}", table7(scale, &sim, RunOptions::from_args()));
}
