//! Regenerates Table V (WHISPER single-PMO overheads). Pass --full for
//! the paper's scale.

use pmo_experiments::{table5::table5, RunOptions, Scale};
use pmo_simarch::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let sim = SimConfig::isca2020();
    println!("(scale: {scale:?})\n{}", table5(scale, &sim, RunOptions::from_args()));
}
