//! Deterministic fault-injection campaign over the persistent
//! micro-workload structures.
//!
//! Default run sweeps crash points for every workload × fault kind and
//! prints the survival matrix; pass `--full` for the paper-scale sweep.
//! A single failing trial can be replayed from its printed repro line:
//!
//! ```text
//! cargo run -p pmo-experiments --bin faultsim -- \
//!     --workload avl --kind torn-write --after 37 --seed 0x1505
//! ```
//!
//! Exits non-zero if any trial violates a workload invariant or panics.
//! Each trial's trace is permission-audited by default (`--no-audit`
//! opts out); `--json PATH` writes the survival matrix as JSON;
//! `--jobs N` fans trials across N worker threads (the matrix is
//! byte-identical at any job count).

use std::process::ExitCode;
use std::time::Instant;

use pmo_experiments::faultsim::{
    fault_kind_from_label, measure_workload, run_campaign, run_trial, FaultWorkload,
    FaultsimConfig, Outcome,
};
use pmo_experiments::{RunOptions, Scale};

/// Returns the value following `flag` on the command line, if any.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let mut cfg = FaultsimConfig::for_scale(scale);
    if let Some(seed) = arg_value("--seed").as_deref().and_then(parse_u64) {
        cfg.campaign_seed = seed;
    }
    if std::env::args().any(|a| a == "--no-audit") {
        cfg.audit = false;
    }

    // Repro mode: replay exactly one trial from a printed failure line.
    let workload = arg_value("--workload");
    let kind = arg_value("--kind");
    let after = arg_value("--after").as_deref().and_then(parse_u64);
    if workload.is_some() || kind.is_some() || after.is_some() {
        let (Some(workload), Some(kind), Some(after)) = (
            workload.as_deref().and_then(FaultWorkload::from_label),
            kind.as_deref().and_then(fault_kind_from_label),
            after,
        ) else {
            eprintln!(
                "repro mode needs all of: --workload {{avl|rbtree|bplus|list|hashmap}} \
                 --kind {{power-failure|torn-write|media-error}} --after N [--seed N]"
            );
            return ExitCode::FAILURE;
        };
        let op_stores = measure_workload(&cfg, workload);
        let result = run_trial(&cfg, workload, kind, after);
        println!(
            "trial {} / {} / after={} (op phase: {} stores, fault seed {:#x})",
            workload.label(),
            kind,
            after,
            op_stores,
            cfg.fault_seed(workload, kind, after),
        );
        println!("outcome: {:?} — {}", result.outcome, result.detail);
        return if matches!(result.outcome, Outcome::Violation | Outcome::Panicked) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    // Campaign mode. Trial panics are part of the survival matrix, so
    // silence the default "thread panicked" spew while trials run.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    // Wall-clock stamping is the one sanctioned clock read: the campaign
    // itself is deterministic and stamped only after it finishes.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut report = run_campaign(&cfg, RunOptions::from_args().jobs);
    report.wall_nanos = started.elapsed().as_nanos() as u64;
    std::panic::set_hook(default_hook);

    println!("(scale: {scale:?})\n{report}");
    if let Some(path) = arg_value("--json") {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
