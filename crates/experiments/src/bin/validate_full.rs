//! Paper-scale validation at a single operating point: one benchmark at
//! 1024 PMOs with the paper's population (1024 nodes/PMO), measuring the
//! Figure 6/7 comparison where the paper reports its headline numbers.
//!
//! Usage: validate_full [--bench AVL|RBT|BT|LL|SS] [--ops N]

use pmo_experiments::{report_for, run_micro, RunOptions};
use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::{MicroBench, MicroConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .map(|name| {
            MicroBench::ALL
                .into_iter()
                .find(|b| b.label() == name)
                .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        })
        .unwrap_or(MicroBench::Avl);
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .map(|n| n.parse().expect("--ops N"))
        .unwrap_or(100_000);

    let sim = SimConfig::isca2020();
    let config = MicroConfig { ops, ..MicroConfig::paper() };
    println!(
        "paper-scale point: {bench} at {} PMOs x {}MB, {} initial nodes/PMO, {} ops",
        config.pmos,
        config.pmo_bytes >> 20,
        config.initial_nodes,
        config.ops
    );
    let kinds =
        [SchemeKind::Lowerbound, SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt];
    let reports = run_micro(bench, &config, &kinds, &sim, RunOptions::from_args());
    let lb = report_for(&reports, SchemeKind::Lowerbound);
    println!("lowerbound: {} cycles, {:.0} switches/sec", lb.cycles, lb.switches_per_sec(&sim));
    let overhead_of = |kind: SchemeKind| report_for(&reports, kind).overhead_pct_over(lb);
    for kind in [SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
        let r = report_for(&reports, kind);
        let pct = r.overhead_pct_over(lb);
        println!(
            "{:<12} overhead {:>8.1}%  (evictions {}, shootdowns {}, tlb-inval {}, \
             dttlb-miss {}, ptlb-miss {})",
            kind.label(),
            pct,
            r.scheme_stats.key_evictions,
            r.scheme_stats.shootdowns,
            r.scheme_stats.tlb_entries_invalidated,
            r.scheme_stats.dttlb_misses,
            r.scheme_stats.ptlb_misses,
        );
    }
    println!(
        "\nspeedup vs libmpk: mpk-virt {:.1}x, domain-virt {:.1}x  (paper at 1024 PMOs: 10.6x, 52.5x)",
        overhead_of(SchemeKind::LibMpk) / overhead_of(SchemeKind::MpkVirt),
        overhead_of(SchemeKind::LibMpk) / overhead_of(SchemeKind::DomainVirt),
    );
}
