//! Predictive-analysis certification campaign: ground the `predict`
//! pass's maximal-reordering inference in DPOR-exhaustive feasibility.
//!
//! Default run takes *one* deterministically sampled schedule per
//! canonical program of the quick worlds and certifies every predicted
//! finding — witness constructible, witness replay manifests the class
//! at the reported position, per-thread order preserved, and the lifted
//! operation schedule a member of the exhaustive feasible set. Any
//! prediction on these verified-clean worlds is a false positive; zero
//! are tolerated. The same pass then sweeps the production-shaped
//! workload traces (the 8-scheme campaign trace set) where exhaustive
//! enumeration cannot go; those must stay prediction-free too.
//! `--seeded` adds the usefulness matrix: every trace-level seeded bug
//! caught (with `key-reuse-after-evict` caught by prediction *alone*),
//! and every protocol bug classified by its trace shadow
//! (predicted/visible/invariant) with the DPOR seeded matrix as
//! cross-check.
//!
//! A predicted witness replays from its printed repro id:
//!
//! ```text
//! cargo run -p pmo-experiments --bin predict -- --replay w2@1763@4@6 --bug skip-ptlb-invalidate-on-detach
//! ```
//!
//! `--json PATH` writes the report as JSON; `--jobs N` fans program
//! certification across N worker threads (the report is byte-identical
//! at any job count). Exits non-zero on any false positive, count
//! mismatch, missed plant, or prediction on a clean trace.

use std::process::ExitCode;
use std::time::Instant;

use pmo_experiments::predict::{
    replay_repro, run_campaign, seeded_trace_rows, seeded_world_rows, PredictConfig,
};
use pmo_experiments::{RunOptions, Scale};
use pmo_protect::ProtocolBug;

/// Returns the value following `flag` on the command line, if any.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn bug_by_label(label: &str) -> Option<ProtocolBug> {
    ProtocolBug::ALL.into_iter().find(|b| b.label() == label)
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let cfg = PredictConfig::for_scale(scale);
    let jobs = RunOptions::from_args().jobs;

    let bug = match arg_value("--bug") {
        Some(label) => match bug_by_label(&label) {
            Some(bug) => Some(bug),
            None => {
                eprintln!(
                    "unknown --bug {label:?}; have: {}",
                    ProtocolBug::ALL.map(|b| b.label()).join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Repro mode: rebuild one witness and replay it through the
    // manifest passes.
    if let Some(repro) = arg_value("--replay") {
        let parsed = repro.split('@').collect::<Vec<_>>();
        let [world, program, moved, anchor] = parsed[..] else {
            eprintln!("--replay wants world@program@moved@anchor (e.g. w2@1763@4@6)");
            return ExitCode::FAILURE;
        };
        let (Ok(program), Ok(moved), Ok(anchor)) =
            (program.parse::<usize>(), moved.parse::<u64>(), anchor.parse::<u64>())
        else {
            eprintln!("bad --replay indices in {repro:?}");
            return ExitCode::FAILURE;
        };
        let report = match replay_repro(&cfg, world, program, moved, anchor, bug) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{report}");
        return if report.errors().count() == 0 {
            println!("replay: witness manifests no violation");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    // Campaign mode. Wall-clock stamping is the one sanctioned clock
    // read: the campaign itself is deterministic and stamped only after
    // it finishes.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut report = run_campaign(&cfg, scale, jobs);
    if std::env::args().any(|a| a == "--seeded") {
        report.seeded_trace = seeded_trace_rows();
        report.seeded_world = seeded_world_rows(&cfg, jobs, &ProtocolBug::ALL);
    }
    report.wall_nanos = started.elapsed().as_nanos() as u64;

    println!("(scale: {scale:?})\n{report}");
    if let Some(path) = arg_value("--json") {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
