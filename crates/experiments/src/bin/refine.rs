//! Refinement-verification campaign: check both hardware designs against
//! the executable permission-oracle spec over *every* canonical program
//! of bounded small worlds, under every DPOR-distinct schedule, plus a
//! perturb-and-compare noninterference pass per schedule.
//!
//! Default run verifies the quick worlds exhaustively and prints a loud
//! `SKIPPED (scale cap)` row — with the closed-form count of unverified
//! canonical programs — for each paper-scale world it leaves out;
//! `--full` adds those worlds. `--seeded` re-validates every plantable
//! protocol bug: each must surface as a refinement failure with a
//! deterministic witness, re-confirmed by replay.
//!
//! A single counterexample replays from its printed repro id:
//!
//! ```text
//! cargo run -p pmo-experiments --bin refine -- --replay w2@1731@0.1.0.1
//! cargo run -p pmo-experiments --bin refine -- --replay w2@1731@0.1.0.1 --bug skip-ptlb-flush-on-switch
//! ```
//!
//! `--json PATH` writes the report as JSON; `--jobs N` fans program
//! verification across N worker threads (the report is byte-identical at
//! any job count). Exits non-zero on any violation, count mismatch, or
//! missed plant.

use std::process::ExitCode;
use std::time::Instant;

use pmo_experiments::refine::{replay_repro, run_campaign, run_seeded, RefineConfig};
use pmo_experiments::{RunOptions, Scale};
use pmo_modelcheck::parse_schedule;
use pmo_protect::ProtocolBug;

/// Returns the value following `flag` on the command line, if any.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn bug_by_label(label: &str) -> Option<ProtocolBug> {
    ProtocolBug::ALL.into_iter().find(|b| b.label() == label)
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let cfg = RefineConfig::for_scale(scale);
    let jobs = RunOptions::from_args().jobs;

    let bug = match arg_value("--bug") {
        Some(label) => match bug_by_label(&label) {
            Some(bug) => Some(bug),
            None => {
                eprintln!(
                    "unknown --bug {label:?}; have: {}",
                    ProtocolBug::ALL.map(|b| b.label()).join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Repro mode: replay exactly one world@program@schedule id.
    if let Some(repro) = arg_value("--replay") {
        let parsed = repro.split('@').collect::<Vec<_>>();
        let [world, program, schedule] = parsed[..] else {
            eprintln!("--replay wants world@program@schedule (e.g. w2@1731@0.1.0.1)");
            return ExitCode::FAILURE;
        };
        let Ok(program) = program.parse::<usize>() else {
            eprintln!("bad program index {program:?}");
            return ExitCode::FAILURE;
        };
        let schedule = match parse_schedule(schedule) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bad schedule: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = match replay_repro(&cfg, world, program, &schedule, bug) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", outcome.report);
        return if outcome.violations.is_empty() {
            println!("replay: clean (no refinement or noninterference violation)");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Campaign mode. Wall-clock stamping is the one sanctioned clock
    // read: the campaign itself is deterministic and stamped only after
    // it finishes.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut report = run_campaign(&cfg, jobs);
    if std::env::args().any(|a| a == "--seeded") {
        report.seeded = run_seeded(&cfg, jobs);
    }
    report.wall_nanos = started.elapsed().as_nanos() as u64;

    println!("(scale: {scale:?})\n{report}");
    if let Some(path) = arg_value("--json") {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
