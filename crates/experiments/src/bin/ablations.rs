//! Runs the design-choice ablations (buffer capacity, thread scaling,
//! context-switch quantum, MLP sensitivity). Pass --full for the paper's
//! scale on the workload-driven sweeps.

use pmo_experiments::{ablations, Scale};
use pmo_simarch::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let sim = SimConfig::isca2020();
    println!("(scale: {scale:?})\n");
    println!("{}\n", ablations::buffer_capacity(scale, &sim));
    println!("{}\n", ablations::thread_scaling(scale, &sim));
    println!("{}\n", ablations::context_switch_quantum(&sim));
    println!("{}\n", ablations::mlp_sensitivity(scale, &sim));
    println!("{}\n", ablations::switch_granularity(&sim));
    let (libmpk_size, mpkvirt_size) = ablations::domain_size(&sim);
    println!("{libmpk_size}\n");
    println!("{mpkvirt_size}");
}
