//! Chaos soak campaign over the sharded multi-tenant pool service.
//!
//! Default run drives 64 tenants (4 shards × 16) through mixed
//! workloads under seeded chaos and admission-control pressure; pass
//! `--full` for the paper-scale soak. Any single tenant's timeline can
//! be replayed op-by-op from the campaign seed:
//!
//! ```text
//! cargo run -p pmo-experiments --bin soak -- --tenant 23 --seed 0x50a5eed
//! ```
//!
//! Exits non-zero on any invariant violation or analyzer audit error.
//! `--json PATH` writes the report as JSON; `--jobs N` fans shards
//! across N workers (the report is byte-identical at any job count);
//! `--no-audit` skips the per-shard analyzer audit.

use std::process::ExitCode;
use std::time::Instant;

use pmo_experiments::soak::{run_shard, run_soak, SoakConfig};
use pmo_experiments::{RunOptions, Scale};

/// Returns the value following `flag` on the command line, if any.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let mut cfg = SoakConfig::for_scale(scale);
    if let Some(seed) = arg_value("--seed").as_deref().and_then(parse_u64) {
        cfg.soak_seed = seed;
    }
    if std::env::args().any(|a| a == "--no-audit") {
        cfg.audit = false;
    }

    // Replay mode: re-run the one shard hosting a tenant and print that
    // tenant's op-by-op timeline.
    if let Some(tenant) = arg_value("--tenant").as_deref().and_then(parse_u64) {
        if tenant >= cfg.tenants() {
            eprintln!("--tenant {tenant} out of range (campaign has {} tenants)", cfg.tenants());
            return ExitCode::FAILURE;
        }
        let shard = cfg.shard_of(tenant);
        let report = run_shard(&cfg, shard, Some(tenant));
        println!(
            "tenant {tenant} (shard {shard}, workload {}, seed {:#x}):",
            cfg.workload_of(tenant).label(),
            cfg.soak_seed,
        );
        for line in &report.tenant_log {
            println!("  {line}");
        }
        for v in &report.violations {
            println!("VIOLATION [shard {shard}] {v}");
        }
        return if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    // Wall-clock stamping is the one sanctioned clock read: the campaign
    // itself runs on logical time and is stamped only after it finishes.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut report = run_soak(&cfg, RunOptions::from_args().jobs);
    report.wall_nanos = started.elapsed().as_nanos() as u64;

    println!("(scale: {scale:?})\n{report}");
    if let Some(path) = arg_value("--json") {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
