//! Runs every experiment in sequence (the full evaluation). Pass --full
//! for the paper's scale.

use pmo_experiments::{fig6, fig7, table5, table6, table7, table8, RunOptions, Scale};
use pmo_simarch::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let sim = SimConfig::isca2020();
    let opts = RunOptions::from_args();
    println!("=== Reproduction run (scale: {scale:?}) ===\n");
    println!("Table II: simulation parameters\n\n{sim}\n");
    println!("{}\n", table5::table5(scale, &sim, opts));
    println!("{}\n", table6::table6(scale, &sim, opts));
    let f6 = fig6::fig6(scale, &sim, opts);
    println!("{f6}");
    println!("{}\n", fig7::fig7(&f6));
    println!("{}\n", table7::table7(scale, &sim, opts));
    println!("{}", table8::table8(&sim));
}
