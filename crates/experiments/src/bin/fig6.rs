//! Regenerates Figure 6 (overhead vs number of PMOs, per benchmark).
//! Pass --full for the paper's scale.

use pmo_experiments::{fig6::fig6, RunOptions, Scale};
use pmo_simarch::SimConfig;

fn main() {
    let scale = Scale::from_args();
    let sim = SimConfig::isca2020();
    let result = fig6(scale, &sim, RunOptions::from_args());
    println!("(scale: {scale:?})\n{result}");
    if std::env::args().any(|a| a == "--csv") {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/fig6.csv", result.to_csv()).expect("write csv");
        eprintln!("wrote results/fig6.csv");
    }
}
