//! Regenerates Table VIII (area overheads).

use pmo_experiments::table8::table8;
use pmo_simarch::SimConfig;

fn main() {
    println!("{}", table8(&SimConfig::isca2020()));
}
