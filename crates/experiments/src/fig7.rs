//! Figure 7: overheads averaged over the five microbenchmarks, and the
//! headline libmpk speedup factors.

use std::fmt;

use crate::fig6::Fig6;
use crate::text::{f, TextTable};

/// One averaged sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Point {
    /// Active PMO count.
    pub pmos: u32,
    /// Mean libmpk overhead over lowerbound, percent.
    pub libmpk_pct: f64,
    /// Mean ERIM call-gate overhead, percent.
    pub erim_pct: f64,
    /// Mean DPTI overhead, percent.
    pub dpti_pct: f64,
    /// Mean hardware MPK-virtualization overhead, percent.
    pub mpk_virt_pct: f64,
    /// Mean hardware domain-virtualization overhead, percent.
    pub domain_virt_pct: f64,
}

impl Fig7Point {
    /// Overhead-reduction factor of MPK virtualization vs libmpk — the
    /// paper's "N x faster than libmpk" metric (ratio of overheads, e.g.
    /// 10.6x at 1024 PMOs).
    #[must_use]
    pub fn mpk_virt_speedup(&self) -> f64 {
        if self.mpk_virt_pct <= 0.0 {
            f64::INFINITY
        } else {
            self.libmpk_pct / self.mpk_virt_pct
        }
    }

    /// Overhead-reduction factor of domain virtualization vs libmpk
    /// (the paper reports 25.8x at 64 PMOs and 52.5x at 1024).
    #[must_use]
    pub fn domain_virt_speedup(&self) -> f64 {
        if self.domain_virt_pct <= 0.0 {
            f64::INFINITY
        } else {
            self.libmpk_pct / self.domain_virt_pct
        }
    }

    /// Overhead-reduction factor of domain virtualization vs ERIM — the
    /// ROADMAP-item-2 question of where hardware virtualization stops
    /// winning against the strongest software scheme.
    #[must_use]
    pub fn domain_virt_vs_erim(&self) -> f64 {
        if self.domain_virt_pct <= 0.0 {
            f64::INFINITY
        } else {
            self.erim_pct / self.domain_virt_pct
        }
    }

    /// Overhead-reduction factor of domain virtualization vs DPTI.
    #[must_use]
    pub fn domain_virt_vs_dpti(&self) -> f64 {
        if self.domain_virt_pct <= 0.0 {
            f64::INFINITY
        } else {
            self.dpti_pct / self.domain_virt_pct
        }
    }
}

/// The full Figure 7 result.
#[derive(Clone, Debug)]
pub struct Fig7 {
    /// Averaged points in ascending PMO order.
    pub points: Vec<Fig7Point>,
}

/// Averages a Figure 6 run into Figure 7.
#[must_use]
pub fn fig7(fig6: &Fig6) -> Fig7 {
    let n_series = fig6.series.len() as f64;
    let n_points = fig6.series.first().map_or(0, |s| s.points.len());
    let mut points = Vec::with_capacity(n_points);
    for i in 0..n_points {
        let pmos = fig6.series[0].points[i].pmos;
        let mean = |get: &dyn Fn(&crate::fig6::Fig6Point) -> f64| {
            fig6.series.iter().map(|s| get(&s.points[i])).sum::<f64>() / n_series
        };
        points.push(Fig7Point {
            pmos,
            libmpk_pct: mean(&|p| p.libmpk_pct),
            erim_pct: mean(&|p| p.erim_pct),
            dpti_pct: mean(&|p| p.dpti_pct),
            mpk_virt_pct: mean(&|p| p.mpk_virt_pct),
            domain_virt_pct: mean(&|p| p.domain_virt_pct),
        });
    }
    Fig7 { points }
}

impl Fig7 {
    /// Renders the averaged sweep as CSV (`pmos,libmpk_pct,erim_pct,
    /// dpti_pct,mpk_virt_pct,domain_virt_pct,mpk_virt_speedup,
    /// domain_virt_speedup,domain_virt_vs_erim,domain_virt_vs_dpti`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "pmos,libmpk_pct,erim_pct,dpti_pct,mpk_virt_pct,domain_virt_pct,\
             mpk_virt_speedup,domain_virt_speedup,domain_virt_vs_erim,domain_virt_vs_dpti\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                p.pmos,
                p.libmpk_pct,
                p.erim_pct,
                p.dpti_pct,
                p.mpk_virt_pct,
                p.domain_virt_pct,
                p.mpk_virt_speedup(),
                p.domain_virt_speedup(),
                p.domain_virt_vs_erim(),
                p.domain_virt_vs_dpti()
            ));
        }
        out
    }

    /// The point for a given PMO count, if part of the sweep.
    #[must_use]
    pub fn at(&self, pmos: u32) -> Option<&Fig7Point> {
        self.points.iter().find(|p| p.pmos == pmos)
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 7: overhead comparison to libmpk, ERIM, DPTI and lowerbound (mean \
             of the five microbenchmarks; speedup = overhead reduction vs libmpk)",
            &[
                "PMOs",
                "libmpk %",
                "erim %",
                "dpti %",
                "mpk-virt %",
                "domain-virt %",
                "mpk-virt speedup",
                "domain-virt speedup",
                "dv vs erim",
                "dv vs dpti",
            ],
        );
        for p in &self.points {
            t.row(vec![
                p.pmos.to_string(),
                f(p.libmpk_pct, 1),
                f(p.erim_pct, 1),
                f(p.dpti_pct, 1),
                f(p.mpk_virt_pct, 1),
                f(p.domain_virt_pct, 1),
                format!("{}x", f(p.mpk_virt_speedup(), 1)),
                format!("{}x", f(p.domain_virt_speedup(), 1)),
                format!("{}x", f(p.domain_virt_vs_erim(), 1)),
                format!("{}x", f(p.domain_virt_vs_dpti(), 1)),
            ]);
        }
        write!(out, "{t}")?;
        if let Some(last) = self.points.last() {
            write!(
                out,
                "\nAt {} PMOs: hardware MPK virtualization reduces libmpk's overhead {}x; \
                 domain virtualization reduces it {}x\n(paper: 10.6x and 52.5x at 1024 PMOs)",
                last.pmos,
                f(last.mpk_virt_speedup(), 1),
                f(last.domain_virt_speedup(), 1),
            )?;
        }
        Ok(())
    }
}
