//! Refinement-verification campaign: exhaustive small-world enumeration
//! driven through the DPOR explorer in refine mode.
//!
//! Where the modelcheck campaign explores ten hand-picked adversarial
//! scenarios, this campaign enumerates *every* canonical program of a
//! bounded world — up to `N` total ops over `M` threads and `K` domains,
//! symmetry-reduced under thread/domain relabeling
//! ([`pmo_modelcheck::enumerate`]) — and checks each one, under every
//! DPOR-distinct schedule, against the executable permission-oracle spec
//! ([`pmo_modelcheck::SpecMachine`]):
//!
//! * **Refinement** — both concrete designs must stay in simulation with
//!   the spec after every step: identical allow/deny verdicts, abstraction
//!   functions mapping their state back onto the spec state exactly, and
//!   no derived cache observably ahead of or behind it. Any divergence is
//!   a `refinement-divergence` violation carrying a deterministic
//!   `world@program@schedule` repro id.
//! * **Noninterference** — per explored schedule, a perturb-and-compare
//!   pass proves no data flow from a domain's contents to any thread that
//!   never held a grant on it (`noninterference-leak` otherwise).
//!
//! The per-world canonical program count is cross-checked against the
//! Burnside closed form: a mismatch means the enumerator dropped or
//! duplicated an equivalence class and fails the campaign. `--seeded`
//! re-validates every plantable [`ProtocolBug`]: each must surface as
//! a refinement failure on some enumerated program, with the witness
//! schedule re-verified by replay. Reports are byte-identical at any
//! `--jobs` count.
//!
//! Scale caps are never silent: worlds excluded by the selected
//! [`Scale`] appear in the report (text and JSON) as explicit
//! `SKIPPED` rows carrying the closed-form count of canonical programs
//! that were *not* verified, so a quick run can't be mistaken for
//! paper-scale coverage.

use std::fmt;

use pmo_analyzer::{json_string, ViolationClass};
use pmo_modelcheck::enumerate::{self, Codes, WorldBounds};
use pmo_modelcheck::{
    explore_mode, model_config, replay_schedule_mode, CheckMode, ExploreLimits, Violation,
};
use pmo_protect::ProtocolBug;
use pmo_simarch::SimConfig;

use crate::pool::parallel_map;
use crate::Scale;

/// One bounded world: enumeration bounds plus the shrunken hardware
/// configuration its programs run on.
#[derive(Clone, Copy, Debug)]
pub struct RefineWorld {
    /// Stable world name (report key, repro-id prefix).
    pub name: &'static str,
    /// Enumeration bounds.
    pub bounds: WorldBounds,
    /// Usable-protection-key count (+1 reserved key 0); fewer keys than
    /// domains puts every program under key pressure.
    pub pkeys: u32,
    /// DTTLB capacity.
    pub dttlb: u32,
    /// PTLB capacity.
    pub ptlb: u32,
}

impl RefineWorld {
    /// The world's hardware configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        model_config(self.pkeys, self.dttlb, self.ptlb)
    }
}

/// Campaign shape.
#[derive(Clone, Debug)]
pub struct RefineConfig {
    /// Worlds enumerated, in report order.
    pub worlds: Vec<RefineWorld>,
    /// Worlds the selected [`Scale`] excludes (the paper-scale worlds
    /// under `quick`). Never silently dropped: the report carries one
    /// loud row per skipped world with its unverified program count.
    pub skipped: Vec<RefineWorld>,
    /// Per-program exploration bounds.
    pub limits: ExploreLimits,
    /// Distinct violations kept per world; the excess is counted in
    /// `violations_total`, never silently dropped.
    pub max_violations: usize,
    /// Programs per parallel work unit.
    pub chunk: usize,
}

impl RefineConfig {
    /// The campaign shape for a [`Scale`].
    ///
    /// Quick: `w1` (3 ops, 2 threads, 2 domains, no key pressure) plus
    /// `w2` (4 ops, 2 threads, 2 domains, a single usable key and 2-entry
    /// DTTLB/PTLB, so every program runs under key pressure with
    /// capacity evictions in reach). Paper scale adds `w3` (3 threads)
    /// and `w4` (5 ops).
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        let mut worlds = vec![
            RefineWorld {
                name: "w1",
                bounds: WorldBounds { ops: 3, threads: 2, domains: 2 },
                pkeys: 8,
                dttlb: 4,
                ptlb: 4,
            },
            RefineWorld {
                name: "w2",
                bounds: WorldBounds { ops: 4, threads: 2, domains: 2 },
                pkeys: 2,
                dttlb: 2,
                ptlb: 2,
            },
        ];
        let paper_worlds = vec![
            RefineWorld {
                name: "w3",
                bounds: WorldBounds { ops: 4, threads: 3, domains: 2 },
                pkeys: 2,
                dttlb: 2,
                ptlb: 2,
            },
            RefineWorld {
                name: "w4",
                bounds: WorldBounds { ops: 5, threads: 2, domains: 2 },
                pkeys: 3,
                dttlb: 2,
                ptlb: 2,
            },
        ];
        let skipped = if scale == Scale::Paper {
            worlds.extend(paper_worlds);
            Vec::new()
        } else {
            paper_worlds
        };
        RefineConfig {
            worlds,
            skipped,
            limits: ExploreLimits::default(),
            max_violations: 20,
            chunk: 512,
        }
    }

    /// The world named `name`, if configured.
    #[must_use]
    pub fn world(&self, name: &str) -> Option<&RefineWorld> {
        self.worlds.iter().find(|w| w.name == name)
    }
}

/// Exhaustive verification results for one world.
#[derive(Clone, Debug)]
pub struct WorldOutcome {
    /// World name.
    pub world: String,
    /// Enumeration bounds.
    pub bounds: WorldBounds,
    /// Raw (pre-reduction) program count, closed form.
    pub raw: u128,
    /// Burnside closed-form orbit count.
    pub burnside: u128,
    /// Programs actually enumerated (must equal `burnside`).
    pub canonical: u64,
    /// DPOR-distinct schedules explored across all programs.
    pub schedules: u64,
    /// Operations executed across all schedules.
    pub steps: u64,
    /// Sleep-set-blocked prefixes pruned.
    pub sleep_blocked: u64,
    /// Programs whose exploration hit the schedule cap.
    pub truncated: u64,
    /// Distinct violations kept (capped), in enumeration order.
    pub violations: Vec<Violation>,
    /// Total violation occurrences, including beyond the cap.
    pub violations_total: u64,
}

impl WorldOutcome {
    /// Whether enumeration matched the closed form and no schedule
    /// diverged from the spec.
    #[must_use]
    pub fn passed(&self) -> bool {
        u128::from(self.canonical) == self.burnside
            && self.violations_total == 0
            && self.truncated == 0
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        let violations =
            self.violations.iter().map(Violation::to_json).collect::<Vec<_>>().join(",");
        format!(
            "{{\"world\":{},\"ops\":{},\"threads\":{},\"domains\":{},\"raw\":{},\
             \"burnside\":{},\"canonical\":{},\"schedules\":{},\"steps\":{},\
             \"sleep_blocked\":{},\"truncated\":{},\"violations_total\":{},\
             \"violations\":[{violations}]}}",
            json_string(&self.world),
            self.bounds.ops,
            self.bounds.threads,
            self.bounds.domains,
            self.raw,
            self.burnside,
            self.canonical,
            self.schedules,
            self.steps,
            self.sleep_blocked,
            self.truncated,
            self.violations_total,
        )
    }
}

/// One world excluded by the selected scale: everything needed to say
/// loudly how much verification did *not* happen.
#[derive(Clone, Debug)]
pub struct SkippedWorld {
    /// World name.
    pub world: String,
    /// Enumeration bounds it would have run at.
    pub bounds: WorldBounds,
    /// Raw (pre-reduction) program count, closed form.
    pub raw: u128,
    /// Burnside orbit count: canonical programs left unverified.
    pub unverified: u128,
}

impl SkippedWorld {
    /// Builds the row from a configured-but-excluded world.
    #[must_use]
    pub fn from_world(world: &RefineWorld) -> Self {
        SkippedWorld {
            world: world.name.to_string(),
            bounds: world.bounds,
            raw: enumerate::raw_count(&world.bounds),
            unverified: enumerate::orbit_count(&world.bounds),
        }
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"world\":{},\"ops\":{},\"threads\":{},\"domains\":{},\"raw\":{},\
             \"unverified\":{}}}",
            json_string(&self.world),
            self.bounds.ops,
            self.bounds.threads,
            self.bounds.domains,
            self.raw,
            self.unverified,
        )
    }
}

/// One seeded-bug validation row: the bug, the first enumerated program
/// that exposes it, and the replay verdict.
#[derive(Clone, Debug)]
pub struct SeededOutcome {
    /// The planted bug.
    pub bug: ProtocolBug,
    /// `world@program` of the first exposing program.
    pub scenario: String,
    /// The witness violation's class.
    pub class: ViolationClass,
    /// The witness schedule (CLI form).
    pub schedule: String,
    /// Canonical programs scanned before the bug surfaced.
    pub programs_scanned: u64,
    /// Whether replaying the witness schedule reproduced the violation.
    pub replay_confirmed: bool,
}

impl SeededOutcome {
    /// Whether the bug was caught as a refinement failure and the
    /// witness replays.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.class == ViolationClass::RefinementDivergence && self.replay_confirmed
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bug\":{},\"scenario\":{},\"class\":{},\"schedule\":{},\
             \"programs_scanned\":{},\"replay_confirmed\":{},\"passed\":{}}}",
            json_string(self.bug.label()),
            json_string(&self.scenario),
            json_string(self.class.name()),
            json_string(&self.schedule),
            self.programs_scanned,
            self.replay_confirmed,
            self.passed(),
        )
    }
}

/// The whole campaign report.
#[derive(Clone, Debug, Default)]
pub struct RefineReport {
    /// Per-world outcomes, in configuration order.
    pub worlds: Vec<WorldOutcome>,
    /// Worlds excluded by the selected scale, each with its unverified
    /// program count.
    pub skipped: Vec<SkippedWorld>,
    /// Seeded-bug validation rows (`--seeded` only).
    pub seeded: Vec<SeededOutcome>,
    /// Wall time, stamped by the binary after the deterministic core
    /// finishes (0 in library use).
    pub wall_nanos: u64,
}

impl RefineReport {
    /// Whether every world passed and every seeded bug was re-validated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.worlds.iter().all(WorldOutcome::passed)
            && self.seeded.iter().all(SeededOutcome::passed)
    }

    /// Total schedules explored across all worlds.
    #[must_use]
    pub fn total_schedules(&self) -> u64 {
        self.worlds.iter().map(|w| w.schedules).sum()
    }

    /// Total canonical programs verified.
    #[must_use]
    pub fn total_programs(&self) -> u64 {
        self.worlds.iter().map(|w| w.canonical).sum()
    }

    /// Total canonical programs left unverified by scale caps.
    #[must_use]
    pub fn total_unverified(&self) -> u128 {
        self.skipped.iter().map(|s| s.unverified).sum()
    }

    /// JSON document (stable field names; `wall_nanos` is the only
    /// nondeterministic field).
    #[must_use]
    pub fn to_json(&self) -> String {
        let worlds = self.worlds.iter().map(WorldOutcome::to_json).collect::<Vec<_>>().join(",");
        let skipped = self.skipped.iter().map(SkippedWorld::to_json).collect::<Vec<_>>().join(",");
        let seeded = self.seeded.iter().map(SeededOutcome::to_json).collect::<Vec<_>>().join(",");
        format!(
            "{{\"clean\":{},\"programs\":{},\"schedules\":{},\
             \"skipped_world_count\":{},\"unverified_programs\":{},\"wall_nanos\":{},\
             \"worlds\":[{worlds}],\"skipped_worlds\":[{skipped}],\"seeded\":[{seeded}]}}",
            self.is_clean(),
            self.total_programs(),
            self.total_schedules(),
            self.skipped.len(),
            self.total_unverified(),
            self.wall_nanos,
        )
    }
}

impl fmt::Display for RefineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>14} {:>12} {:>10} {:>12} {:>12} {:>10}",
            "world", "bounds", "raw", "canonical", "burnside", "schedules", "violations"
        )?;
        for w in &self.worlds {
            writeln!(
                f,
                "{:<6} {:>14} {:>12} {:>10} {:>12} {:>12} {:>10}{}{}",
                w.world,
                format!("N{} M{} K{}", w.bounds.ops, w.bounds.threads, w.bounds.domains),
                w.raw,
                w.canonical,
                w.burnside,
                w.schedules,
                w.violations_total,
                if u128::from(w.canonical) != w.burnside { " (COUNT MISMATCH)" } else { "" },
                if w.truncated > 0 { " (truncated)" } else { "" },
            )?;
        }
        for s in &self.skipped {
            writeln!(
                f,
                "{:<6} {:>14} {:>12} SKIPPED (scale cap): {} canonical programs NOT \
                 verified at this scale; rerun with --full",
                s.world,
                format!("N{} M{} K{}", s.bounds.ops, s.bounds.threads, s.bounds.domains),
                s.raw,
                s.unverified,
            )?;
        }
        writeln!(
            f,
            "total: {} canonical programs, {} schedules explored",
            self.total_programs(),
            self.total_schedules()
        )?;
        if !self.skipped.is_empty() {
            writeln!(
                f,
                "skipped: {} world(s), {} canonical programs unverified (scale cap)",
                self.skipped.len(),
                self.total_unverified()
            )?;
        }
        for v in self.worlds.iter().flat_map(|w| &w.violations) {
            writeln!(f, "  {v}")?;
        }
        if !self.seeded.is_empty() {
            writeln!(f, "\nseeded-bug re-validation (refinement mode):")?;
            for s in &self.seeded {
                writeln!(
                    f,
                    "  {:<32} {:>5} -> {} as {} via schedule {} (replay {})",
                    s.bug.label(),
                    if s.passed() { "FOUND" } else { "MISS" },
                    s.scenario,
                    s.class.name(),
                    s.schedule,
                    if s.replay_confirmed { "confirmed" } else { "DIVERGED" },
                )?;
            }
        }
        if self.is_clean() {
            writeln!(f, "\nresult: CLEAN")?;
        } else {
            writeln!(f, "\nresult: VIOLATIONS FOUND")?;
        }
        Ok(())
    }
}

/// Per-chunk partial result (merged in enumeration order).
struct ChunkOutcome {
    schedules: u64,
    steps: u64,
    sleep_blocked: u64,
    truncated: u64,
    violations: Vec<Violation>,
    violation_count: u64,
}

/// Explores one enumerated program in refine mode.
fn check_program(
    world: &RefineWorld,
    index: usize,
    codes: &Codes,
    bug: Option<ProtocolBug>,
    limits: &ExploreLimits,
) -> pmo_modelcheck::ExploreOutcome {
    let scenario = enumerate::to_scenario(world.name, index, codes, &world.bounds, world.config());
    explore_mode(&scenario, bug, limits, CheckMode::Refine)
}

/// Exhaustively verifies one world, fanning program chunks across `jobs`
/// workers. Deterministic: chunks are merged in enumeration order, so the
/// outcome is byte-identical at any job count.
#[must_use]
pub fn run_world(world: &RefineWorld, cfg: &RefineConfig, jobs: usize) -> WorldOutcome {
    let programs = enumerate::enumerate_canonical(&world.bounds);
    let canonical = programs.len() as u64;
    let chunks: Vec<(usize, &[Codes])> = programs
        .chunks(cfg.chunk.max(1))
        .enumerate()
        .map(|(i, c)| (i * cfg.chunk.max(1), c))
        .collect();
    let limits = cfg.limits;
    let partials = parallel_map(jobs, chunks, |(start, chunk)| {
        let mut part = ChunkOutcome {
            schedules: 0,
            steps: 0,
            sleep_blocked: 0,
            truncated: 0,
            violations: Vec::new(),
            violation_count: 0,
        };
        for (i, codes) in chunk.iter().enumerate() {
            let out = check_program(world, start + i, codes, None, &limits);
            part.schedules += out.schedules;
            part.steps += out.steps;
            part.sleep_blocked += out.sleep_blocked;
            part.truncated += u64::from(out.truncated);
            part.violation_count += out.violation_count;
            part.violations.extend(out.violations);
        }
        part
    });

    let mut outcome = WorldOutcome {
        world: world.name.to_string(),
        bounds: world.bounds,
        raw: enumerate::raw_count(&world.bounds),
        burnside: enumerate::orbit_count(&world.bounds),
        canonical,
        schedules: 0,
        steps: 0,
        sleep_blocked: 0,
        truncated: 0,
        violations: Vec::new(),
        violations_total: 0,
    };
    for part in partials {
        outcome.schedules += part.schedules;
        outcome.steps += part.steps;
        outcome.sleep_blocked += part.sleep_blocked;
        outcome.truncated += part.truncated;
        outcome.violations_total += part.violation_count;
        for v in part.violations {
            if outcome.violations.len() < cfg.max_violations {
                outcome.violations.push(v);
            }
        }
    }
    outcome
}

/// Runs the clean campaign over every configured world.
#[must_use]
pub fn run_campaign(cfg: &RefineConfig, jobs: usize) -> RefineReport {
    RefineReport {
        worlds: cfg.worlds.iter().map(|w| run_world(w, cfg, jobs)).collect(),
        skipped: cfg.skipped.iter().map(SkippedWorld::from_world).collect(),
        seeded: Vec::new(),
        wall_nanos: 0,
    }
}

/// Re-validates every plantable [`ProtocolBug`] through the refinement
/// checker: scans the enumerated programs of each world in order (chunks
/// fanned across `jobs` workers, first witness in enumeration order
/// regardless of job count) until the planted bug surfaces, then replays
/// the witness schedule to confirm the counterexample is deterministic.
#[must_use]
pub fn run_seeded(cfg: &RefineConfig, jobs: usize) -> Vec<SeededOutcome> {
    ProtocolBug::ALL
        .iter()
        .map(|&bug| {
            let mut scanned = 0u64;
            for world in &cfg.worlds {
                let programs = enumerate::enumerate_canonical(&world.bounds);
                let chunk = cfg.chunk.max(1);
                for (ci, chunk_programs) in programs.chunks(chunk).enumerate() {
                    let start = ci * chunk;
                    let limits = cfg.limits;
                    let outs = parallel_map(
                        jobs,
                        chunk_programs.iter().enumerate().collect(),
                        |(i, codes)| check_program(world, start + i, codes, Some(bug), &limits),
                    );
                    for (i, out) in outs.into_iter().enumerate() {
                        scanned += 1;
                        let Some(witness) = out.violations.first() else {
                            continue;
                        };
                        let scenario = enumerate::to_scenario(
                            world.name,
                            start + i,
                            &programs[start + i],
                            &world.bounds,
                            world.config(),
                        );
                        let replayed = replay_schedule_mode(
                            &scenario,
                            Some(bug),
                            &witness.schedule,
                            CheckMode::Refine,
                        );
                        let confirmed = replayed.is_ok_and(|r| {
                            r.violations.iter().any(|v| v.class == witness.class)
                                && !r.report.passed()
                        });
                        return SeededOutcome {
                            bug,
                            scenario: witness.scenario.clone(),
                            class: witness.class,
                            schedule: witness.schedule_string(),
                            programs_scanned: scanned,
                            replay_confirmed: confirmed,
                        };
                    }
                }
            }
            SeededOutcome {
                bug,
                scenario: "(not caught)".to_string(),
                class: ViolationClass::RefinementDivergence,
                schedule: String::new(),
                programs_scanned: scanned,
                replay_confirmed: false,
            }
        })
        .collect()
}

/// Replays one `world@program@schedule` repro id in refine mode and
/// returns the analyzer report plus the violations it reproduced.
///
/// # Errors
///
/// Returns a description when the world is unknown, the program index is
/// out of range, or the schedule is not executable.
pub fn replay_repro(
    cfg: &RefineConfig,
    world_name: &str,
    program: usize,
    schedule: &[u32],
    bug: Option<ProtocolBug>,
) -> Result<pmo_modelcheck::ReplayOutcome, String> {
    let world = cfg
        .world(world_name)
        .ok_or_else(|| format!("unknown world {world_name:?} (have: w1, w2, ...)"))?;
    let programs = enumerate::enumerate_canonical(&world.bounds);
    let codes = programs.get(program).ok_or_else(|| {
        format!("{world_name} has {} programs, no index {program}", programs.len())
    })?;
    let scenario =
        enumerate::to_scenario(world.name, program, codes, &world.bounds, world.config());
    replay_schedule_mode(&scenario, bug, schedule, CheckMode::Refine)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-world shrunken configuration that keeps tests fast.
    fn tiny_config() -> RefineConfig {
        RefineConfig {
            worlds: vec![RefineWorld {
                name: "w1",
                bounds: WorldBounds { ops: 3, threads: 2, domains: 2 },
                pkeys: 8,
                dttlb: 4,
                ptlb: 4,
            }],
            skipped: Vec::new(),
            limits: ExploreLimits::default(),
            max_violations: 20,
            chunk: 64,
        }
    }

    #[test]
    fn tiny_world_is_clean_and_counts_match_closed_form() {
        let cfg = tiny_config();
        let report = run_campaign(&cfg, 1);
        assert!(report.is_clean(), "{report}");
        let w = &report.worlds[0];
        assert_eq!(w.raw, 11_593, "Σ C(n+1,1)·14^n for n≤3");
        assert_eq!(u128::from(w.canonical), w.burnside);
        assert!(w.schedules >= w.canonical, "every program has at least one schedule");
    }

    #[test]
    fn campaign_is_byte_identical_across_job_counts() {
        let cfg = tiny_config();
        let serial = run_campaign(&cfg, 1);
        let parallel = run_campaign(&cfg, 4);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn quick_scale_reports_skipped_worlds_loudly() {
        let quick = RefineConfig::for_scale(Scale::Quick);
        assert_eq!(quick.skipped.len(), 2, "quick must carry w3/w4 as skipped");
        let report = RefineReport {
            worlds: Vec::new(),
            skipped: quick.skipped.iter().map(SkippedWorld::from_world).collect(),
            seeded: Vec::new(),
            wall_nanos: 0,
        };
        assert!(report.total_unverified() > 0);
        let text = report.to_string();
        assert!(text.contains("SKIPPED (scale cap)"), "{text}");
        assert!(text.contains("rerun with --full"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"skipped_world_count\":2"), "{json}");
        assert!(
            json.contains(&format!("\"unverified_programs\":{}", report.total_unverified())),
            "{json}"
        );
        assert!(json.contains("\"world\":\"w3\""), "{json}");
        // Paper scale skips nothing and says so in JSON.
        let paper = RefineConfig::for_scale(Scale::Paper);
        assert!(paper.skipped.is_empty());
        assert_eq!(paper.worlds.len(), 4);
    }

    #[test]
    fn seeded_scan_finds_a_bug_with_a_replayable_witness() {
        // One bug end-to-end (the full matrix is integration-tested):
        // the PTLB switch-flush skip needs only two threads and two ops.
        let cfg = tiny_config();
        let rows = run_seeded(&RefineConfig { worlds: cfg.worlds.clone(), ..cfg.clone() }, 2);
        let row = rows
            .iter()
            .find(|r| r.bug == ProtocolBug::SkipPtlbFlushOnSwitch)
            .expect("row for every bug");
        assert!(row.passed(), "{row:?}");
        assert!(row.scenario.starts_with("w1@"));
        let (world, rest) = row.scenario.split_once('@').unwrap();
        let program: usize = rest.parse().unwrap();
        let schedule = pmo_modelcheck::parse_schedule(&row.schedule).unwrap();
        let replay = replay_repro(&cfg, world, program, &schedule, Some(row.bug)).unwrap();
        assert!(replay.violations.iter().any(|v| v.class == row.class));
    }
}
