//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§V–§VI).
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table II (simulation parameters) | [`pmo_simarch::SimConfig::isca2020`] | `table2` |
//! | Table V (WHISPER single-PMO overheads) | [`table5::table5`] | `table5` |
//! | Table VI (multi-PMO lowerbound + switch rates) | [`table6::table6`] | `table6` |
//! | Figure 6 (overhead vs #PMOs, per benchmark) | [`fig6::fig6`] | `fig6` |
//! | Figure 7 (average overhead + libmpk speedups) | [`fig7::fig7`] | `fig7` |
//! | Table VII (overhead breakdown at max PMOs) | [`table7::table7`] | `table7` |
//! | Table VIII (area overheads) | [`table8::table8`] | `table8` |
//! | Robustness (crash/fault survival matrix) | [`faultsim::run_campaign`] | `faultsim` |
//! | Recovery verification (exhaustive crash images) | [`crashenum::run_campaign`] | `crashenum` |
//! | Refinement + noninterference (exhaustive small worlds) | [`refine::run_campaign`] | `refine` |
//! | Predictive-analysis certification (DPOR ground truth) | [`predict::run_campaign`] | `predict` |
//!
//! All binaries accept `--full` to run at the paper's scale; the default
//! is a quick configuration that preserves every structural property
//! (see [`Scale`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod crashenum;
pub mod faultsim;
pub mod fig6;
pub mod fig7;
pub mod pool;
pub mod predict;
pub mod refine;
mod runner;
mod scale;
pub mod soak;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod text;

pub use runner::{report_for, run_micro, run_whisper, run_windowed, RunOptions};
pub use scale::Scale;

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_simarch::SimConfig;

    #[test]
    fn table8_matches_paper() {
        let t8 = table8::table8(&SimConfig::isca2020());
        assert_eq!(t8.mpk_virt.buffer_bytes, 152);
        assert_eq!(t8.domain_virt.buffer_bytes, 24);
        assert_eq!(t8.domain_virt.tlb_extra_bits, 6);
        let text = format!("{t8}");
        assert!(text.contains("152 bytes (DTTLB)"));
        assert!(text.contains("24 bytes (PTLB)"));
    }

    #[test]
    fn fig7_averages_fig6() {
        use fig6::{Fig6, Fig6Point, Fig6Series};
        let mk = |a: f64, e: f64, d: f64, b: f64, c: f64| Fig6Point {
            pmos: 64,
            libmpk_pct: a,
            erim_pct: e,
            dpti_pct: d,
            mpk_virt_pct: b,
            domain_virt_pct: c,
        };
        let f6 = Fig6 {
            series: vec![
                Fig6Series { bench: "A", points: vec![mk(100.0, 40.0, 20.0, 10.0, 5.0)] },
                Fig6Series { bench: "B", points: vec![mk(300.0, 120.0, 60.0, 30.0, 15.0)] },
            ],
        };
        let f7 = fig7::fig7(&f6);
        let p = f7.at(64).unwrap();
        assert!((p.libmpk_pct - 200.0).abs() < 1e-9);
        assert!((p.erim_pct - 80.0).abs() < 1e-9);
        assert!((p.dpti_pct - 40.0).abs() < 1e-9);
        assert!((p.mpk_virt_pct - 20.0).abs() < 1e-9);
        assert!((p.mpk_virt_speedup() - 10.0).abs() < 1e-9);
        assert!((p.domain_virt_speedup() - 20.0).abs() < 1e-9);
        assert!((p.domain_virt_vs_erim() - 8.0).abs() < 1e-9);
        assert!((p.domain_virt_vs_dpti() - 4.0).abs() < 1e-9);
        assert!(!format!("{f7}").is_empty());

        // CSV exports carry every point with headers.
        let csv6 = f6.to_csv();
        assert!(csv6.starts_with("bench,pmos,"));
        assert_eq!(csv6.lines().count(), 1 + 2);
        assert!(csv6.contains("A,64,100.0000,40.0000,20.0000,10.0000,5.0000"));
        let csv7 = f7.to_csv();
        assert!(csv7.starts_with("pmos,"));
        assert!(csv7
            .contains("64,200.0000,80.0000,40.0000,20.0000,10.0000,10.0000,20.0000,8.0000,4.0000"));
    }
}
