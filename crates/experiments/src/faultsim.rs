//! Deterministic fault-injection campaigns with recovery verification.
//!
//! A campaign sweeps crash points across every persistent micro-workload
//! structure and every [`FaultKind`]: for each `(workload, kind,
//! crash_point)` triple a fresh pool is built, a [`FaultPlan`] is armed so
//! the media fails after exactly `crash_point` further stores, transactional
//! inserts run until the injected power failure fires, the process "dies"
//! ([`PmRuntime::crash`]), and the pool is re-opened through normal
//! recovery. The re-opened structure is then checked with its
//! [`CheckedStructure`] invariant checker against the exact set of keys
//! whose transactions committed (plus the single in-flight key, which may
//! legally be present or absent).
//!
//! Outcomes are classified into a survival matrix:
//!
//! * **recovered** — recovery replayed/discarded the log and every
//!   workload invariant holds;
//! * **degraded** — the pool re-opened but reads hit a typed
//!   [`RuntimeError::MediaError`] (bounded data loss, no silent damage);
//! * **quarantined** — attach was refused with a typed
//!   [`RuntimeError::PoolQuarantined`] (graceful degradation);
//! * **violation** — an invariant checker found structural damage, or the
//!   runtime surfaced an unexpected error (a robustness bug);
//! * **panic** — anything panicked (always a bug).
//!
//! Every trial is reproducible from its printed parameters: the fault
//! seed is a pure hash of `(campaign_seed, workload, kind, crash_point)`
//! and the key stream is a pure hash of `(campaign_seed, workload, op)`.
//!
//! Crash-point sweeps are exhaustive when the op phase is small enough
//! and evenly sampled otherwise; the matrix reports both counts.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use pmo_analyzer::{Analyzer, PermWindowPass};
use pmo_runtime::{AttachIntent, FaultPlan, Mode, PmRuntime, RuntimeError};
use pmo_trace::{FaultKind, NullSink, Perm, PmoId, TraceEvent, TraceSink};
use pmo_workloads::structs::{
    AvlTree, BplusTree, CheckedStructure, LinkedList, PersistentHashmap, RbTree,
};

use crate::Scale;

/// Pool size for every trial (plenty for the largest campaign).
const POOL_BYTES: u64 = 8 << 20;

/// Pool name used by every trial (each trial owns a fresh runtime).
const POOL_NAME: &str = "faultsim";

/// The three injected fault kinds, in matrix order.
pub const FAULT_KINDS: [FaultKind; 3] =
    [FaultKind::PowerFailure, FaultKind::TornWrite, FaultKind::MediaError];

/// Retry budget for re-applying the transaction a fault interrupted
/// after recovery verifies clean. Exhausting it classifies the trial
/// [`Outcome::Degraded`] and is counted per cell.
pub const REAPPLY_LIMIT: u64 = 4;

/// Cap on replayable failures kept in [`CampaignReport::failures`].
/// Overflow is never silent: the excess is counted in
/// [`CampaignReport::failures_dropped`], which also fails
/// [`CampaignReport::is_clean`].
pub const FAILURE_LOG_CAP: usize = 64;

/// SplitMix64-style finalizer used for all campaign-level derivations
/// (key streams, per-trial fault seeds). Pure, so every trial is
/// replayable from its printed parameters.
fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The persistent structures the campaign drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultWorkload {
    /// AVL tree (balance + BST order invariants).
    Avl,
    /// Red-black tree (color + black-height invariants).
    Rbt,
    /// B+tree (fanout, ordering, uniform depth, leaf chain).
    Bplus,
    /// Sorted linked list (reachability + order).
    List,
    /// Chained hashmap (bucket placement + key integrity).
    Hashmap,
}

impl FaultWorkload {
    /// Every campaign workload, in matrix order.
    pub const ALL: [FaultWorkload; 5] = [
        FaultWorkload::Avl,
        FaultWorkload::Rbt,
        FaultWorkload::Bplus,
        FaultWorkload::List,
        FaultWorkload::Hashmap,
    ];

    /// Short label used in the survival matrix and repro lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultWorkload::Avl => "avl",
            FaultWorkload::Rbt => "rbtree",
            FaultWorkload::Bplus => "bplus",
            FaultWorkload::List => "list",
            FaultWorkload::Hashmap => "hashmap",
        }
    }

    /// Parses a label back into a workload (for `--workload` repro runs).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        FaultWorkload::ALL.into_iter().find(|w| w.label() == label)
    }

    /// Seed lane separating this workload's derived randomness.
    fn tag(self) -> u64 {
        match self {
            FaultWorkload::Avl => 1,
            FaultWorkload::Rbt => 2,
            FaultWorkload::Bplus => 3,
            FaultWorkload::List => 4,
            FaultWorkload::Hashmap => 5,
        }
    }
}

/// Parses a [`FaultKind`] label (for `--kind` repro runs).
#[must_use]
pub fn fault_kind_from_label(label: &str) -> Option<FaultKind> {
    FAULT_KINDS.into_iter().find(|k| k.to_string() == label)
}

/// Campaign shape: how much committed state each trial starts with, how
/// many faulted ops run, and how densely crash points are swept.
#[derive(Clone, Copy, Debug)]
pub struct FaultsimConfig {
    /// Root seed; everything else derives from it deterministically.
    pub campaign_seed: u64,
    /// Transactional inserts committed before the fault is armed.
    pub warmup_inserts: u64,
    /// Transactional inserts attempted while the fault is armed.
    pub fault_inserts: u64,
    /// Value payload size in bytes.
    pub value_bytes: u32,
    /// Crash points per `(workload, kind)` cell: exhaustive when the op
    /// phase has at most this many stores, evenly sampled otherwise.
    pub max_points_per_cell: usize,
    /// Run the permission-window audit over every trial's trace,
    /// classifying audit errors as [`Outcome::Violation`] (`--no-audit`
    /// opts out).
    pub audit: bool,
}

impl FaultsimConfig {
    /// The campaign shape for a [`Scale`].
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => FaultsimConfig {
                campaign_seed: 0x1505,
                warmup_inserts: 12,
                fault_inserts: 4,
                value_bytes: 32,
                max_points_per_cell: 96,
                audit: true,
            },
            Scale::Paper => FaultsimConfig {
                campaign_seed: 0x1505,
                warmup_inserts: 48,
                fault_inserts: 12,
                value_bytes: 64,
                max_points_per_cell: 256,
                audit: true,
            },
        }
    }

    /// The `op`-th key of this campaign's deterministic key stream for
    /// `workload` (identical across the dry run and every crash point).
    #[must_use]
    pub fn key_at(&self, workload: FaultWorkload, op: u64) -> u64 {
        mix(self.campaign_seed ^ (workload.tag() << 56), op + 1)
    }

    /// The fault seed for one trial — a pure hash of the trial
    /// coordinates, printed in every repro line.
    #[must_use]
    pub fn fault_seed(&self, workload: FaultWorkload, kind: FaultKind, after: u64) -> u64 {
        let lane = (workload.tag() << 32) ^ ((kind as u64) << 24) ^ after;
        mix(self.campaign_seed, lane)
    }
}

/// How one trial ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Recovery succeeded and every invariant holds.
    Recovered,
    /// Pool re-opened but reads hit a typed media error (bounded loss).
    Degraded,
    /// Attach refused with a typed quarantine error.
    Quarantined,
    /// An invariant was violated or an untyped/unexpected error escaped.
    Violation,
    /// The trial panicked.
    Panicked,
    /// The armed fault never fired (crash point past the op phase).
    Unreached,
}

/// One trial's classified outcome plus a human-readable detail line.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Classified outcome.
    pub outcome: Outcome,
    /// What happened, for repro lines and logs.
    pub detail: String,
    /// Attempts spent re-applying the interrupted transaction after a
    /// verified recovery (0 when the trial never reached re-apply).
    pub retries: u64,
    /// Whether the re-apply budget ([`REAPPLY_LIMIT`]) was exhausted.
    pub retry_exhausted: bool,
}

impl TrialResult {
    fn new(outcome: Outcome, detail: impl Into<String>) -> Self {
        TrialResult { outcome, detail: detail.into(), retries: 0, retry_exhausted: false }
    }
}

/// Per-cell outcome tallies for the survival matrix.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellCounts {
    /// Trials that recovered cleanly.
    pub recovered: u64,
    /// Trials with bounded, typed data loss.
    pub degraded: u64,
    /// Trials whose pool was quarantined.
    pub quarantined: u64,
    /// Trials that violated an invariant (bugs).
    pub violations: u64,
    /// Trials that panicked (bugs).
    pub panics: u64,
    /// Trials whose fault never fired.
    pub unreached: u64,
    /// Re-apply attempts spent on interrupted transactions after
    /// verified recovery (cells are per-kind, so this is the per-kind
    /// retry counter).
    pub retried: u64,
    /// Trials whose re-apply budget was exhausted.
    pub retry_exhausted: u64,
}

impl CellCounts {
    fn tally(&mut self, result: &TrialResult) {
        match result.outcome {
            Outcome::Recovered => self.recovered += 1,
            Outcome::Degraded => self.degraded += 1,
            Outcome::Quarantined => self.quarantined += 1,
            Outcome::Violation => self.violations += 1,
            Outcome::Panicked => self.panics += 1,
            Outcome::Unreached => self.unreached += 1,
        }
        self.retried += result.retries;
        self.retry_exhausted += u64::from(result.retry_exhausted);
    }
}

/// One row of the survival matrix: a `(workload, kind)` cell.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Workload driven in this cell.
    pub workload: FaultWorkload,
    /// Fault kind injected in this cell.
    pub kind: FaultKind,
    /// Outcome tallies.
    pub counts: CellCounts,
    /// Crash points actually swept.
    pub points: u64,
    /// Total op-phase stores (sweep is exhaustive iff `points == stores`).
    pub op_stores: u64,
}

/// A failed trial with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct TrialFailure {
    /// Workload driven.
    pub workload: FaultWorkload,
    /// Fault kind injected.
    pub kind: FaultKind,
    /// Crash point (stores into the op phase).
    pub after: u64,
    /// Derived fault seed (what the storage layer actually consumed).
    pub fault_seed: u64,
    /// Classified outcome ([`Outcome::Violation`] or [`Outcome::Panicked`]).
    pub outcome: Outcome,
    /// Failure detail.
    pub detail: String,
}

/// Per-fault-kind totals aggregated across every workload's cell.
#[derive(Clone, Copy, Debug)]
pub struct KindTotals {
    /// Fault kind these totals aggregate.
    pub kind: FaultKind,
    /// Re-apply attempts across the kind's recovered trials.
    pub retries: u64,
    /// Trials whose re-apply budget was exhausted.
    pub retry_exhausted: u64,
    /// Trials that ended with bounded, typed data loss.
    pub degraded: u64,
}

/// Full campaign results: the survival matrix plus replayable failures.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// One cell per `(workload, kind)` pair.
    pub cells: Vec<MatrixCell>,
    /// Violations/panics with repro parameters, capped at
    /// [`FAILURE_LOG_CAP`] entries (overflow counted below).
    pub failures: Vec<TrialFailure>,
    /// Failing trials dropped once the failure log hit its cap — never
    /// silent, and any nonzero value fails [`CampaignReport::is_clean`].
    pub failures_dropped: u64,
    /// Campaign seed the run derived everything from.
    pub campaign_seed: u64,
    /// Total trials executed.
    pub trials: u64,
    /// Host wall-clock time the campaign took, in nanoseconds. Left 0 by
    /// [`run_campaign`] (its output is deterministic); the CLI layer
    /// stamps it after the run.
    pub wall_nanos: u64,
}

impl CampaignReport {
    /// Whether the campaign completed with zero violations and zero
    /// panics (the acceptance bar: corrupt pools must surface as typed
    /// quarantine/media errors, never as silent damage or crashes).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.failures_dropped == 0
    }

    /// Per-kind retry/exhaustion/degradation totals, in [`FAULT_KINDS`]
    /// order (cells are per-`(workload, kind)`, so kinds aggregate over
    /// workloads).
    #[must_use]
    pub fn kind_totals(&self) -> Vec<KindTotals> {
        FAULT_KINDS
            .into_iter()
            .map(|kind| {
                let mut totals = KindTotals { kind, retries: 0, retry_exhausted: 0, degraded: 0 };
                for c in self.cells.iter().filter(|c| c.kind == kind) {
                    totals.retries += c.counts.retried;
                    totals.retry_exhausted += c.counts.retry_exhausted;
                    totals.degraded += c.counts.degraded;
                }
                totals
            })
            .collect()
    }

    /// Trials completed per host wall-clock second — the campaign-level
    /// throughput metric of the bench trajectory (named uniformly with
    /// [`pmo_sim::ReplayReport::events_per_sec`]; a trial is the
    /// campaign's unit of replayed work). 0.0 until `wall_nanos` has
    /// been stamped.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.trials as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Renders the survival matrix as a JSON object (for CI artifacts).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut cells = String::new();
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                cells.push(',');
            }
            let _ = write!(
                cells,
                "{{\"workload\":{},\"fault\":{},\"points\":{},\"op_stores\":{},\
                 \"recovered\":{},\"degraded\":{},\"quarantined\":{},\"violations\":{},\
                 \"panics\":{},\"unreached\":{},\"retried\":{},\"retry_exhausted\":{}}}",
                pmo_analyzer::json_string(c.workload.label()),
                pmo_analyzer::json_string(&c.kind.to_string()),
                c.points,
                c.op_stores,
                c.counts.recovered,
                c.counts.degraded,
                c.counts.quarantined,
                c.counts.violations,
                c.counts.panics,
                c.counts.unreached,
                c.counts.retried,
                c.counts.retry_exhausted,
            );
        }
        let mut kinds = String::new();
        for (i, t) in self.kind_totals().iter().enumerate() {
            if i > 0 {
                kinds.push(',');
            }
            let _ = write!(
                kinds,
                "{{\"fault\":{},\"retries\":{},\"retry_exhausted\":{},\"degraded\":{}}}",
                pmo_analyzer::json_string(&t.kind.to_string()),
                t.retries,
                t.retry_exhausted,
                t.degraded,
            );
        }
        let mut failures = String::new();
        for (i, fail) in self.failures.iter().enumerate() {
            if i > 0 {
                failures.push(',');
            }
            let _ = write!(
                failures,
                "{{\"workload\":{},\"fault\":{},\"after\":{},\"fault_seed\":{},\
                 \"outcome\":{},\"detail\":{}}}",
                pmo_analyzer::json_string(fail.workload.label()),
                pmo_analyzer::json_string(&fail.kind.to_string()),
                fail.after,
                fail.fault_seed,
                pmo_analyzer::json_string(&format!("{:?}", fail.outcome)),
                pmo_analyzer::json_string(&fail.detail),
            );
        }
        format!(
            "{{\"campaign_seed\":{},\"trials\":{},\"clean\":{},\"wall_nanos\":{},\
             \"events_per_sec\":{:.1},\"cells\":[{}],\"kinds\":[{}],\"failures\":[{}],\
             \"failures_dropped\":{}}}",
            self.campaign_seed,
            self.trials,
            self.is_clean(),
            self.wall_nanos,
            self.events_per_sec(),
            cells,
            kinds,
            failures,
            self.failures_dropped,
        )
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault-injection survival matrix (campaign seed {:#x}, {} trials)",
            self.campaign_seed, self.trials
        )?;
        writeln!(
            f,
            "{:<9} {:<14} {:>7} {:>10} {:>9} {:>12} {:>11} {:>7}",
            "workload",
            "fault",
            "points",
            "recovered",
            "degraded",
            "quarantined",
            "violations",
            "panics"
        )?;
        for cell in &self.cells {
            let sweep = if cell.points == cell.op_stores {
                format!("{}*", cell.points) // exhaustive
            } else {
                format!("{}/{}", cell.points, cell.op_stores)
            };
            writeln!(
                f,
                "{:<9} {:<14} {:>7} {:>10} {:>9} {:>12} {:>11} {:>7}",
                cell.workload.label(),
                cell.kind.to_string(),
                sweep,
                cell.counts.recovered,
                cell.counts.degraded,
                cell.counts.quarantined,
                cell.counts.violations,
                cell.counts.panics,
            )?;
        }
        writeln!(f, "(points `N*` = exhaustive sweep of every op-phase store)")?;
        for t in self.kind_totals() {
            writeln!(
                f,
                "kind {:<14} retried {:>5}  retry-exhausted {:>3}  degraded {:>5}",
                t.kind.to_string(),
                t.retries,
                t.retry_exhausted,
                t.degraded,
            )?;
        }
        for fail in &self.failures {
            writeln!(
                f,
                "FAIL [{:?}] {} — repro: --workload {} --kind {} --after {} --seed {:#x} (fault seed {:#x})",
                fail.outcome,
                fail.detail,
                fail.workload.label(),
                fail.kind,
                fail.after,
                self.campaign_seed,
                fail.fault_seed,
            )?;
        }
        if self.failures_dropped > 0 {
            writeln!(
                f,
                "(+{} more failing trial(s) dropped past the {FAILURE_LOG_CAP}-entry log cap)",
                self.failures_dropped
            )?;
        }
        if self.is_clean() {
            writeln!(f, "campaign clean: zero invariant violations, zero panics")?;
        } else {
            writeln!(
                f,
                "campaign FAILED: {} violating/panicking trial(s)",
                self.failures.len() as u64 + self.failures_dropped
            )?;
        }
        Ok(())
    }
}

/// Begins a transaction, runs one insert, and commits — the unit of work
/// the fault sweep crashes at every store of.
fn txn_insert<S: CheckedStructure>(
    rt: &mut PmRuntime,
    pool: PmoId,
    s: &mut S,
    key: u64,
    sink: &mut dyn TraceSink,
) -> Result<(), RuntimeError> {
    rt.txn_begin(pool)?;
    s.insert(rt, key, sink)?;
    rt.txn_commit(sink)
}

/// Builds a fresh pool with `cfg.warmup_inserts` committed keys and
/// returns the runtime, pool id, structure handle, and committed keys.
fn setup<S: CheckedStructure>(
    cfg: &FaultsimConfig,
    workload: FaultWorkload,
    sink: &mut dyn TraceSink,
) -> (PmRuntime, PmoId, S, Vec<u64>) {
    let mut rt = PmRuntime::new();
    let pool = rt
        .pool_create(POOL_NAME, POOL_BYTES, Mode::private(), sink)
        .expect("faultsim: pool_create");
    // The harness plays the role of the application's permission
    // protocol: one write window around the trial's life, revoked at the
    // end, so the audit can prove every access lands inside it.
    sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
    let mut s = S::create(&mut rt, pool, cfg.value_bytes, sink).expect("faultsim: create");
    let mut committed = Vec::new();
    for op in 0..cfg.warmup_inserts {
        let key = cfg.key_at(workload, op);
        txn_insert(&mut rt, pool, &mut s, key, sink).expect("faultsim: warmup insert");
        committed.push(key);
    }
    (rt, pool, s, committed)
}

/// Dry run: counts the op-phase stores of one workload so the sweep
/// knows the crash-point space. The key stream is identical to the
/// armed runs, so the count is exact.
fn measure<S: CheckedStructure>(cfg: &FaultsimConfig, workload: FaultWorkload) -> u64 {
    let mut sink = NullSink::new();
    let (mut rt, pool, mut s, _) = setup::<S>(cfg, workload, &mut sink);
    let before = rt.storage(pool).expect("pool exists").stores();
    for op in 0..cfg.fault_inserts {
        let key = cfg.key_at(workload, cfg.warmup_inserts + op);
        txn_insert(&mut rt, pool, &mut s, key, &mut sink).expect("faultsim: dry-run insert");
    }
    rt.storage(pool).expect("pool exists").stores() - before
}

/// Counts the op-phase stores for `workload` (public so repro runs can
/// print the crash-point space).
#[must_use]
pub fn measure_workload(cfg: &FaultsimConfig, workload: FaultWorkload) -> u64 {
    match workload {
        FaultWorkload::Avl => measure::<AvlTree>(cfg, workload),
        FaultWorkload::Rbt => measure::<RbTree>(cfg, workload),
        FaultWorkload::Bplus => measure::<BplusTree>(cfg, workload),
        FaultWorkload::List => measure::<LinkedList>(cfg, workload),
        FaultWorkload::Hashmap => measure::<PersistentHashmap>(cfg, workload),
    }
}

/// Runs one trial, auditing its trace when [`FaultsimConfig::audit`] is
/// set: an audit error on an otherwise-passing trial is reclassified as
/// [`Outcome::Violation`].
fn trial<S: CheckedStructure>(
    cfg: &FaultsimConfig,
    workload: FaultWorkload,
    kind: FaultKind,
    after: u64,
    fault_seed: u64,
) -> TrialResult {
    if !cfg.audit {
        return trial_body::<S>(cfg, workload, kind, after, fault_seed, &mut NullSink::new());
    }
    let mut analyzer = Analyzer::new("faultsim-trial").with_pass(PermWindowPass::baseline());
    let result = trial_body::<S>(cfg, workload, kind, after, fault_seed, &mut analyzer);
    let audit = analyzer.finish();
    if matches!(result.outcome, Outcome::Violation | Outcome::Panicked) {
        return result;
    }
    // A truncated audit can hide findings, so it fails the trial outright
    // — the harness never passes a verdict on an incomplete log.
    if !audit.complete() {
        let mut r = TrialResult::new(
            Outcome::Violation,
            format!(
                "permission audit truncated: {} finding(s) dropped from the log",
                audit.dropped()
            ),
        );
        r.retries = result.retries;
        return r;
    }
    if audit.passed() {
        result
    } else {
        let first = audit.errors().next().expect("failed audit has an error").to_string();
        let mut r = TrialResult::new(Outcome::Violation, format!("permission audit: {first}"));
        r.retries = result.retries;
        r
    }
}

/// One trial body (everything that may legitimately return a typed
/// error). Panics escape to the [`catch_unwind`] in [`run_trial`].
fn trial_body<S: CheckedStructure>(
    cfg: &FaultsimConfig,
    workload: FaultWorkload,
    kind: FaultKind,
    after: u64,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
) -> TrialResult {
    let (mut rt, pool, mut s, mut required) = setup::<S>(cfg, workload, sink);

    // Arm the fault only for the op phase: the sweep space is "every
    // store a post-warmup transactional insert performs".
    rt.inject_fault(pool, FaultPlan { kind, after_stores: after, seed: fault_seed })
        .expect("faultsim: arm fault");

    // In-flight key of the transaction the fault interrupted. It may
    // legally be present (fault hit after the commit flag was set, so
    // recovery replays it) or absent (fault hit earlier, txn discarded).
    let mut in_flight = Vec::new();
    let mut crashed = false;
    for op in 0..cfg.fault_inserts {
        let key = cfg.key_at(workload, cfg.warmup_inserts + op);
        match txn_insert(&mut rt, pool, &mut s, key, &mut *sink) {
            Ok(()) => required.push(key),
            Err(RuntimeError::PowerFailure) => {
                in_flight.push(key);
                crashed = true;
                break;
            }
            Err(other) => {
                return TrialResult::new(
                    Outcome::Violation,
                    format!("unexpected op-phase error: {other}"),
                );
            }
        }
    }
    if !crashed {
        return TrialResult::new(Outcome::Unreached, "fault never fired");
    }

    // The process dies; unflushed lines revert, torn/media damage lands.
    // Permission state is volatile, so the crash also ends the window.
    sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
    drop(s);
    rt.crash();

    // Re-open through normal recovery.
    let pool = match rt.pool_open(POOL_NAME, AttachIntent::ReadWrite, &mut *sink) {
        Ok(id) => {
            sink.event(TraceEvent::SetPerm { pmo: id, perm: Perm::ReadWrite });
            id
        }
        Err(RuntimeError::PoolQuarantined { reason, .. }) => {
            return TrialResult::new(Outcome::Quarantined, format!("quarantined: {reason}"));
        }
        Err(other) => {
            return TrialResult::new(
                Outcome::Violation,
                format!("unexpected attach error: {other}"),
            );
        }
    };
    let mut s = match S::create(&mut rt, pool, cfg.value_bytes, &mut *sink) {
        Ok(s) => s,
        Err(RuntimeError::MediaError { offset, .. }) => {
            return TrialResult::new(
                Outcome::Degraded,
                format!("root unreadable at offset {offset:#x}"),
            );
        }
        Err(other) => {
            return TrialResult::new(
                Outcome::Violation,
                format!("unexpected reopen error: {other}"),
            );
        }
    };
    let result = match s.verify(&mut rt, &required, &in_flight, &mut *sink) {
        Ok(report) if report.is_clean() => {
            reapply_in_flight(&mut rt, pool, &mut s, &in_flight, &mut required, sink)
        }
        Ok(report) => TrialResult::new(Outcome::Violation, report.to_string()),
        Err(RuntimeError::MediaError { offset, .. }) => TrialResult::new(
            Outcome::Degraded,
            format!("structure unreadable at offset {offset:#x}"),
        ),
        Err(other) => {
            TrialResult::new(Outcome::Violation, format!("unexpected verify error: {other}"))
        }
    };
    sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
    result
}

/// The application-level half of the recovery contract: a pool whose
/// recovery verified clean must also resume service, so the transaction
/// the fault interrupted is re-applied under a bounded retry budget
/// ([`REAPPLY_LIMIT`]) and the structure is re-verified with its key now
/// required. The replay is idempotent whether or not the original commit
/// survived (inserts overwrite values in place), mirroring how a real
/// application retries its interrupted write after crash recovery.
fn reapply_in_flight<S: CheckedStructure>(
    rt: &mut PmRuntime,
    pool: PmoId,
    s: &mut S,
    in_flight: &[u64],
    required: &mut Vec<u64>,
    sink: &mut dyn TraceSink,
) -> TrialResult {
    let Some(&key) = in_flight.first() else {
        return TrialResult::new(Outcome::Recovered, "recovered (no in-flight transaction)");
    };
    let mut retries = 0;
    loop {
        if retries >= REAPPLY_LIMIT {
            let mut r = TrialResult::new(
                Outcome::Degraded,
                format!("re-apply budget exhausted after {retries} attempt(s) for key {key:#x}"),
            );
            r.retries = retries;
            r.retry_exhausted = true;
            return r;
        }
        retries += 1;
        match txn_insert(rt, pool, s, key, sink) {
            Ok(()) => break,
            Err(RuntimeError::PowerFailure) => {
                rt.txn_discard();
            }
            Err(RuntimeError::MediaError { offset, .. }) => {
                rt.txn_discard();
                let mut r = TrialResult::new(
                    Outcome::Degraded,
                    format!("re-apply hit media error at offset {offset:#x}"),
                );
                r.retries = retries;
                return r;
            }
            Err(other) => {
                let mut r = TrialResult::new(
                    Outcome::Violation,
                    format!("unexpected re-apply error: {other}"),
                );
                r.retries = retries;
                return r;
            }
        }
    }
    required.push(key);
    let mut result = match s.verify(rt, required, &[], sink) {
        Ok(report) if report.is_clean() => TrialResult::new(Outcome::Recovered, report.to_string()),
        Ok(report) => {
            TrialResult::new(Outcome::Violation, format!("post-re-apply verify: {report}"))
        }
        Err(RuntimeError::MediaError { offset, .. }) => TrialResult::new(
            Outcome::Degraded,
            format!("post-re-apply structure unreadable at offset {offset:#x}"),
        ),
        Err(other) => TrialResult::new(
            Outcome::Violation,
            format!("unexpected post-re-apply verify error: {other}"),
        ),
    };
    result.retries = retries;
    result
}

/// Runs one fully-parameterized trial, converting panics into
/// [`Outcome::Panicked`]. Public so the `faultsim` binary can replay a
/// single trial from a printed repro line.
#[must_use]
pub fn run_trial(
    cfg: &FaultsimConfig,
    workload: FaultWorkload,
    kind: FaultKind,
    after: u64,
) -> TrialResult {
    let fault_seed = cfg.fault_seed(workload, kind, after);
    let body = AssertUnwindSafe(|| match workload {
        FaultWorkload::Avl => trial::<AvlTree>(cfg, workload, kind, after, fault_seed),
        FaultWorkload::Rbt => trial::<RbTree>(cfg, workload, kind, after, fault_seed),
        FaultWorkload::Bplus => trial::<BplusTree>(cfg, workload, kind, after, fault_seed),
        FaultWorkload::List => trial::<LinkedList>(cfg, workload, kind, after, fault_seed),
        FaultWorkload::Hashmap => {
            trial::<PersistentHashmap>(cfg, workload, kind, after, fault_seed)
        }
    });
    match catch_unwind(body) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            TrialResult::new(Outcome::Panicked, format!("panicked: {msg}"))
        }
    }
}

/// Picks the crash points for a cell: every store when the op phase fits
/// in `limit`, an evenly-spaced deterministic sample otherwise.
fn crash_points(op_stores: u64, limit: usize) -> Vec<u64> {
    let limit = limit.max(1) as u64;
    if op_stores <= limit {
        (0..op_stores).collect()
    } else {
        (0..limit).map(|i| i * op_stores / limit).collect()
    }
}

/// Runs the full campaign: every workload × every fault kind × the swept
/// crash points.
///
/// Each trial is a pure function of `(campaign_seed, workload, kind,
/// after)`, so trials fan across `jobs` worker threads and are tallied
/// back in the canonical workload/kind/point order — the report (and its
/// serialized forms) is byte-identical at any job count.
#[must_use]
pub fn run_campaign(cfg: &FaultsimConfig, jobs: usize) -> CampaignReport {
    let mut report =
        CampaignReport { campaign_seed: cfg.campaign_seed, ..CampaignReport::default() };
    // Phase 1: size each workload's op phase (one cheap fault-free run
    // per workload, itself fanned out).
    let sized = crate::pool::parallel_map(jobs, FaultWorkload::ALL.to_vec(), |workload| {
        let op_stores = measure_workload(cfg, workload);
        let points = crash_points(op_stores, cfg.max_points_per_cell);
        (workload, op_stores, points)
    });
    // Phase 2: flatten every (workload, kind, crash point) trial
    // coordinate and run them all, order-preserving.
    let mut coords = Vec::new();
    for (workload, _, points) in &sized {
        for kind in FAULT_KINDS {
            for &after in points {
                coords.push((*workload, kind, after));
            }
        }
    }
    let results =
        crate::pool::parallel_map(jobs, coords, |(w, k, after)| run_trial(cfg, w, k, after));
    // Phase 3: serial canonical tally (identical to the jobs=1 loop).
    let mut results = results.into_iter();
    for (workload, op_stores, points) in sized {
        for kind in FAULT_KINDS {
            let mut counts = CellCounts::default();
            for &after in &points {
                let result = results.next().expect("one result per coordinate");
                counts.tally(&result);
                report.trials += 1;
                if matches!(result.outcome, Outcome::Violation | Outcome::Panicked) {
                    if report.failures.len() < FAILURE_LOG_CAP {
                        report.failures.push(TrialFailure {
                            workload,
                            kind,
                            after,
                            fault_seed: cfg.fault_seed(workload, kind, after),
                            outcome: result.outcome.clone(),
                            detail: result.detail,
                        });
                    } else {
                        report.failures_dropped += 1;
                    }
                }
            }
            report.cells.push(MatrixCell {
                workload,
                kind,
                counts,
                points: points.len() as u64,
                op_stores,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FaultsimConfig {
        FaultsimConfig {
            campaign_seed: 7,
            warmup_inserts: 6,
            fault_inserts: 2,
            value_bytes: 16,
            max_points_per_cell: 24,
            audit: true,
        }
    }

    #[test]
    fn survival_matrix_json_is_well_formed() {
        let report = CampaignReport {
            campaign_seed: 7,
            trials: 2,
            cells: vec![MatrixCell {
                workload: FaultWorkload::Avl,
                kind: FaultKind::TornWrite,
                counts: CellCounts { recovered: 2, retried: 5, ..CellCounts::default() },
                points: 2,
                op_stores: 2,
            }],
            failures: vec![TrialFailure {
                workload: FaultWorkload::List,
                kind: FaultKind::MediaError,
                after: 3,
                fault_seed: 9,
                outcome: Outcome::Violation,
                detail: "broke a \"chain\"".to_string(),
            }],
            failures_dropped: 0,
            wall_nanos: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"workload\":\"avl\""), "{json}");
        assert!(json.contains("\"fault\":\"torn-write\""), "{json}");
        assert!(json.contains("\"clean\":false"), "{json}");
        assert!(json.contains("\"retried\":5"), "{json}");
        assert!(json.contains("\"failures_dropped\":0"), "{json}");
        // Per-kind totals aggregate the cells (one torn-write cell here).
        assert!(
            json.contains(
                "{\"fault\":\"torn-write\",\"retries\":5,\"retry_exhausted\":0,\"degraded\":0}"
            ),
            "{json}"
        );
        // Quotes inside failure details are escaped.
        assert!(json.contains("broke a \\\"chain\\\""), "{json}");
    }

    #[test]
    fn failure_log_truncation_is_counted_and_fails_clean() {
        let report = CampaignReport {
            campaign_seed: 7,
            trials: 100,
            failures_dropped: 3,
            ..CampaignReport::default()
        };
        assert!(!report.is_clean());
        assert!(report.to_json().contains("\"failures_dropped\":3"));
        let text = format!("{report}");
        assert!(text.contains("+3 more failing trial(s) dropped"), "{text}");
        assert!(text.contains("campaign FAILED: 3 violating/panicking trial(s)"), "{text}");
    }

    #[test]
    fn recovered_trial_reapplies_the_interrupted_op() {
        // A power failure at the first op-phase store interrupts a
        // transaction; after recovery the trial re-applies it (one
        // attempt — no fault is armed anymore) and re-verifies with the
        // key required.
        let cfg = tiny();
        let r = run_trial(&cfg, FaultWorkload::List, FaultKind::PowerFailure, 0);
        assert_eq!(r.outcome, Outcome::Recovered, "{}", r.detail);
        assert_eq!(r.retries, 1, "{}", r.detail);
        assert!(!r.retry_exhausted);
    }

    #[test]
    fn key_stream_and_fault_seeds_are_deterministic() {
        let cfg = tiny();
        assert_eq!(cfg.key_at(FaultWorkload::Avl, 3), cfg.key_at(FaultWorkload::Avl, 3));
        assert_ne!(cfg.key_at(FaultWorkload::Avl, 3), cfg.key_at(FaultWorkload::Rbt, 3));
        assert_eq!(
            cfg.fault_seed(FaultWorkload::List, FaultKind::TornWrite, 9),
            cfg.fault_seed(FaultWorkload::List, FaultKind::TornWrite, 9)
        );
        assert_ne!(
            cfg.fault_seed(FaultWorkload::List, FaultKind::TornWrite, 9),
            cfg.fault_seed(FaultWorkload::List, FaultKind::MediaError, 9)
        );
    }

    #[test]
    fn crash_point_selection_is_exhaustive_then_sampled() {
        assert_eq!(crash_points(5, 10), vec![0, 1, 2, 3, 4]);
        let sampled = crash_points(1000, 10);
        assert_eq!(sampled.len(), 10);
        assert_eq!(sampled[0], 0);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]));
        assert!(*sampled.last().unwrap() < 1000);
    }

    #[test]
    fn trials_are_replayable() {
        let cfg = tiny();
        let a = run_trial(&cfg, FaultWorkload::List, FaultKind::MediaError, 5);
        let b = run_trial(&cfg, FaultWorkload::List, FaultKind::MediaError, 5);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.detail, b.detail);
    }

    #[test]
    fn small_campaign_has_no_violations_or_panics() {
        let report = run_campaign(&tiny(), 1);
        assert!(report.is_clean(), "{report}");
        assert!(report.trials > 0);
        let recovered: u64 = report.cells.iter().map(|c| c.counts.recovered).sum();
        assert!(recovered > 0, "{report}");
        // Power-failure trials that crashed mid-transaction re-apply the
        // interrupted op after recovery, so the per-kind retry counter
        // must be live.
        let power = &report.kind_totals()[0];
        assert_eq!(power.kind, FaultKind::PowerFailure);
        assert!(power.retries > 0, "{report}");
        assert_eq!(power.retry_exhausted, 0, "{report}");
    }

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        // The campaign executor's determinism contract: the merged report
        // (text and JSON) never depends on the job count.
        let serial = run_campaign(&tiny(), 1);
        let parallel = run_campaign(&tiny(), 4);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(format!("{serial}"), format!("{parallel}"));
    }

    #[test]
    fn power_failure_sweep_always_recovers() {
        // Clean power failures never damage media: every crash point of
        // every workload must recover with invariants intact.
        let cfg = tiny();
        for workload in FaultWorkload::ALL {
            let stores = measure_workload(&cfg, workload);
            for after in crash_points(stores, 16) {
                let r = run_trial(&cfg, workload, FaultKind::PowerFailure, after);
                assert_eq!(
                    r.outcome,
                    Outcome::Recovered,
                    "{} after={} -> {:?}: {}",
                    workload.label(),
                    after,
                    r.outcome,
                    r.detail
                );
            }
        }
    }
}
