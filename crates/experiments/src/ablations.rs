//! Ablations over the design choices DESIGN.md calls out: DTTLB/PTLB
//! capacity, TLB-shootdown cost vs thread count, context-switch
//! frequency, and the one timing knob outside Table II (the
//! memory-level-parallelism factor).

use std::fmt;

use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::{MicroBench, ServerConfig, ServerWorkload};

use crate::runner::{report_for, run_micro, run_windowed, RunOptions};
use crate::text::{f, TextTable};
use crate::Scale;

/// Overhead of both designs (over lowerbound, %) at one parameter value.
#[derive(Clone, Copy, Debug)]
pub struct AblationPoint {
    /// The swept parameter's value.
    pub value: u64,
    /// Design 1 (hardware MPK virtualization) overhead, %.
    pub mpk_virt_pct: f64,
    /// Design 2 (hardware domain virtualization) overhead, %.
    pub domain_virt_pct: f64,
}

/// One ablation sweep.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Name of the swept parameter.
    pub parameter: &'static str,
    /// What the sweep shows.
    pub note: &'static str,
    /// Header for the first overhead column.
    pub col1: &'static str,
    /// Header for the second overhead column.
    pub col2: &'static str,
    /// The measured points.
    pub points: Vec<AblationPoint>,
}

const DEFAULT_COL1: &str = "mpk-virt % over lowerbound";
const DEFAULT_COL2: &str = "domain-virt % over lowerbound";

fn both_overheads(sim: &SimConfig, scale: Scale, active: u32) -> (f64, f64) {
    let kinds = [SchemeKind::Lowerbound, SchemeKind::MpkVirt, SchemeKind::DomainVirt];
    let reports =
        run_micro(MicroBench::Rbt, &scale.micro_config(active), &kinds, sim, RunOptions::default());
    let lb = report_for(&reports, SchemeKind::Lowerbound);
    (
        report_for(&reports, SchemeKind::MpkVirt).overhead_pct_over(lb),
        report_for(&reports, SchemeKind::DomainVirt).overhead_pct_over(lb),
    )
}

/// Sweeps the DTTLB/PTLB capacity (both designs' per-core buffer).
#[must_use]
pub fn buffer_capacity(scale: Scale, base: &SimConfig) -> Ablation {
    let active = (scale.max_pmos() / 2).max(32);
    let points = [4u32, 8, 16, 32, 64]
        .into_iter()
        .map(|entries| {
            let mut sim = base.clone();
            sim.dttlb_entries = entries;
            sim.ptlb_entries = entries;
            let (d1, d2) = both_overheads(&sim, scale, active);
            AblationPoint { value: u64::from(entries), mpk_virt_pct: d1, domain_virt_pct: d2 }
        })
        .collect();
    Ablation {
        parameter: "DTTLB/PTLB entries",
        note: "design 1 is insensitive (the 15-key limit binds, not the buffer); design 2 gains modestly",
        col1: DEFAULT_COL1,
        col2: DEFAULT_COL2,
        points,
    }
}

/// Sweeps the thread count receiving shootdown IPIs: design 1 pays
/// per-thread; design 2 pays nothing (its headline scalability claim).
#[must_use]
pub fn thread_scaling(scale: Scale, base: &SimConfig) -> Ablation {
    let active = (scale.max_pmos() / 2).max(32);
    let points = [1u32, 4, 16, 64]
        .into_iter()
        .map(|threads| {
            let mut sim = base.clone();
            sim.threads = threads;
            let (d1, d2) = both_overheads(&sim, scale, active);
            AblationPoint { value: u64::from(threads), mpk_virt_pct: d1, domain_virt_pct: d2 }
        })
        .collect();
    Ablation {
        parameter: "threads (shootdown IPI fan-out)",
        note: "design 1's shootdown cost scales with cores; design 2 is immune",
        col1: DEFAULT_COL1,
        col2: DEFAULT_COL2,
        points,
    }
}

/// Sweeps the scheduling quantum of the multi-threaded server workload:
/// context switches flush the DTTLB (design 1) / PTLB (design 2).
#[must_use]
pub fn context_switch_quantum(base: &SimConfig) -> Ablation {
    let points = [1u32, 4, 16, 64]
        .into_iter()
        .map(|quantum| {
            let run = |kind| {
                let mut workload = ServerWorkload::new(ServerConfig {
                    clients: 24,
                    requests: 3_000,
                    quantum,
                    initial_records: 48,
                    pmo_bytes: 8 << 20,
                    seed: 0x5e7e,
                });
                run_windowed(&mut workload, kind, base, RunOptions::default())
            };
            let lb = run(SchemeKind::Lowerbound);
            let d1 = run(SchemeKind::MpkVirt).overhead_pct_over(&lb);
            let d2 = run(SchemeKind::DomainVirt).overhead_pct_over(&lb);
            AblationPoint { value: u64::from(quantum), mpk_virt_pct: d1, domain_virt_pct: d2 }
        })
        .collect();
    Ablation {
        parameter: "server scheduling quantum (requests/switch)",
        note: "smaller quantum = more context switches = more DTTLB/PTLB flushes",
        col1: DEFAULT_COL1,
        col2: DEFAULT_COL2,
        points,
    }
}

/// Sweeps the PMO (domain) size — the paper's §VI.B claim in one table:
/// "the cost of shootdowns is proportional to the size of TLB, while
/// libmpk's PTE changes is proportional to the domain size. Hence, our
/// MPK virtualization is both faster and more scalable." Here the
/// "mpk-virt" column is replaced by *libmpk* overhead so the scaling
/// contrast is direct: libmpk degrades with domain size, design 1 does
/// not.
#[must_use]
pub fn domain_size(base: &SimConfig) -> (Ablation, Ablation) {
    let sweep = |kind: SchemeKind| -> Vec<AblationPoint> {
        [1u64, 8, 64]
            .into_iter()
            .map(|mb| {
                let config = pmo_workloads::MicroConfig {
                    pmos: 48,
                    active_pmos: 48,
                    pmo_bytes: mb << 20,
                    initial_nodes: 96,
                    ops: 2_000,
                    insert_pct: 90,
                    value_bytes: 64,
                    seed: 0xd0_517e,
                };
                let kinds = [SchemeKind::Lowerbound, kind, SchemeKind::DomainVirt];
                let reports =
                    run_micro(MicroBench::Rbt, &config, &kinds, base, RunOptions::default());
                let lb = report_for(&reports, SchemeKind::Lowerbound);
                AblationPoint {
                    value: mb,
                    mpk_virt_pct: report_for(&reports, kind).overhead_pct_over(lb),
                    domain_virt_pct: report_for(&reports, SchemeKind::DomainVirt)
                        .overhead_pct_over(lb),
                }
            })
            .collect()
    };
    (
        Ablation {
            parameter: "PMO size (MB)",
            note: "libmpk's per-eviction PTE rewrites grow with domain size",
            col1: "libmpk % over lowerbound",
            col2: DEFAULT_COL2,
            points: sweep(SchemeKind::LibMpk),
        },
        Ablation {
            parameter: "PMO size (MB)",
            note: "hardware shootdowns cost the same regardless of domain size",
            col1: DEFAULT_COL1,
            col2: DEFAULT_COL2,
            points: sweep(SchemeKind::MpkVirt),
        },
    )
}

/// Compares the two readings of the paper's Table V instrumentation —
/// one permission pair per *transaction* (the default, which matches the
/// reported switch rates) vs one pair per *PMO access* (the literal §V
/// wording) — under default MPK.
#[must_use]
pub fn switch_granularity(base: &SimConfig) -> Ablation {
    use pmo_workloads::{WhisperBench, WhisperConfig, WhisperWorkload};
    let points = [false, true]
        .into_iter()
        .map(|per_access| {
            let run = |kind| {
                let mut workload = WhisperWorkload::new(
                    WhisperBench::Echo,
                    WhisperConfig {
                        txns: 2_000,
                        records: 2_048,
                        pmo_bytes: 64 << 20,
                        per_access_guard: per_access,
                        seed: 0x7ab1e5,
                    },
                );
                run_windowed(&mut workload, kind, base, RunOptions::default())
            };
            let baseline = run(SchemeKind::Unprotected);
            let d1 = run(SchemeKind::MpkVirt).overhead_pct_over(&baseline);
            let d2 = run(SchemeKind::DomainVirt).overhead_pct_over(&baseline);
            AblationPoint { value: u64::from(per_access), mpk_virt_pct: d1, domain_virt_pct: d2 }
        })
        .collect();
    Ablation {
        parameter: "per-access switching (0 = per-txn, 1 = per-access)",
        note: "per-access bracketing multiplies switch cost ~50x past Table V's reported band",
        col1: "mpk-virt % over baseline",
        col2: "domain-virt % over baseline",
        points,
    }
}

/// Sweeps the memory-level-parallelism factor (the one timing knob not in
/// Table II) to show the conclusions are insensitive to it.
#[must_use]
pub fn mlp_sensitivity(scale: Scale, base: &SimConfig) -> Ablation {
    let active = (scale.max_pmos() / 2).max(32);
    let points = [1u64, 2, 3, 6]
        .into_iter()
        .map(|mlp| {
            let mut sim = base.clone();
            sim.mem_level_parallelism = mlp as f64;
            let (d1, d2) = both_overheads(&sim, scale, active);
            AblationPoint { value: mlp, mpk_virt_pct: d1, domain_virt_pct: d2 }
        })
        .collect();
    Ablation {
        parameter: "memory-level parallelism",
        note: "overheads scale with MLP (baseline shrinks) but orderings never flip",
        col1: DEFAULT_COL1,
        col2: DEFAULT_COL2,
        points,
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            format!("Ablation: {} — {}", self.parameter, self.note),
            &[self.parameter, self.col1, self.col2],
        );
        for p in &self.points {
            t.row(vec![p.value.to_string(), f(p.mpk_virt_pct, 2), f(p.domain_virt_pct, 2)]);
        }
        write!(out, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_scaling_shows_design2_immunity() {
        let base = SimConfig::isca2020();
        // Tiny sweep to keep the test fast.
        let mk = |threads: u32| {
            let mut sim = base.clone();
            sim.threads = threads;
            both_overheads(&sim, Scale::Quick, 32)
        };
        let (d1_one, d2_one) = mk(1);
        let (d1_many, d2_many) = mk(32);
        assert!(d1_many > d1_one * 2.0, "design 1 degrades with threads");
        assert!(
            (d2_many - d2_one).abs() < 1.0,
            "design 2 is immune to shootdown fan-out ({d2_one:.2} vs {d2_many:.2})"
        );
    }
}
