//! Table V: single-PMO WHISPER overheads — default MPK, ERIM call gates,
//! DPTI, and the two hardware virtualization designs, relative to
//! unprotected execution.

use std::fmt;

use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::WhisperBench;

use crate::pool::parallel_map;
use crate::runner::{report_for, run_whisper, RunOptions};
use crate::text::{f, grouped, TextTable};
use crate::Scale;

/// One benchmark's row of Table V.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Benchmark.
    pub bench: &'static str,
    /// Permission switches per simulated second.
    pub switches_per_sec: f64,
    /// Default-MPK overhead over the unprotected baseline, in percent.
    pub mpk_pct: f64,
    /// ERIM call-gate overhead (software key multiplexing), in percent.
    pub erim_pct: f64,
    /// DPTI per-domain-page-table overhead, in percent.
    pub dpti_pct: f64,
    /// Hardware MPK-virtualization overhead, in percent.
    pub mpk_virt_pct: f64,
    /// Hardware domain-virtualization overhead, in percent.
    pub domain_virt_pct: f64,
}

/// The full Table V result.
#[derive(Clone, Debug)]
pub struct Table5 {
    /// Per-benchmark rows.
    pub rows: Vec<Table5Row>,
    /// Arithmetic mean over the benchmarks (the paper's "Average" row).
    pub average: Table5Row,
}

/// Runs the Table V experiment. Each benchmark is an independent cell,
/// fanned across `opts.jobs` workers; rows land in the canonical
/// benchmark order whatever the job count, so the table is byte-identical
/// to a serial run.
#[must_use]
pub fn table5(scale: Scale, sim: &SimConfig, opts: RunOptions) -> Table5 {
    let kinds = [
        SchemeKind::Unprotected,
        SchemeKind::DefaultMpk,
        SchemeKind::Erim,
        SchemeKind::Dpti,
        SchemeKind::MpkVirt,
        SchemeKind::DomainVirt,
    ];
    let rows = parallel_map(opts.jobs, WhisperBench::ALL.to_vec(), |bench| {
        let mut config = scale.whisper_config();
        if bench == WhisperBench::Redis {
            config.txns *= scale.redis_factor();
        }
        let reports = run_whisper(bench, &config, &kinds, sim, opts.serial());
        let base = report_for(&reports, SchemeKind::Unprotected);
        let mpk = report_for(&reports, SchemeKind::DefaultMpk);
        Table5Row {
            bench: bench.label(),
            switches_per_sec: mpk.switches_per_sec(sim),
            mpk_pct: mpk.overhead_pct_over(base),
            erim_pct: report_for(&reports, SchemeKind::Erim).overhead_pct_over(base),
            dpti_pct: report_for(&reports, SchemeKind::Dpti).overhead_pct_over(base),
            mpk_virt_pct: report_for(&reports, SchemeKind::MpkVirt).overhead_pct_over(base),
            domain_virt_pct: report_for(&reports, SchemeKind::DomainVirt).overhead_pct_over(base),
        }
    });
    let n = rows.len() as f64;
    let average = Table5Row {
        bench: "Average",
        switches_per_sec: rows.iter().map(|r| r.switches_per_sec).sum::<f64>() / n,
        mpk_pct: rows.iter().map(|r| r.mpk_pct).sum::<f64>() / n,
        erim_pct: rows.iter().map(|r| r.erim_pct).sum::<f64>() / n,
        dpti_pct: rows.iter().map(|r| r.dpti_pct).sum::<f64>() / n,
        mpk_virt_pct: rows.iter().map(|r| r.mpk_virt_pct).sum::<f64>() / n,
        domain_virt_pct: rows.iter().map(|r| r.domain_virt_pct).sum::<f64>() / n,
    };
    Table5 { rows, average }
}

impl fmt::Display for Table5 {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table V: overhead of MPK, ERIM, DPTI, hardware MPK virtualization and \
             domain virtualization for WHISPER with a single PMO (over unprotected baseline)",
            &[
                "Benchmark",
                "Switches/sec",
                "MPK %",
                "ERIM %",
                "DPTI %",
                "MPK virt %",
                "Domain virt %",
            ],
        );
        for r in self.rows.iter().chain(std::iter::once(&self.average)) {
            t.row(vec![
                r.bench.to_string(),
                grouped(r.switches_per_sec),
                f(r.mpk_pct, 2),
                f(r.erim_pct, 2),
                f(r.dpti_pct, 2),
                f(r.mpk_virt_pct, 2),
                f(r.domain_virt_pct, 2),
            ]);
        }
        write!(out, "{t}")
    }
}
