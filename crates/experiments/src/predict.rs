//! Predictive-analysis certification campaign: the `predict` pass
//! ([`pmo_analyzer::predict`]) certified against the DPOR harness.
//!
//! The predictive pass infers, from ONE observed schedule, feasible
//! reorderings that would manifest stale-window or persist-order
//! violations the observed schedule missed. This campaign grounds that
//! inference in the exhaustive small worlds the refinement campaign
//! verifies ([`crate::refine`]):
//!
//! * **Soundness** — every canonical program of each bounded world is
//!   run under a single sampled schedule (a pure function of the
//!   `world@index` name, [`pmo_modelcheck::sample_schedule`]); every
//!   predicted finding must carry a witness that (1) reconstructs
//!   through the public repro path ([`pmo_analyzer::witness_events`]),
//!   (2) manifests the predicted class at the reported position when
//!   replayed through the manifest passes, (3) is a per-thread-order
//!   preserving permutation of the observed events, and (4) lifts to an
//!   operation schedule that is a member of the DPOR-exhaustive feasible
//!   set ([`pmo_modelcheck::all_schedules`]). On clean worlds — proved
//!   violation-free by the refinement campaign — *any* prediction is a
//!   false positive. Zero tolerance on both counts.
//! * **Usefulness** (`--seeded`) — every trace-level
//!   [`SeededBug`] planted on the durable-transaction harness must be
//!   caught, and `key-reuse-after-evict` (intruder access inside an
//!   unsettled evict/remap window that the observed order hides) must be
//!   caught by the *predictive* pass alone — the manifest passes miss
//!   it. Every world-level [`ProtocolBug`] is classified by its trace
//!   shadow: `predicted` (reordering-reachable from one schedule —
//!   required for the detach-settle bug), `visible` (the trace differs
//!   but only through absent events, which no single-trace analysis can
//!   reorder back into existence), or `invariant` (the recorded trace is
//!   byte-identical to clean; only the DPOR invariant harness sees the
//!   bug). Each row is cross-checked against the modelcheck seeded
//!   matrix: DPOR must catch every bug regardless of class.
//! * **Scale** — the same pass then runs over the production-shaped
//!   workload traces (micro/WHISPER/server: the 8-scheme campaign trace
//!   set) where DPOR cannot go; verified-clean traces must produce zero
//!   predictions.
//!
//! Reports are byte-identical at any `--jobs` count: chunks merge in
//! enumeration order and the sampled schedules carry no RNG state.

use std::collections::BTreeMap;
use std::fmt;

use pmo_analyzer::{
    json_string, predict, seed_bug, witness_events, Analyzer, GatePass, InspectPass,
    PermWindowPass, PersistOrderPass, PredictedFinding, RacePass, SeededBug, ViolationClass,
};
use pmo_modelcheck::enumerate::{self, Codes, WorldBounds};
use pmo_modelcheck::{
    all_schedules, explore, naive_schedules, sample_schedule, schedule_string, schedule_trace,
    ExploreLimits, Scenario, ScheduleRun,
};
use pmo_protect::ProtocolBug;
use pmo_runtime::{Mode, PmRuntime};
use pmo_trace::{Perm, RecordedTrace, TraceEvent, TraceSink};
use pmo_workloads::{
    MicroBench, MicroConfig, MicroWorkload, ServerConfig, ServerWorkload, WhisperBench,
    WhisperConfig, WhisperWorkload, Workload,
};

use crate::pool::parallel_map;
use crate::refine::{RefineConfig, RefineWorld, SkippedWorld};
use crate::Scale;

/// Feasible-set enumeration cap per program. Quick-world programs have
/// at most a few dozen maximal schedules; hitting the cap voids the
/// certificate for that finding and is reported as a false positive.
pub const FEASIBLE_CAP: usize = 1 << 16;

/// Campaign shape: the same bounded worlds the refinement campaign
/// verifies exhaustively, so "clean world" is a proved fact, not an
/// assumption.
#[derive(Clone, Debug)]
pub struct PredictConfig {
    /// Worlds certified, in report order.
    pub worlds: Vec<RefineWorld>,
    /// Worlds the selected [`Scale`] excludes (loud rows, never silent).
    pub skipped: Vec<RefineWorld>,
    /// Kept false-positive descriptions per world (the excess is
    /// counted, never silently dropped).
    pub max_fp_reports: usize,
    /// Programs per parallel work unit.
    pub chunk: usize,
}

impl PredictConfig {
    /// The campaign shape for a [`Scale`] (same worlds as
    /// [`RefineConfig::for_scale`]).
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        let refine = RefineConfig::for_scale(scale);
        PredictConfig {
            worlds: refine.worlds,
            skipped: refine.skipped,
            max_fp_reports: 20,
            chunk: 256,
        }
    }

    /// The world named `name`, if configured.
    #[must_use]
    pub fn world(&self, name: &str) -> Option<&RefineWorld> {
        self.worlds.iter().find(|w| w.name == name)
    }
}

/// Per-program certification tally.
#[derive(Clone, Debug, Default)]
struct ProgramCert {
    events: u64,
    candidates: u64,
    findings: u64,
    fp: Vec<String>,
    fp_total: u64,
}

impl ProgramCert {
    fn fail(&mut self, why: String) {
        self.fp_total += 1;
        self.fp.push(why);
    }
}

fn is_switch(ev: &TraceEvent) -> bool {
    matches!(ev, TraceEvent::ThreadSwitch { .. })
}

/// Replays `events` through the manifest passes the predictive pass
/// targets (hb-race/stale-window + persist-order) and returns the
/// error-severity diagnostics as `(class, position)` pairs.
fn manifest_errors(events: &[TraceEvent], source: &str) -> Vec<(ViolationClass, u64)> {
    let mut a = Analyzer::new(source).with_pass(RacePass::new()).with_pass(PersistOrderPass::new());
    for &ev in events {
        a.event(ev);
    }
    a.finish().errors().map(|d| (d.class, d.position)).collect()
}

/// Per-thread event streams (thread switches consumed as attribution,
/// not content).
fn per_thread_events(events: &[TraceEvent]) -> BTreeMap<u32, Vec<TraceEvent>> {
    let mut cur = 0u32;
    let mut out: BTreeMap<u32, Vec<TraceEvent>> = BTreeMap::new();
    for &ev in events {
        if let TraceEvent::ThreadSwitch { thread } = ev {
            cur = thread.raw();
        } else {
            out.entry(cur).or_default().push(ev);
        }
    }
    out
}

/// Lifts a witness event reordering back to an operation schedule, using
/// the observed run's per-step event ranges to know how many events each
/// operation emitted. Zero-event operations (denied accesses, no-op
/// attaches) are unobservable in the trace; they are placed at the
/// earliest point consistent with their thread's program order, which is
/// always feasible.
fn lift_schedule(
    counts: &[usize],
    sched: &[u32],
    run: &ScheduleRun,
    witness: &[TraceEvent],
) -> Result<Vec<u32>, String> {
    // Per-thread queues of (is_real_op, remaining_events), program order.
    // The scenario's setup attaches run on thread 0 before step 0 and
    // consume as a pseudo-op that never emits a schedule entry.
    let mut queues: Vec<std::collections::VecDeque<(bool, usize)>> =
        vec![std::collections::VecDeque::new(); counts.len()];
    let setup_end = run.steps.first().map_or(run.trace.len(), |s| s.0);
    let setup_events = run.trace[..setup_end].iter().filter(|e| !is_switch(e)).count();
    queues[0].push_back((false, setup_events));
    for (k, &t) in sched.iter().enumerate() {
        let (s, e) = run.steps[k];
        let n = run.trace[s..e].iter().filter(|e| !is_switch(e)).count();
        queues[t as usize].push_back((true, n));
    }

    let mut derived = Vec::with_capacity(sched.len());
    let mut cur = 0u32;
    for ev in witness {
        if let TraceEvent::ThreadSwitch { thread } = ev {
            cur = thread.raw();
            continue;
        }
        let q = queues
            .get_mut(cur as usize)
            .ok_or_else(|| format!("witness names out-of-range thread {cur}"))?;
        loop {
            let Some(front) = q.front_mut() else {
                return Err(format!("thread {cur}: witness has more events than operations"));
            };
            if front.1 == 0 {
                // Zero-event op preceding the current one: flush it.
                let real = front.0;
                q.pop_front();
                if real {
                    derived.push(cur);
                }
                continue;
            }
            front.1 -= 1;
            if front.1 == 0 {
                let real = front.0;
                q.pop_front();
                if real {
                    derived.push(cur);
                }
            }
            break;
        }
    }
    for (t, q) in queues.iter_mut().enumerate() {
        while let Some(&(real, n)) = q.front() {
            if n != 0 {
                return Err(format!("thread {t}: witness drops {n} events"));
            }
            q.pop_front();
            if real {
                derived.push(t as u32);
            }
        }
    }
    Ok(derived)
}

/// Checks one predicted finding against ground truth. Returns `None`
/// when the finding is certified sound, `Some(reason)` when it is a
/// false positive.
fn refute_finding(
    scenario: &Scenario,
    counts: &[usize],
    sched: &[u32],
    run: &ScheduleRun,
    finding: &PredictedFinding,
) -> Option<String> {
    // (1) The witness reconstructs through the public repro path.
    let Some((witness, _, _)) = witness_events(&run.trace, finding.moved.0, finding.anchor.0)
    else {
        return Some(format!(
            "witness for {} (moved {} past {}) is not constructible",
            finding.class.name(),
            finding.moved.0,
            finding.anchor.0
        ));
    };
    // (2) The witness manifests the predicted class at the reported
    // position.
    let hits = manifest_errors(&witness, &scenario.name);
    if !hits.iter().any(|&(c, p)| c == finding.class && p == finding.witness_position) {
        return Some(format!(
            "witness replay does not manifest {} at position {} (got {:?})",
            finding.class.name(),
            finding.witness_position,
            hits
        ));
    }
    // (3) The witness is a per-thread-order-preserving permutation of
    // the observed events.
    if per_thread_events(&run.trace) != per_thread_events(&witness) {
        return Some(format!(
            "witness for {} is not a per-thread permutation of the observed trace",
            finding.class.name()
        ));
    }
    // (4) The lifted operation schedule is in the DPOR-exhaustive
    // feasible set.
    let derived = match lift_schedule(counts, sched, run, &witness) {
        Ok(d) => d,
        Err(e) => return Some(format!("witness does not lift to an op schedule: {e}")),
    };
    let (feasible, truncated) = all_schedules(counts, FEASIBLE_CAP);
    if truncated {
        return Some("feasible-set enumeration truncated; certificate void".to_string());
    }
    if !feasible.contains(&derived) {
        return Some(format!(
            "witness schedule {} is outside the DPOR-exhaustive feasible set",
            schedule_string(&derived)
        ));
    }
    None
}

/// Certifies one scenario from its single sampled schedule.
fn certify_scenario(scenario: &Scenario, bug: Option<ProtocolBug>) -> ProgramCert {
    let counts = scenario.program.op_counts();
    let sched = sample_schedule(&scenario.name, &counts);
    let mut cert = ProgramCert::default();
    let run = match schedule_trace(scenario, bug, &sched) {
        Ok(run) => run,
        Err(e) => {
            cert.fail(format!("{}: sampled schedule not executable: {e}", scenario.name));
            return cert;
        }
    };
    let prediction = predict(&run.trace);
    cert.events = run.trace.len() as u64;
    cert.candidates = (prediction.candidates + prediction.candidates_dropped) as u64;
    cert.findings = (prediction.findings.len() + prediction.findings_dropped) as u64;
    for finding in &prediction.findings {
        if bug.is_none() {
            cert.fail(format!(
                "{}: prediction on a verified-clean world: {}",
                scenario.name, finding.message
            ));
        } else if let Some(why) = refute_finding(scenario, &counts, &sched, &run, finding) {
            cert.fail(format!("{}: {why}", scenario.name));
        }
    }
    cert
}

fn to_scenario(world: &RefineWorld, index: usize, codes: &Codes) -> Scenario {
    enumerate::to_scenario(world.name, index, codes, &world.bounds, world.config())
}

/// Soundness results for one world.
#[derive(Clone, Debug)]
pub struct PredictWorldOutcome {
    /// World name.
    pub world: String,
    /// Enumeration bounds.
    pub bounds: WorldBounds,
    /// Raw (pre-reduction) program count, closed form.
    pub raw: u128,
    /// Burnside closed-form orbit count.
    pub burnside: u128,
    /// Programs certified, one sampled schedule each (must equal
    /// `burnside`).
    pub canonical: u64,
    /// Closed-form count of maximal schedules across all programs — the
    /// feasible set each witness is certified against.
    pub feasible: u128,
    /// Trace events analyzed across all sampled schedules.
    pub events: u64,
    /// Candidate reorderings explored.
    pub candidates: u64,
    /// Predicted findings (0 expected on clean worlds).
    pub findings: u64,
    /// Kept false-positive descriptions (capped).
    pub false_positives: Vec<String>,
    /// Total false positives, including beyond the cap. Must be 0.
    pub fp_total: u64,
}

impl PredictWorldOutcome {
    /// Whether enumeration matched the closed form and no false positive
    /// survived.
    #[must_use]
    pub fn passed(&self) -> bool {
        u128::from(self.canonical) == self.burnside && self.fp_total == 0
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        let fps = self.false_positives.iter().map(|f| json_string(f)).collect::<Vec<_>>().join(",");
        format!(
            "{{\"world\":{},\"ops\":{},\"threads\":{},\"domains\":{},\"raw\":{},\
             \"burnside\":{},\"canonical\":{},\"feasible_schedules\":{},\"events\":{},\
             \"candidates\":{},\"findings\":{},\"false_positives\":{},\"fp_detail\":[{fps}]}}",
            json_string(&self.world),
            self.bounds.ops,
            self.bounds.threads,
            self.bounds.domains,
            self.raw,
            self.burnside,
            self.canonical,
            self.feasible,
            self.events,
            self.candidates,
            self.findings,
            self.fp_total,
        )
    }
}

/// Certifies one world, fanning program chunks across `jobs` workers.
/// Deterministic: chunks merge in enumeration order.
#[must_use]
pub fn run_world(world: &RefineWorld, cfg: &PredictConfig, jobs: usize) -> PredictWorldOutcome {
    let programs = enumerate::enumerate_canonical(&world.bounds);
    let canonical = programs.len() as u64;
    let chunk = cfg.chunk.max(1);
    let chunks: Vec<(usize, &[Codes])> =
        programs.chunks(chunk).enumerate().map(|(i, c)| (i * chunk, c)).collect();
    let partials = parallel_map(jobs, chunks, |(start, chunk_programs)| {
        let mut feasible = 0u128;
        let mut merged = ProgramCert::default();
        for (i, codes) in chunk_programs.iter().enumerate() {
            let scenario = to_scenario(world, start + i, codes);
            feasible += naive_schedules(&scenario.program.op_counts(), usize::MAX);
            let cert = certify_scenario(&scenario, None);
            merged.events += cert.events;
            merged.candidates += cert.candidates;
            merged.findings += cert.findings;
            merged.fp_total += cert.fp_total;
            merged.fp.extend(cert.fp);
        }
        (feasible, merged)
    });

    let mut outcome = PredictWorldOutcome {
        world: world.name.to_string(),
        bounds: world.bounds,
        raw: enumerate::raw_count(&world.bounds),
        burnside: enumerate::orbit_count(&world.bounds),
        canonical,
        feasible: 0,
        events: 0,
        candidates: 0,
        findings: 0,
        false_positives: Vec::new(),
        fp_total: 0,
    };
    for (feasible, part) in partials {
        outcome.feasible += feasible;
        outcome.events += part.events;
        outcome.candidates += part.candidates;
        outcome.findings += part.findings;
        outcome.fp_total += part.fp_total;
        for f in part.fp {
            if outcome.false_positives.len() < cfg.max_fp_reports {
                outcome.false_positives.push(f);
            }
        }
    }
    outcome
}

/// One production-shaped trace run at scale (where DPOR cannot go).
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Trace source name.
    pub source: String,
    /// Events analyzed.
    pub events: u64,
    /// Candidate reorderings explored.
    pub candidates: u64,
    /// Predicted findings — must be 0 on these verified-clean traces.
    pub findings: u64,
}

impl ScaleRow {
    /// Whether the verified-clean trace stayed prediction-free.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings == 0
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"source\":{},\"events\":{},\"candidates\":{},\"findings\":{}}}",
            json_string(&self.source),
            self.events,
            self.candidates,
            self.findings,
        )
    }
}

fn scale_micro_config() -> MicroConfig {
    MicroConfig {
        pmos: 12,
        active_pmos: 12,
        pmo_bytes: 1 << 20,
        initial_nodes: 12,
        ops: 150,
        ..MicroConfig::quick()
    }
}

fn scale_whisper_config() -> WhisperConfig {
    WhisperConfig { txns: 150, records: 256, pmo_bytes: 8 << 20, ..WhisperConfig::quick() }
}

fn scale_server_config() -> ServerConfig {
    ServerConfig {
        clients: 8,
        requests: 200,
        quantum: 3,
        initial_records: 16,
        pmo_bytes: 1 << 20,
        ..ServerConfig::default()
    }
}

fn record_workload(w: &mut dyn Workload) -> Vec<TraceEvent> {
    let mut trace = RecordedTrace::new();
    w.generate(&mut trace);
    trace.into_events()
}

/// The at-scale sources for a [`Scale`]: a representative trio plus one
/// soak shard for quick runs; the full 8-scheme campaign trace set
/// (five micro, six WHISPER, server) plus every soak shard under
/// `--full`.
#[must_use]
pub fn scale_sources(scale: Scale) -> Vec<String> {
    let soak_cfg = crate::soak::SoakConfig::for_scale(scale);
    if scale == Scale::Paper {
        let mut out: Vec<String> =
            MicroBench::ALL.iter().map(|b| format!("micro-{}", b.label())).collect();
        out.extend(WhisperBench::ALL.iter().map(|b| format!("whisper-{}", b.label())));
        out.push("server".to_string());
        out.extend((0..soak_cfg.shards).map(|s| format!("soak-shard-{s}")));
        out
    } else {
        vec![
            "micro-AVL".to_string(),
            "whisper-Echo".to_string(),
            "server".to_string(),
            "soak-shard-0".to_string(),
        ]
    }
}

fn trace_for_source(scale: Scale, source: &str) -> Option<Vec<TraceEvent>> {
    if let Some(label) = source.strip_prefix("micro-") {
        let bench = MicroBench::ALL.iter().copied().find(|b| b.label() == label)?;
        return Some(record_workload(&mut MicroWorkload::new(bench, scale_micro_config())));
    }
    if let Some(label) = source.strip_prefix("whisper-") {
        let bench = WhisperBench::ALL.iter().copied().find(|b| b.label() == label)?;
        return Some(record_workload(&mut WhisperWorkload::new(bench, scale_whisper_config())));
    }
    if source == "server" {
        return Some(record_workload(&mut ServerWorkload::new(scale_server_config())));
    }
    if let Some(shard) = source.strip_prefix("soak-shard-") {
        let shard: u32 = shard.parse().ok()?;
        return Some(crate::soak::shard_trace(&crate::soak::SoakConfig::for_scale(scale), shard));
    }
    None
}

/// Runs the predictive pass over the production-shaped traces, fanned
/// across `jobs` workers (rows merge in source order).
#[must_use]
pub fn run_scale(scale: Scale, jobs: usize) -> Vec<ScaleRow> {
    parallel_map(jobs, scale_sources(scale), |source| {
        let events = trace_for_source(scale, &source).unwrap_or_default();
        let p = predict(&events);
        ScaleRow {
            source,
            events: events.len() as u64,
            candidates: (p.candidates + p.candidates_dropped) as u64,
            findings: (p.findings.len() + p.findings_dropped) as u64,
        }
    })
}

/// One trace-level seeded-bug row: the bug planted on the known-clean
/// durable-transaction harness, analyzed once.
#[derive(Clone, Debug)]
pub struct TraceSeedRow {
    /// The planted bug.
    pub bug: SeededBug,
    /// The class the matching pass must report.
    pub expected: ViolationClass,
    /// Caught by the manifest pass stack (everything except `predict`).
    pub manifest_caught: bool,
    /// Caught by the predictive pass from the same single trace.
    pub predict_caught: bool,
    /// When predicted: the witness replayed through the repro path and
    /// manifested the class at the reported position. Vacuously true
    /// otherwise.
    pub witness_replayed: bool,
}

impl TraceSeedRow {
    /// Whether the bug was caught, with `key-reuse-after-evict`
    /// additionally required to be *predict-only* (the reordering-
    /// reachable plant the manifest passes must miss).
    #[must_use]
    pub fn passed(&self) -> bool {
        let caught = (self.manifest_caught || self.predict_caught) && self.witness_replayed;
        if self.bug == SeededBug::KeyReuseAfterEvict {
            caught && self.predict_caught && !self.manifest_caught
        } else {
            caught
        }
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bug\":{},\"expected\":{},\"manifest_caught\":{},\"predict_caught\":{},\
             \"witness_replayed\":{},\"passed\":{}}}",
            json_string(self.bug.label()),
            json_string(self.expected.name()),
            self.manifest_caught,
            self.predict_caught,
            self.witness_replayed,
            self.passed(),
        )
    }
}

/// The durable-transaction harness trace the persist/race/stale
/// mutations are planted on (mirrors the analyzer validation suite).
#[must_use]
pub fn txn_harness_trace() -> Vec<TraceEvent> {
    let mut rt = PmRuntime::new();
    let mut trace = RecordedTrace::new();
    let pool = rt
        .pool_create("predict-harness", 1 << 20, Mode::private(), &mut trace)
        .expect("harness pool");
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
    let root = rt.pool_root(pool, 64, &mut trace).expect("harness root");
    let mut tx = rt.begin_txn(pool, &mut trace).expect("harness txn");
    tx.write_u64(root, 0, 7).expect("harness write");
    tx.write_u64(root, 8, 9).expect("harness write");
    tx.commit().expect("harness commit");
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
    rt.pool_close(pool, &mut trace).expect("harness close");
    trace.into_events()
}

/// Plants every [`SeededBug`] on the harness and splits the catch
/// between the manifest pass stack and the predictive pass.
#[must_use]
pub fn seeded_trace_rows() -> Vec<TraceSeedRow> {
    let harness = txn_harness_trace();
    let whisper =
        record_workload(&mut WhisperWorkload::new(WhisperBench::Echo, scale_whisper_config()));
    SeededBug::ALL
        .iter()
        .map(|&bug| {
            // WindowLeftOpen needs a trace that holds its pool attached
            // for its whole lifetime (see the analyzer validation suite).
            let clean = if bug == SeededBug::WindowLeftOpen { &whisper } else { &harness };
            let expected = bug.expected_class();
            let Some(mutated) = seed_bug(clean, bug) else {
                return TraceSeedRow {
                    bug,
                    expected,
                    manifest_caught: false,
                    predict_caught: false,
                    witness_replayed: false,
                };
            };
            let mut manifest = Analyzer::new(bug.label())
                .with_pass(PersistOrderPass::new())
                .with_pass(RacePass::new())
                .with_pass(GatePass::new())
                .with_pass(InspectPass::standard())
                .with_pass(PermWindowPass::strict());
            for &ev in &mutated {
                manifest.event(ev);
            }
            let manifest_caught = manifest.finish().errors().any(|d| d.class == expected);
            let prediction = predict(&mutated);
            let hit = prediction.findings.iter().find(|f| f.class == expected);
            let witness_replayed = match hit {
                None => true,
                Some(f) => {
                    witness_events(&mutated, f.moved.0, f.anchor.0).is_some_and(|(wit, _, _)| {
                        manifest_errors(&wit, bug.label())
                            .iter()
                            .any(|&(c, p)| c == f.class && p == f.witness_position)
                    })
                }
            };
            TraceSeedRow {
                bug,
                expected,
                manifest_caught,
                predict_caught: hit.is_some(),
                witness_replayed,
            }
        })
        .collect()
}

/// How a world-level protocol bug shows up at trace level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEffect {
    /// The recorded trace is byte-identical to the clean run on every
    /// sampled schedule: only the DPOR invariant harness can see it.
    Invariant,
    /// The trace differs, but only through events that never executed
    /// (missing settles/shootdowns without a reorderable shadow).
    Visible,
    /// Reordering-reachable: the predictive pass catches it from a
    /// single observed schedule with a certified witness.
    Predicted,
}

impl TraceEffect {
    /// Stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceEffect::Invariant => "invariant",
            TraceEffect::Visible => "visible",
            TraceEffect::Predicted => "predicted",
        }
    }
}

/// The expected trace shadow of each protocol bug. The detach-settle
/// skip is the key-reuse window the predictive pass exists for; the
/// eviction-shootdown skip is visible only through *absent* events; the
/// other four never touch the recorded trace (the canonical trace
/// records spec-allowed events, and those bugs corrupt scheme caches,
/// not the spec).
#[must_use]
pub fn expected_effect(bug: ProtocolBug) -> TraceEffect {
    match bug {
        ProtocolBug::SkipPtlbInvalidateOnDetach => TraceEffect::Predicted,
        ProtocolBug::SkipEvictionShootdown => TraceEffect::Visible,
        ProtocolBug::SkipPkruUpdateOnSetPerm
        | ProtocolBug::SkipPtlbFlushOnSwitch
        | ProtocolBug::SkipGateExitKeyRestore
        | ProtocolBug::StaleCr3OnSwitch => TraceEffect::Invariant,
    }
}

/// One world-level seeded row: the protocol bug's trace shadow, with the
/// DPOR seeded matrix as cross-check.
#[derive(Clone, Debug)]
pub struct WorldSeedRow {
    /// The planted bug.
    pub bug: ProtocolBug,
    /// Observed trace shadow.
    pub effect: TraceEffect,
    /// Expected trace shadow.
    pub expected: TraceEffect,
    /// First scenario exhibiting the effect (`-` for invariant).
    pub scenario: String,
    /// Predicted class (predicted rows only).
    pub class: Option<ViolationClass>,
    /// The certified witness schedule (predicted rows only).
    pub witness: String,
    /// Canonical programs scanned.
    pub programs_scanned: u64,
    /// The DPOR seeded matrix catches the bug (must hold for every row).
    pub dpor_caught: bool,
}

impl WorldSeedRow {
    /// Whether the observed shadow matches the expectation and DPOR
    /// catches the bug.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.effect == self.expected && self.dpor_caught
    }

    /// JSON object (stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bug\":{},\"effect\":{},\"expected\":{},\"scenario\":{},\"class\":{},\
             \"witness\":{},\"programs_scanned\":{},\"dpor_caught\":{},\"passed\":{}}}",
            json_string(self.bug.label()),
            json_string(self.effect.label()),
            json_string(self.expected.label()),
            json_string(&self.scenario),
            json_string(self.class.map_or("-", ViolationClass::name)),
            json_string(&self.witness),
            self.programs_scanned,
            self.dpor_caught,
            self.passed(),
        )
    }
}

/// Per-program scan result for the seeded world scan.
struct SeedScan {
    visible: bool,
    predicted: Option<(ViolationClass, String)>,
}

fn scan_program(scenario: &Scenario, bug: ProtocolBug) -> SeedScan {
    let counts = scenario.program.op_counts();
    let sched = sample_schedule(&scenario.name, &counts);
    let (Ok(clean), Ok(bugged)) =
        (schedule_trace(scenario, None, &sched), schedule_trace(scenario, Some(bug), &sched))
    else {
        return SeedScan { visible: false, predicted: None };
    };
    let visible = clean.trace != bugged.trace;
    let mut predicted = None;
    if visible {
        let prediction = predict(&bugged.trace);
        for f in &prediction.findings {
            if refute_finding(scenario, &counts, &sched, &bugged, f).is_none() {
                let witness = witness_events(&bugged.trace, f.moved.0, f.anchor.0)
                    .and_then(|(wit, _, _)| lift_schedule(&counts, &sched, &bugged, &wit).ok())
                    .map_or_else(String::new, |s| schedule_string(&s));
                predicted = Some((f.class, witness));
                break;
            }
        }
    }
    SeedScan { visible, predicted }
}

/// Classifies each bug in `bugs` by scanning the configured worlds'
/// programs in enumeration order (chunks fanned across `jobs` workers;
/// the first predicted witness is taken in enumeration order regardless
/// of job count) and cross-checks against the DPOR seeded matrix.
#[must_use]
pub fn seeded_world_rows(
    cfg: &PredictConfig,
    jobs: usize,
    bugs: &[ProtocolBug],
) -> Vec<WorldSeedRow> {
    let checks = pmo_modelcheck::seeded_checks();
    bugs.iter()
        .map(|&bug| {
            let dpor_caught = checks.iter().filter(|c| c.bug == bug).any(|c| {
                pmo_modelcheck::find(c.scenario).is_some_and(|scenario| {
                    explore(&scenario, Some(bug), &ExploreLimits::default())
                        .violations
                        .iter()
                        .any(|v| v.class == c.expect)
                })
            });
            let mut scanned = 0u64;
            let mut first_visible: Option<String> = None;
            let mut predicted: Option<(String, ViolationClass, String)> = None;
            'worlds: for world in &cfg.worlds {
                let programs = enumerate::enumerate_canonical(&world.bounds);
                let chunk = cfg.chunk.max(1);
                for (ci, chunk_programs) in programs.chunks(chunk).enumerate() {
                    let start = ci * chunk;
                    let outs = parallel_map(
                        jobs,
                        chunk_programs.iter().enumerate().collect(),
                        |(i, codes)| scan_program(&to_scenario(world, start + i, codes), bug),
                    );
                    for (i, out) in outs.into_iter().enumerate() {
                        scanned += 1;
                        let name = format!("{}@{}", world.name, start + i);
                        if out.visible && first_visible.is_none() {
                            first_visible = Some(name.clone());
                        }
                        if let Some((class, witness)) = out.predicted {
                            predicted = Some((name, class, witness));
                            break 'worlds;
                        }
                    }
                }
            }
            let (effect, scenario, class, witness) = match (predicted, first_visible) {
                (Some((name, class, witness)), _) => {
                    (TraceEffect::Predicted, name, Some(class), witness)
                }
                (None, Some(name)) => (TraceEffect::Visible, name, None, String::new()),
                (None, None) => (TraceEffect::Invariant, "-".to_string(), None, String::new()),
            };
            WorldSeedRow {
                bug,
                effect,
                expected: expected_effect(bug),
                scenario,
                class,
                witness,
                programs_scanned: scanned,
                dpor_caught,
            }
        })
        .collect()
}

/// The whole campaign report.
#[derive(Clone, Debug, Default)]
pub struct PredictReport {
    /// Per-world soundness outcomes, in configuration order.
    pub worlds: Vec<PredictWorldOutcome>,
    /// Worlds excluded by the selected scale (loud rows).
    pub skipped: Vec<SkippedWorld>,
    /// At-scale rows over production-shaped traces.
    pub scale: Vec<ScaleRow>,
    /// Trace-level seeded rows (`--seeded` only).
    pub seeded_trace: Vec<TraceSeedRow>,
    /// World-level seeded rows (`--seeded` only).
    pub seeded_world: Vec<WorldSeedRow>,
    /// Wall time, stamped by the binary after the deterministic core
    /// finishes (0 in library use).
    pub wall_nanos: u64,
}

impl PredictReport {
    /// Whether every certificate held.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.worlds.iter().all(PredictWorldOutcome::passed)
            && self.scale.iter().all(ScaleRow::passed)
            && self.seeded_trace.iter().all(TraceSeedRow::passed)
            && self.seeded_world.iter().all(WorldSeedRow::passed)
    }

    /// Total canonical programs certified.
    #[must_use]
    pub fn total_programs(&self) -> u64 {
        self.worlds.iter().map(|w| w.canonical).sum()
    }

    /// Total events analyzed (worlds + scale rows).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.worlds.iter().map(|w| w.events).sum::<u64>()
            + self.scale.iter().map(|s| s.events).sum::<u64>()
    }

    /// Total false positives (must be 0).
    #[must_use]
    pub fn total_false_positives(&self) -> u64 {
        self.worlds.iter().map(|w| w.fp_total).sum()
    }

    /// JSON document (stable field names; `wall_nanos` is the only
    /// nondeterministic field).
    #[must_use]
    pub fn to_json(&self) -> String {
        let worlds =
            self.worlds.iter().map(PredictWorldOutcome::to_json).collect::<Vec<_>>().join(",");
        let skipped = self.skipped.iter().map(SkippedWorld::to_json).collect::<Vec<_>>().join(",");
        let scale = self.scale.iter().map(ScaleRow::to_json).collect::<Vec<_>>().join(",");
        let st = self.seeded_trace.iter().map(TraceSeedRow::to_json).collect::<Vec<_>>().join(",");
        let sw = self.seeded_world.iter().map(WorldSeedRow::to_json).collect::<Vec<_>>().join(",");
        format!(
            "{{\"clean\":{},\"programs\":{},\"events\":{},\"false_positives\":{},\
             \"wall_nanos\":{},\"worlds\":[{worlds}],\"skipped_worlds\":[{skipped}],\
             \"scale\":[{scale}],\"seeded_trace\":[{st}],\"seeded_world\":[{sw}]}}",
            self.is_clean(),
            self.total_programs(),
            self.total_events(),
            self.total_false_positives(),
            self.wall_nanos,
        )
    }
}

impl fmt::Display for PredictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>14} {:>10} {:>10} {:>10} {:>10} {:>8} {:>6}",
            "world", "bounds", "programs", "feasible", "events", "candidates", "findings", "FPs"
        )?;
        for w in &self.worlds {
            writeln!(
                f,
                "{:<6} {:>14} {:>10} {:>10} {:>10} {:>10} {:>8} {:>6}{}",
                w.world,
                format!("N{} M{} K{}", w.bounds.ops, w.bounds.threads, w.bounds.domains),
                w.canonical,
                w.feasible,
                w.events,
                w.candidates,
                w.findings,
                w.fp_total,
                if u128::from(w.canonical) != w.burnside { " (COUNT MISMATCH)" } else { "" },
            )?;
            for fp in &w.false_positives {
                writeln!(f, "  FP: {fp}")?;
            }
        }
        for s in &self.skipped {
            writeln!(
                f,
                "{:<6} {:>14} SKIPPED (scale cap): {} canonical programs NOT certified at \
                 this scale; rerun with --full",
                s.world,
                format!("N{} M{} K{}", s.bounds.ops, s.bounds.threads, s.bounds.domains),
                s.unverified,
            )?;
        }
        if !self.scale.is_empty() {
            writeln!(f, "\nat scale (verified-clean production-shaped traces):")?;
            for s in &self.scale {
                writeln!(
                    f,
                    "  {:<16} {:>8} events {:>6} candidates {:>4} findings [{}]",
                    s.source,
                    s.events,
                    s.candidates,
                    s.findings,
                    if s.passed() { "ok" } else { "FAIL" },
                )?;
            }
        }
        if !self.seeded_trace.is_empty() {
            writeln!(f, "\nseeded trace bugs (single observed trace):")?;
            for r in &self.seeded_trace {
                writeln!(
                    f,
                    "  {:<26} manifest {:<5} predict {:<5} -> {} [{}]",
                    r.bug.label(),
                    r.manifest_caught,
                    r.predict_caught,
                    r.expected.name(),
                    if r.passed() { "ok" } else { "FAIL" },
                )?;
            }
        }
        if !self.seeded_world.is_empty() {
            writeln!(f, "\nseeded protocol bugs (trace shadow, one schedule per program):")?;
            for r in &self.seeded_world {
                write!(
                    f,
                    "  {:<30} {:<9} (expect {:<9}) dpor {:<5}",
                    r.bug.label(),
                    r.effect.label(),
                    r.expected.label(),
                    r.dpor_caught,
                )?;
                if r.effect == TraceEffect::Predicted {
                    write!(
                        f,
                        " {} as {} via {}",
                        r.scenario,
                        r.class.map_or("-", ViolationClass::name),
                        r.witness,
                    )?;
                }
                writeln!(f, " [{}]", if r.passed() { "ok" } else { "FAIL" })?;
            }
        }
        writeln!(
            f,
            "\ntotal: {} programs certified from one schedule each, {} events, {} false \
             positives",
            self.total_programs(),
            self.total_events(),
            self.total_false_positives(),
        )?;
        if self.is_clean() {
            writeln!(f, "result: CLEAN")?;
        } else {
            writeln!(f, "result: CERTIFICATION FAILED")?;
        }
        Ok(())
    }
}

/// Runs the soundness campaign (worlds + at-scale rows).
#[must_use]
pub fn run_campaign(cfg: &PredictConfig, scale: Scale, jobs: usize) -> PredictReport {
    PredictReport {
        worlds: cfg.worlds.iter().map(|w| run_world(w, cfg, jobs)).collect(),
        skipped: cfg.skipped.iter().map(SkippedWorld::from_world).collect(),
        scale: run_scale(scale, jobs),
        seeded_trace: Vec::new(),
        seeded_world: Vec::new(),
        wall_nanos: 0,
    }
}

/// Replays one `world@program@moved@anchor` witness repro id: re-derives
/// the sampled schedule, rebuilds the observed trace (optionally with a
/// planted bug), reconstructs the witness through the public repro path,
/// and returns the manifest diagnostics of the witness replay.
///
/// # Errors
///
/// Returns a description when the world is unknown, the program index is
/// out of range, the schedule is not executable, or the witness is not
/// constructible.
pub fn replay_repro(
    cfg: &PredictConfig,
    world_name: &str,
    program: usize,
    moved: u64,
    anchor: u64,
    bug: Option<ProtocolBug>,
) -> Result<pmo_analyzer::AnalysisReport, String> {
    let world = cfg
        .world(world_name)
        .ok_or_else(|| format!("unknown world {world_name:?} (have: w1, w2, ...)"))?;
    let programs = enumerate::enumerate_canonical(&world.bounds);
    let codes = programs.get(program).ok_or_else(|| {
        format!("{world_name} has {} programs, no index {program}", programs.len())
    })?;
    let scenario = to_scenario(world, program, codes);
    let counts = scenario.program.op_counts();
    let sched = sample_schedule(&scenario.name, &counts);
    let run = schedule_trace(&scenario, bug, &sched)?;
    let (witness, _, _) = witness_events(&run.trace, moved, anchor).ok_or_else(|| {
        format!("witness moving event {moved} past event {anchor} is not constructible")
    })?;
    let mut a = Analyzer::new(format!("{}@{moved}@{anchor}", scenario.name))
        .with_pass(RacePass::new())
        .with_pass(PersistOrderPass::new());
    for &ev in &witness {
        a.event(ev);
    }
    Ok(a.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// w1 only: keeps tests fast while still exercising ~3k programs.
    fn tiny_config() -> PredictConfig {
        let mut cfg = PredictConfig::for_scale(Scale::Quick);
        cfg.worlds.truncate(1);
        cfg
    }

    #[test]
    fn clean_worlds_have_zero_predictions_and_zero_false_positives() {
        let cfg = tiny_config();
        let w = run_world(&cfg.worlds[0], &cfg, 2);
        assert!(w.passed(), "{:?}", w.false_positives);
        assert_eq!(w.findings, 0, "clean worlds must stay prediction-free");
        assert_eq!(u128::from(w.canonical), w.burnside);
        assert!(w.feasible >= u128::from(w.canonical));
        assert!(w.events > 0);
    }

    #[test]
    fn campaign_is_byte_identical_across_job_counts() {
        let cfg = tiny_config();
        let serial = run_world(&cfg.worlds[0], &cfg, 1);
        let parallel = run_world(&cfg.worlds[0], &cfg, 4);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn sampled_schedule_is_a_pure_function_of_the_world_id() {
        let cfg = tiny_config();
        let world = &cfg.worlds[0];
        let programs = enumerate::enumerate_canonical(&world.bounds);
        for index in [0usize, 7, programs.len() - 1] {
            let scenario = to_scenario(world, index, &programs[index]);
            let counts = scenario.program.op_counts();
            let a = sample_schedule(&scenario.name, &counts);
            let b = sample_schedule(&scenario.name, &counts);
            assert_eq!(a, b, "{}: sampling must be pure", scenario.name);
            assert_eq!(a.len(), counts.iter().sum::<usize>(), "maximal schedule");
        }
    }

    #[test]
    fn seeded_trace_bugs_are_caught_and_key_reuse_is_predict_only() {
        let rows = seeded_trace_rows();
        assert_eq!(rows.len(), SeededBug::ALL.len());
        for r in &rows {
            assert!(
                r.passed(),
                "{}: manifest {} predict {} replay {}",
                r.bug.label(),
                r.manifest_caught,
                r.predict_caught,
                r.witness_replayed
            );
        }
        let key_reuse = rows.iter().find(|r| r.bug == SeededBug::KeyReuseAfterEvict).expect("row");
        assert!(key_reuse.predict_caught && !key_reuse.manifest_caught);
    }

    #[test]
    fn detach_settle_bug_is_predicted_with_a_certified_witness() {
        // w1's 3-op programs are too small for the sampled schedule to
        // expose the detach-settle window cross-thread; the full quick
        // configuration (w1 + w2) is what the campaign certifies.
        let cfg = PredictConfig::for_scale(Scale::Quick);
        let rows = seeded_world_rows(&cfg, 2, &[ProtocolBug::SkipPtlbInvalidateOnDetach]);
        let row = &rows[0];
        assert!(row.passed(), "{row:?}");
        assert_eq!(row.effect, TraceEffect::Predicted);
        assert_eq!(row.class, Some(ViolationClass::StaleWindowAccess));
        assert!(!row.witness.is_empty());
        assert!(row.dpor_caught);

        // The printed repro id replays through the public path.
        let (world_name, rest) = row.scenario.split_once('@').unwrap();
        let program: usize = rest.parse().unwrap();
        let scenario = {
            let world = cfg.world(world_name).unwrap();
            let programs = enumerate::enumerate_canonical(&world.bounds);
            to_scenario(world, program, &programs[program])
        };
        let counts = scenario.program.op_counts();
        let sched = sample_schedule(&scenario.name, &counts);
        let run = schedule_trace(&scenario, Some(ProtocolBug::SkipPtlbInvalidateOnDetach), &sched)
            .unwrap();
        let prediction = predict(&run.trace);
        let finding = prediction
            .findings
            .iter()
            .find(|f| f.class == ViolationClass::StaleWindowAccess)
            .expect("finding");
        let report = replay_repro(
            &cfg,
            world_name,
            program,
            finding.moved.0,
            finding.anchor.0,
            Some(ProtocolBug::SkipPtlbInvalidateOnDetach),
        )
        .unwrap();
        assert!(report.errors().any(|d| d.class == ViolationClass::StaleWindowAccess
            && d.position == finding.witness_position));
    }

    #[test]
    fn quick_scale_rows_stay_prediction_free() {
        let rows = run_scale(Scale::Quick, 2);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.passed(), "{}: {} findings", r.source, r.findings);
            assert!(r.events > 0, "{}: empty trace", r.source);
        }
        // Paper scale covers the full 8-scheme campaign trace set plus
        // every soak shard.
        assert_eq!(scale_sources(Scale::Paper).len(), 20);
    }
}
