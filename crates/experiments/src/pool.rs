//! Deterministic worker pool re-export.
//!
//! [`parallel_map`] lives in `pmo-simarch` (the workspace's lowest common
//! dependency) so that crates below the experiment layer — the model
//! checker's campaign driver in particular — can fan work without
//! depending on this crate. The campaign code here keeps using it under
//! its historical `crate::pool` path.

pub use pmo_simarch::pool::parallel_map;
