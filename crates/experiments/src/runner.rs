//! Shared replay drivers: run one workload under many schemes, windowing
//! the measurement to the operation phase (the paper measures steady
//! state, not population).
//!
//! Every run is statically audited by default: the trace is teed into a
//! [`pmo_analyzer`] permission-window pass alongside the simulator, and
//! an audit error is a harness bug (panic). Pass `--no-audit` on the
//! command line (or call [`run_windowed_unaudited`]) to opt out.

use pmo_analyzer::{Analyzer, PermWindowPass};
use pmo_protect::SchemeKind;
use pmo_sim::{Replay, ReplayReport};
use pmo_simarch::SimConfig;
use pmo_trace::{TraceEvent, TraceSink};
use pmo_workloads::{
    MicroBench, MicroConfig, MicroWorkload, WhisperBench, WhisperConfig, WhisperWorkload, Workload,
};

/// Tees each workload event into the replay, then forwards the event plus
/// any protocol events the scheme emitted while handling it (key-eviction
/// shootdowns) to the analyzer — so the audit sees the same shootdown
/// signal on the eviction path as on `pool_close`/attach-rollback.
struct AuditedSink<'a> {
    replay: &'a mut Replay,
    analyzer: &'a mut Analyzer,
}

impl TraceSink for AuditedSink<'_> {
    fn event(&mut self, ev: TraceEvent) {
        self.replay.event(ev);
        self.analyzer.event(ev);
        for protocol_ev in self.replay.drain_protocol_events() {
            self.analyzer.event(protocol_ev);
        }
    }
}

/// Whether `--no-audit` was passed to the running binary.
fn audit_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| !std::env::args().any(|a| a == "--no-audit"))
}

/// Runs `workload` under `kind`, returning the report windowed to the
/// measured (post-setup) phase.
///
/// # Panics
///
/// Panics if the workload raises any protection fault or fails the
/// permission-window audit: benchmark traces are permission-clean by
/// construction, so either is a harness bug.
pub fn run_windowed(
    workload: &mut dyn Workload,
    kind: SchemeKind,
    config: &SimConfig,
) -> ReplayReport {
    if !audit_enabled() {
        return run_windowed_unaudited(workload, kind, config);
    }
    let name = workload.name();
    let mut replay = Replay::new(kind, config);
    // The multi-PMO baseline policy covers every workload family: no
    // window cap, held read grants allowed, unguarded accesses flagged.
    let mut analyzer = Analyzer::new(&name).with_pass(PermWindowPass::baseline());
    workload.setup(&mut AuditedSink { replay: &mut replay, analyzer: &mut analyzer });
    let snapshot = replay.snapshot();
    workload.run(&mut AuditedSink { replay: &mut replay, analyzer: &mut analyzer });
    let audit = analyzer.finish();
    assert!(audit.passed(), "[{kind}] {name}: permission audit failed:\n{audit}");
    let report = replay.finish().since(&snapshot);
    assert!(
        !report.faulted(),
        "[{kind}] {name}: {} protection faults, first: {:?}",
        report.scheme_stats.faults,
        report.faults.first()
    );
    report
}

/// [`run_windowed`] without the permission-window audit (what
/// `--no-audit` selects).
///
/// # Panics
///
/// Panics if the workload raises any protection fault.
pub fn run_windowed_unaudited(
    workload: &mut dyn Workload,
    kind: SchemeKind,
    config: &SimConfig,
) -> ReplayReport {
    let mut replay = Replay::new(kind, config);
    workload.setup(&mut replay);
    let snapshot = replay.snapshot();
    workload.run(&mut replay);
    let report = replay.finish().since(&snapshot);
    assert!(
        !report.faulted(),
        "[{kind}] {}: {} protection faults, first: {:?}",
        workload.name(),
        report.scheme_stats.faults,
        report.faults.first()
    );
    report
}

/// Runs a fresh instance of a microbenchmark under every scheme in
/// `kinds` (same seed → same trace, the paper's methodology).
pub fn run_micro(
    bench: MicroBench,
    config: &MicroConfig,
    kinds: &[SchemeKind],
    sim: &SimConfig,
) -> Vec<ReplayReport> {
    kinds
        .iter()
        .map(|&kind| {
            let mut workload = MicroWorkload::new(bench, config.clone());
            run_windowed(&mut workload, kind, sim)
        })
        .collect()
}

/// Runs a fresh instance of a WHISPER benchmark under every scheme.
pub fn run_whisper(
    bench: WhisperBench,
    config: &WhisperConfig,
    kinds: &[SchemeKind],
    sim: &SimConfig,
) -> Vec<ReplayReport> {
    kinds
        .iter()
        .map(|&kind| {
            let mut workload = WhisperWorkload::new(bench, config.clone());
            run_windowed(&mut workload, kind, sim)
        })
        .collect()
}

/// Finds the report for `kind` in a `run_*` result.
///
/// # Panics
///
/// Panics if the scheme was not part of the run.
#[must_use]
pub fn report_for(reports: &[ReplayReport], kind: SchemeKind) -> &ReplayReport {
    reports.iter().find(|r| r.scheme == kind).unwrap_or_else(|| panic!("no report for {kind}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_micro() -> MicroConfig {
        MicroConfig {
            pmos: 20,
            active_pmos: 20,
            pmo_bytes: 1 << 20,
            initial_nodes: 8,
            ops: 60,
            insert_pct: 90,
            value_bytes: 64,
            seed: 11,
        }
    }

    #[test]
    fn micro_runs_clean_under_all_schemes() {
        let sim = SimConfig::isca2020();
        let reports = run_micro(MicroBench::Avl, &tiny_micro(), &SchemeKind::ALL, &sim);
        assert_eq!(reports.len(), 6);
        for r in &reports {
            assert_eq!(r.ops, 60, "{}: windowed ops", r.scheme);
            assert!(r.cycles > 0);
        }
        // Identical traces: instruction-identical baseline events.
        let base = report_for(&reports, SchemeKind::Unprotected);
        let lb = report_for(&reports, SchemeKind::Lowerbound);
        assert_eq!(base.counts.loads, lb.counts.loads);
        assert_eq!(base.counts.stores, lb.counts.stores);
    }

    #[test]
    fn whisper_runs_clean() {
        let sim = SimConfig::isca2020();
        let cfg =
            WhisperConfig { txns: 50, records: 128, pmo_bytes: 8 << 20, ..WhisperConfig::quick() };
        let reports = run_whisper(
            WhisperBench::Hashmap,
            &cfg,
            &[SchemeKind::Unprotected, SchemeKind::DefaultMpk, SchemeKind::DomainVirt],
            &sim,
        );
        let base = report_for(&reports, SchemeKind::Unprotected);
        let mpk = report_for(&reports, SchemeKind::DefaultMpk);
        assert!(mpk.cycles > base.cycles, "MPK adds WRPKRU cost");
    }

    #[test]
    fn windowing_excludes_population() {
        let sim = SimConfig::isca2020();
        let cfg = tiny_micro();
        let report = {
            let mut w = MicroWorkload::new(MicroBench::LinkedList, cfg.clone());
            run_windowed(&mut w, SchemeKind::Lowerbound, &sim)
        };
        // 2 switches per measured op only (population switches windowed out).
        assert_eq!(report.counts.set_perms, 2 * 60);
        assert_eq!(report.ops, 60);
    }
}
