//! Shared replay drivers: run one workload under many schemes, windowing
//! the measurement to the operation phase (the paper measures steady
//! state, not population).
//!
//! Every run is statically audited by default: the trace is teed into a
//! [`pmo_analyzer`] permission-window pass alongside the simulator, and
//! an audit error is a harness bug (panic). Binaries parse `--no-audit`
//! and `--jobs N` into [`RunOptions`] at the CLI layer and thread the
//! options down explicitly — the library never sniffs `argv`.

use pmo_analyzer::{Analyzer, InspectPass, PermWindowPass};
use pmo_protect::SchemeKind;
use pmo_sim::{Replay, ReplayReport};
use pmo_simarch::SimConfig;
use pmo_trace::{block, RecordedTrace, TraceEvent, TraceSink};
use pmo_workloads::{
    MicroBench, MicroConfig, MicroWorkload, WhisperBench, WhisperConfig, WhisperWorkload, Workload,
};

use crate::pool::parallel_map;

/// How the shared drivers run: whether the permission audit tees along,
/// and how many worker threads fan independent cells out.
///
/// Results never depend on `jobs` — campaign cells are independent and
/// merged in canonical order, so any `jobs` value produces byte-identical
/// reports to `jobs = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOptions {
    /// Tee the trace into the permission-window audit (on by default;
    /// `--no-audit` clears it).
    pub audit: bool,
    /// Worker threads for independent campaign cells (`--jobs N`;
    /// 1 = fully serial).
    pub jobs: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { audit: true, jobs: 1 }
    }
}

impl RunOptions {
    /// Parses `--no-audit` and `--jobs N` from the process arguments
    /// (CLI-layer helper for the experiment binaries).
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        RunOptions { audit: !args.iter().any(|a| a == "--no-audit"), jobs }
    }

    /// This configuration with parallelism stripped — for nested drivers
    /// that already run inside a worker thread.
    #[must_use]
    pub fn serial(self) -> Self {
        RunOptions { jobs: 1, ..self }
    }
}

/// Tees each workload event into the replay, then forwards the event plus
/// any protocol events the scheme emitted while handling it (key-eviction
/// shootdowns) to the analyzer — so the audit sees the same shootdown
/// signal on the eviction path as on `pool_close`/attach-rollback.
struct AuditedSink<'a> {
    replay: &'a mut Replay,
    analyzer: &'a mut Analyzer,
}

impl TraceSink for AuditedSink<'_> {
    fn event(&mut self, ev: TraceEvent) {
        self.replay.event(ev);
        self.analyzer.event(ev);
        for protocol_ev in self.replay.drain_protocol_events() {
            self.analyzer.event(protocol_ev);
        }
    }
}

/// Runs `workload` under `kind`, returning the report windowed to the
/// measured (post-setup) phase.
///
/// # Panics
///
/// Panics if the workload raises any protection fault or fails the
/// permission-window audit: benchmark traces are permission-clean by
/// construction, so either is a harness bug.
pub fn run_windowed(
    workload: &mut dyn Workload,
    kind: SchemeKind,
    config: &SimConfig,
    opts: RunOptions,
) -> ReplayReport {
    if !opts.audit {
        return run_windowed_unaudited(workload, kind, config);
    }
    let name = workload.name();
    let mut replay = Replay::new(kind, config);
    // The multi-PMO baseline policy covers every workload family: no
    // window cap, held read grants allowed, unguarded accesses flagged.
    // Binary inspection of the trusted-monitor image rides along (ERIM's
    // static half): a key-update sequence outside the registered call
    // gate fails the audit like any other error.
    let mut analyzer = Analyzer::new(&name)
        .with_pass(PermWindowPass::baseline())
        .with_pass(InspectPass::standard());
    workload.setup(&mut AuditedSink { replay: &mut replay, analyzer: &mut analyzer });
    let snapshot = replay.snapshot();
    workload.run(&mut AuditedSink { replay: &mut replay, analyzer: &mut analyzer });
    let audit = analyzer.finish();
    assert!(audit.passed(), "[{kind}] {name}: permission audit failed:\n{audit}");
    assert!(
        audit.complete(),
        "[{kind}] {name}: permission audit truncated ({} finding(s) dropped)",
        audit.dropped()
    );
    let report = replay.finish().since(&snapshot);
    assert!(
        !report.faulted(),
        "[{kind}] {name}: {} protection faults ({} dropped from the log), first: {:?}",
        report.scheme_stats.faults,
        report.faults_dropped,
        report.faults.first()
    );
    report
}

/// [`run_windowed`] without the permission-window audit (what
/// `--no-audit` selects). The trace is recorded, block-encoded, and
/// replayed through the batched struct-of-arrays engine — the audited
/// path must stream (the analyzer tees protocol events per event), so
/// this is the campaign drivers' fast lane; the two paths are asserted
/// report-identical by the runner tests.
///
/// # Panics
///
/// Panics if the workload raises any protection fault.
pub fn run_windowed_unaudited(
    workload: &mut dyn Workload,
    kind: SchemeKind,
    config: &SimConfig,
) -> ReplayReport {
    let mut setup = RecordedTrace::new();
    workload.setup(&mut setup);
    let mut run = RecordedTrace::new();
    workload.run(&mut run);
    let mut replay = Replay::new(kind, config);
    replay.replay_blocks(&block::block_trace_of(&setup));
    let snapshot = replay.snapshot();
    replay.replay_blocks(&block::block_trace_of(&run));
    let report = replay.finish().since(&snapshot);
    assert!(
        !report.faulted(),
        "[{kind}] {}: {} protection faults ({} dropped from the log), first: {:?}",
        workload.name(),
        report.scheme_stats.faults,
        report.faults_dropped,
        report.faults.first()
    );
    report
}

/// Runs a fresh instance of a microbenchmark under every scheme in
/// `kinds` (same seed → same trace, the paper's methodology). Schemes
/// are independent cells, fanned across `opts.jobs` workers; reports
/// come back in `kinds` order regardless.
pub fn run_micro(
    bench: MicroBench,
    config: &MicroConfig,
    kinds: &[SchemeKind],
    sim: &SimConfig,
    opts: RunOptions,
) -> Vec<ReplayReport> {
    parallel_map(opts.jobs, kinds.to_vec(), |kind| {
        let mut workload = MicroWorkload::new(bench, config.clone());
        run_windowed(&mut workload, kind, sim, opts)
    })
}

/// Runs a fresh instance of a WHISPER benchmark under every scheme, one
/// independent cell per scheme across `opts.jobs` workers.
pub fn run_whisper(
    bench: WhisperBench,
    config: &WhisperConfig,
    kinds: &[SchemeKind],
    sim: &SimConfig,
    opts: RunOptions,
) -> Vec<ReplayReport> {
    parallel_map(opts.jobs, kinds.to_vec(), |kind| {
        let mut workload = WhisperWorkload::new(bench, config.clone());
        run_windowed(&mut workload, kind, sim, opts)
    })
}

/// Finds the report for `kind` in a `run_*` result.
///
/// # Panics
///
/// Panics if the scheme was not part of the run.
#[must_use]
pub fn report_for(reports: &[ReplayReport], kind: SchemeKind) -> &ReplayReport {
    reports.iter().find(|r| r.scheme == kind).unwrap_or_else(|| panic!("no report for {kind}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_micro() -> MicroConfig {
        MicroConfig {
            pmos: 20,
            active_pmos: 20,
            pmo_bytes: 1 << 20,
            initial_nodes: 8,
            ops: 60,
            insert_pct: 90,
            value_bytes: 64,
            seed: 11,
        }
    }

    #[test]
    fn micro_runs_clean_under_all_schemes() {
        let sim = SimConfig::isca2020();
        let reports = run_micro(
            MicroBench::Avl,
            &tiny_micro(),
            &SchemeKind::ALL,
            &sim,
            RunOptions::default(),
        );
        assert_eq!(reports.len(), SchemeKind::ALL.len());
        for r in &reports {
            assert_eq!(r.ops, 60, "{}: windowed ops", r.scheme);
            assert!(r.cycles > 0);
        }
        // Identical traces: instruction-identical baseline events.
        let base = report_for(&reports, SchemeKind::Unprotected);
        let lb = report_for(&reports, SchemeKind::Lowerbound);
        assert_eq!(base.counts.loads, lb.counts.loads);
        assert_eq!(base.counts.stores, lb.counts.stores);
    }

    #[test]
    fn parallel_jobs_match_serial_byte_for_byte() {
        // The determinism contract of the campaign executor: reports from
        // a 4-worker fan-out equal the serial run field-for-field, and
        // their serialized forms are byte-identical.
        let sim = SimConfig::isca2020();
        let cfg = tiny_micro();
        let serial =
            run_micro(MicroBench::Avl, &cfg, &SchemeKind::ALL, &sim, RunOptions::default());
        let parallel = run_micro(
            MicroBench::Avl,
            &cfg,
            &SchemeKind::ALL,
            &sim,
            RunOptions { jobs: 4, ..RunOptions::default() },
        );
        assert_eq!(serial, parallel);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.to_json(), p.to_json());
            assert_eq!(format!("{s}"), format!("{p}"));
        }
    }

    #[test]
    fn whisper_runs_clean() {
        let sim = SimConfig::isca2020();
        let cfg =
            WhisperConfig { txns: 50, records: 128, pmo_bytes: 8 << 20, ..WhisperConfig::quick() };
        let reports = run_whisper(
            WhisperBench::Hashmap,
            &cfg,
            &[SchemeKind::Unprotected, SchemeKind::DefaultMpk, SchemeKind::DomainVirt],
            &sim,
            RunOptions { jobs: 2, ..RunOptions::default() },
        );
        let base = report_for(&reports, SchemeKind::Unprotected);
        let mpk = report_for(&reports, SchemeKind::DefaultMpk);
        assert!(mpk.cycles > base.cycles, "MPK adds WRPKRU cost");
    }

    #[test]
    fn windowing_excludes_population() {
        let sim = SimConfig::isca2020();
        let cfg = tiny_micro();
        let report = {
            let mut w = MicroWorkload::new(MicroBench::LinkedList, cfg.clone());
            run_windowed(&mut w, SchemeKind::Lowerbound, &sim, RunOptions::default())
        };
        // 2 switches per measured op only (population switches windowed out).
        assert_eq!(report.counts.set_perms, 2 * 60);
        assert_eq!(report.ops, 60);
    }

    #[test]
    fn unaudited_option_matches_unaudited_fn() {
        let sim = SimConfig::isca2020();
        let cfg = tiny_micro();
        let via_opts = {
            let mut w = MicroWorkload::new(MicroBench::Avl, cfg.clone());
            run_windowed(
                &mut w,
                SchemeKind::DomainVirt,
                &sim,
                RunOptions { audit: false, ..RunOptions::default() },
            )
        };
        let direct = {
            let mut w = MicroWorkload::new(MicroBench::Avl, cfg.clone());
            run_windowed_unaudited(&mut w, SchemeKind::DomainVirt, &sim)
        };
        assert_eq!(via_opts, direct);
    }
}
