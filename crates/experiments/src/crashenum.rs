//! Exhaustive crash-image enumeration campaign with recovery
//! verification.
//!
//! Where `faultsim` *samples* crash points, this campaign *enumerates*
//! crash states: each workload records a trace of transactional inserts
//! against a fresh pool (the trace contains the pool's birth, so every
//! byte of the pool is reconstructable), the analyzer's
//! [`pmo_analyzer::enumerate`] computes every memory image the
//! persistency model allows a power failure to leave behind per
//! fence-delimited window, and each distinct image is materialized into
//! a real pool ([`PmRuntime::materialize_pool`]), re-opened through
//! normal recovery, and checked with the workload's
//! [`CheckedStructure`] invariant verifier.
//!
//! Acceptable outcomes per image are *recovered clean* or *typed
//! quarantine* (graceful refusal — e.g. images from the pool-creation
//! window whose header is half-formatted). Everything else — an unclean
//! invariant report, an unexpected error, a panic — is a violation with
//! a deterministic repro id: `(workload, window, rank)` names the exact
//! image, reproducible with the `crashenum` binary's `--window/--rank`
//! flags.
//!
//! Three self-validation plants ([`run_seeded`]) prove the detector can
//! see each PR-1 fault class exhaustively, using a minimal
//! checksummed-cell "ledger" whose invariant (every cell's stored
//! checksum matches its 48-byte value) breaks under any partial
//! persist:
//!
//! * **torn-write** — a multi-line in-place update performed without a
//!   transaction: some enumerated image holds the new value with the
//!   old checksum;
//! * **dropped-flush** — [`SeededBug::DroppedFlush`] removes the log
//!   flush guarding the commit: an image with the commit flag set but a
//!   torn log replays a strict prefix of the transaction;
//! * **reordered-persist** — [`SeededBug::ReorderedFence`] moves the
//!   log fence after the commit point, licensing the same torn-log
//!   images.
//!
//! Finally, [`membership_check`] cross-validates the enumerator against
//! the sampling campaign: pools crashed by real injected
//! [`FaultKind::PowerFailure`] faults must hash into the enumerated
//! image set of their trace (power-failure images are line-atomic, so
//! they are always members; torn-write/media images are the documented
//! soundness bound and are excluded).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use pmo_analyzer::{enumerate, image_hash, seed_bug, EnumConfig, EnumResult, SeededBug};
use pmo_runtime::{AttachIntent, FaultPlan, Mode, PmRuntime, RuntimeError};
use pmo_trace::{FaultKind, NullSink, Perm, PmoId, RecordedTrace, TraceEvent, TraceSink};
use pmo_workloads::structs::{
    AvlTree, BplusTree, CheckedStructure, LinkedList, PersistentHashmap, RbTree,
};

use crate::faultsim::FaultWorkload;
use crate::pool::parallel_map;
use crate::Scale;

/// Pool size for every recorded workload.
const POOL_BYTES: u64 = 8 << 20;

/// Pool name shared by the recording and every materialized image.
const POOL_NAME: &str = "crashenum";

/// SplitMix64-style finalizer for key streams and sample spacing.
fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Campaign shape.
#[derive(Clone, Copy, Debug)]
pub struct CrashenumConfig {
    /// Root seed; key streams and membership crash points derive from it.
    pub campaign_seed: u64,
    /// Transactional inserts recorded (and enumerated) per workload.
    pub inserts: u64,
    /// Value payload size in bytes.
    pub value_bytes: u32,
    /// Cap on expanded image ranks per (window, pool); excess is counted,
    /// never silently dropped.
    pub max_images_per_window: u64,
    /// Cap on emitted windows per trace.
    pub max_windows: usize,
    /// Power-failure crash points sampled per workload by the
    /// faultsim-membership cross-check.
    pub membership_samples: u64,
}

impl CrashenumConfig {
    /// The campaign shape for a [`Scale`].
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => CrashenumConfig {
                campaign_seed: 0x1505,
                inserts: 5,
                value_bytes: 32,
                max_images_per_window: 4096,
                max_windows: 4096,
                membership_samples: 6,
            },
            Scale::Paper => CrashenumConfig {
                campaign_seed: 0x1505,
                inserts: 12,
                value_bytes: 64,
                max_images_per_window: 16384,
                max_windows: 16384,
                membership_samples: 16,
            },
        }
    }

    /// The `op`-th key of the deterministic key stream for `workload`.
    #[must_use]
    pub fn key_at(&self, workload: FaultWorkload, op: u64) -> u64 {
        mix(self.campaign_seed ^ (workload_tag(workload) << 56), op + 1)
    }

    fn enum_config(&self) -> EnumConfig {
        EnumConfig {
            max_images_per_window: self.max_images_per_window,
            max_windows: self.max_windows,
        }
    }
}

/// Seed lane separating each workload's derived randomness (private to
/// `faultsim`, mirrored here so the two campaigns stay independent).
fn workload_tag(w: FaultWorkload) -> u64 {
    match w {
        FaultWorkload::Avl => 0x11,
        FaultWorkload::Rbt => 0x12,
        FaultWorkload::Bplus => 0x13,
        FaultWorkload::List => 0x14,
        FaultWorkload::Hashmap => 0x15,
    }
}

/// A recorded workload: its full trace (from pool birth) and the keys
/// whose transactions committed, in insert order.
pub struct RecordedWorkload {
    /// The workload.
    pub workload: FaultWorkload,
    /// Pool id assigned during recording (constant: fresh runtime).
    pub pool: PmoId,
    /// Every trace event, pool creation included.
    pub events: Vec<TraceEvent>,
    /// Committed keys in insert order.
    pub keys: Vec<u64>,
}

fn record_structure<S: CheckedStructure>(
    cfg: &CrashenumConfig,
    workload: FaultWorkload,
) -> RecordedWorkload {
    let mut trace = RecordedTrace::new();
    let mut rt = PmRuntime::new();
    let pool = rt
        .pool_create(POOL_NAME, POOL_BYTES, Mode::private(), &mut trace)
        .expect("crashenum: pool_create");
    // One write window around the recording (the harness plays the
    // application's permission protocol).
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
    let mut s = S::create(&mut rt, pool, cfg.value_bytes, &mut trace).expect("crashenum: create");
    let mut keys = Vec::new();
    for op in 0..cfg.inserts {
        let key = cfg.key_at(workload, op);
        rt.txn_begin(pool).expect("crashenum: txn_begin");
        s.insert(&mut rt, key, &mut trace).expect("crashenum: insert");
        rt.txn_commit(&mut trace).expect("crashenum: txn_commit");
        keys.push(key);
    }
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
    RecordedWorkload { workload, pool, events: trace.into_events(), keys }
}

/// Records one workload's trace (public for repro runs).
#[must_use]
pub fn record_workload(cfg: &CrashenumConfig, workload: FaultWorkload) -> RecordedWorkload {
    match workload {
        FaultWorkload::Avl => record_structure::<AvlTree>(cfg, workload),
        FaultWorkload::Rbt => record_structure::<RbTree>(cfg, workload),
        FaultWorkload::Bplus => record_structure::<BplusTree>(cfg, workload),
        FaultWorkload::List => record_structure::<LinkedList>(cfg, workload),
        FaultWorkload::Hashmap => record_structure::<PersistentHashmap>(cfg, workload),
    }
}

/// How recovering one materialized image went.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ImageOutcome {
    /// Recovery succeeded and every invariant holds.
    Recovered,
    /// Attach refused with a typed quarantine (graceful: half-formatted
    /// header images from early windows land here).
    Quarantined,
    /// An invariant was violated, an unexpected error escaped, or the
    /// recovery path panicked.
    Violation(String),
}

fn check_structure_image<S: CheckedStructure>(
    cfg: &CrashenumConfig,
    lines: &[(u64, [u8; 64])],
    keys: &[u64],
) -> ImageOutcome {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    if let Err(e) = rt.materialize_pool(POOL_NAME, POOL_BYTES, Mode::private(), lines) {
        return ImageOutcome::Violation(format!("materialize failed: {e}"));
    }
    let pool = match rt.pool_open(POOL_NAME, AttachIntent::ReadWrite, &mut sink) {
        Ok(id) => id,
        Err(RuntimeError::PoolQuarantined { reason, .. }) => {
            let _ = reason;
            return ImageOutcome::Quarantined;
        }
        Err(other) => return ImageOutcome::Violation(format!("unexpected attach error: {other}")),
    };
    let s = match S::create(&mut rt, pool, cfg.value_bytes, &mut sink) {
        Ok(s) => s,
        Err(other) => return ImageOutcome::Violation(format!("unexpected reopen error: {other}")),
    };
    // No key is *required*: depending on the window, any prefix of the
    // insert stream may have reached durability. Every key is *allowed*:
    // anything else found (phantoms, duplicates) or any structural
    // damage is a violation.
    match s.verify(&mut rt, &[], keys, &mut sink) {
        Ok(report) if report.is_clean() => ImageOutcome::Recovered,
        Ok(report) => ImageOutcome::Violation(report.to_string()),
        Err(other) => ImageOutcome::Violation(format!("unexpected verify error: {other}")),
    }
}

fn check_image(
    cfg: &CrashenumConfig,
    workload: FaultWorkload,
    lines: &[(u64, [u8; 64])],
    keys: &[u64],
) -> ImageOutcome {
    let body = || match workload {
        FaultWorkload::Avl => check_structure_image::<AvlTree>(cfg, lines, keys),
        FaultWorkload::Rbt => check_structure_image::<RbTree>(cfg, lines, keys),
        FaultWorkload::Bplus => check_structure_image::<BplusTree>(cfg, lines, keys),
        FaultWorkload::List => check_structure_image::<LinkedList>(cfg, lines, keys),
        FaultWorkload::Hashmap => check_structure_image::<PersistentHashmap>(cfg, lines, keys),
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            ImageOutcome::Violation(format!("recovery panicked: {msg}"))
        }
    }
}

/// Per-workload enumeration + verification tallies.
#[derive(Clone, Debug)]
pub struct WorkloadRow {
    /// Workload enumerated.
    pub workload: FaultWorkload,
    /// Fence-delimited windows in the trace.
    pub windows: u64,
    /// Distinct images enumerated (summed over windows).
    pub images: u64,
    /// Image ranks beyond the per-window cap (0 = exhaustive).
    pub images_dropped: u64,
    /// Distinct images actually verified (first occurrence per hash).
    pub unique_images: u64,
    /// Unique images that recovered with every invariant intact.
    pub recovered: u64,
    /// Unique images gracefully quarantined.
    pub quarantined: u64,
    /// Unique images that violated an invariant (bugs).
    pub violations: u64,
}

/// One violating image with its deterministic repro id.
#[derive(Clone, Debug)]
pub struct ImageFailure {
    /// Workload whose trace produced the image.
    pub workload: FaultWorkload,
    /// Fence-delimited window ordinal.
    pub window: u64,
    /// Mixed-radix rank within the window (repro id).
    pub rank: u64,
    /// Canonical image hash.
    pub hash: u64,
    /// Event index of the window's closing fence.
    pub end_pos: u64,
    /// What the verifier saw.
    pub detail: String,
}

/// One faultsim-membership cross-check row.
#[derive(Clone, Debug)]
pub struct MembershipRow {
    /// Workload crashed by sampled power failures.
    pub workload: FaultWorkload,
    /// Crash points sampled.
    pub samples: u64,
    /// Samples whose post-crash pool image hashed into the enumerated set.
    pub members: u64,
    /// Samples skipped because enumeration was capped (set incomplete).
    pub capped: u64,
    /// Samples whose image was missing from a complete enumerated set
    /// (an enumerator soundness bug).
    pub misses: u64,
}

/// One seeded-plant validation row.
#[derive(Clone, Debug)]
pub struct SeededRow {
    /// Plant label (`control`, `torn-write`, `dropped-flush`,
    /// `reordered-persist`).
    pub plant: &'static str,
    /// Whether this row is the unmutated control (expected *zero*
    /// violations, proving the detector does not cry wolf).
    pub control: bool,
    /// Windows enumerated in the (mutated) ledger trace.
    pub windows: u64,
    /// Distinct images enumerated.
    pub images: u64,
    /// Images that recovered into an invariant-violating state.
    pub violations: u64,
    /// First violating image's `(window, rank)` repro id, if any.
    pub first_repro: Option<(u64, u64)>,
}

impl SeededRow {
    /// A plant passes when at least one enumerated image violates (the
    /// bug was caught); the control passes when *none* does.
    #[must_use]
    pub fn passed(&self) -> bool {
        if self.control {
            self.violations == 0
        } else {
            self.violations > 0
        }
    }
}

/// Full campaign results.
#[derive(Clone, Debug, Default)]
pub struct CrashenumReport {
    /// Campaign seed everything derived from.
    pub campaign_seed: u64,
    /// Per-workload tallies.
    pub rows: Vec<WorkloadRow>,
    /// Every violating image with repro parameters.
    pub failures: Vec<ImageFailure>,
    /// Faultsim-membership cross-check rows.
    pub membership: Vec<MembershipRow>,
    /// Seeded-plant validation rows (empty unless `--seeded`).
    pub seeded: Vec<SeededRow>,
    /// Host wall-clock nanoseconds; left 0 by [`run_campaign`]
    /// (deterministic output), stamped by the CLI.
    pub wall_nanos: u64,
}

impl CrashenumReport {
    /// Clean = zero violating images, zero membership misses, and every
    /// seeded row (when run) passing — plants caught, control silent.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
            && self.membership.iter().all(|m| m.misses == 0)
            && self.seeded.iter().all(SeededRow::passed)
    }

    /// Unique images verified across all workloads.
    #[must_use]
    pub fn total_unique_images(&self) -> u64 {
        self.rows.iter().map(|r| r.unique_images).sum()
    }

    /// Images verified per host wall-clock second (0.0 until
    /// `wall_nanos` is stamped).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.total_unique_images() as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Renders the report as a JSON object (for CI artifacts).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let _ = write!(
                rows,
                "{{\"workload\":{},\"windows\":{},\"images\":{},\"images_dropped\":{},\
                 \"unique_images\":{},\"recovered\":{},\"quarantined\":{},\"violations\":{}}}",
                pmo_analyzer::json_string(r.workload.label()),
                r.windows,
                r.images,
                r.images_dropped,
                r.unique_images,
                r.recovered,
                r.quarantined,
                r.violations,
            );
        }
        let mut failures = String::new();
        for (i, fail) in self.failures.iter().enumerate() {
            if i > 0 {
                failures.push(',');
            }
            let _ = write!(
                failures,
                "{{\"workload\":{},\"window\":{},\"rank\":{},\"hash\":{},\"end_pos\":{},\
                 \"detail\":{}}}",
                pmo_analyzer::json_string(fail.workload.label()),
                fail.window,
                fail.rank,
                fail.hash,
                fail.end_pos,
                pmo_analyzer::json_string(&fail.detail),
            );
        }
        let mut membership = String::new();
        for (i, m) in self.membership.iter().enumerate() {
            if i > 0 {
                membership.push(',');
            }
            let _ = write!(
                membership,
                "{{\"workload\":{},\"samples\":{},\"members\":{},\"capped\":{},\"misses\":{}}}",
                pmo_analyzer::json_string(m.workload.label()),
                m.samples,
                m.members,
                m.capped,
                m.misses,
            );
        }
        let mut seeded = String::new();
        for (i, s) in self.seeded.iter().enumerate() {
            if i > 0 {
                seeded.push(',');
            }
            let _ = write!(
                seeded,
                "{{\"plant\":{},\"control\":{},\"windows\":{},\"images\":{},\"violations\":{},\
                 \"passed\":{}}}",
                pmo_analyzer::json_string(s.plant),
                s.control,
                s.windows,
                s.images,
                s.violations,
                s.passed(),
            );
        }
        format!(
            "{{\"campaign_seed\":{},\"clean\":{},\"unique_images\":{},\"wall_nanos\":{},\
             \"events_per_sec\":{:.1},\"rows\":[{}],\"failures\":[{}],\"membership\":[{}],\
             \"seeded\":[{}]}}",
            self.campaign_seed,
            self.is_clean(),
            self.total_unique_images(),
            self.wall_nanos,
            self.events_per_sec(),
            rows,
            failures,
            membership,
            seeded,
        )
    }
}

impl fmt::Display for CrashenumReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash-image enumeration (campaign seed {:#x}, {} unique images verified)",
            self.campaign_seed,
            self.total_unique_images()
        )?;
        writeln!(
            f,
            "{:<9} {:>8} {:>8} {:>8} {:>7} {:>10} {:>12} {:>11}",
            "workload",
            "windows",
            "images",
            "unique",
            "dropped",
            "recovered",
            "quarantined",
            "violations"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>8} {:>8} {:>8} {:>7} {:>10} {:>12} {:>11}",
                r.workload.label(),
                r.windows,
                r.images,
                r.unique_images,
                r.images_dropped,
                r.recovered,
                r.quarantined,
                r.violations,
            )?;
        }
        for m in &self.membership {
            writeln!(
                f,
                "membership {:<9} {} power-failure samples: {} members, {} capped, {} MISSES",
                m.workload.label(),
                m.samples,
                m.members,
                m.capped,
                m.misses
            )?;
        }
        for s in &self.seeded {
            let status = match (s.control, s.passed()) {
                (true, true) => "clean",
                (true, false) => "NOISY",
                (false, true) => "caught",
                (false, false) => "MISSED",
            };
            let repro = s
                .first_repro
                .map(|(w, r)| format!(" (first repro: --window {w} --rank {r})"))
                .unwrap_or_default();
            writeln!(
                f,
                "seeded {:<17} {status}: {}/{} images violate across {} windows{repro}",
                s.plant, s.violations, s.images, s.windows
            )?;
        }
        for fail in &self.failures {
            writeln!(
                f,
                "FAIL {} — repro: --workload {} --window {} --rank {} (hash {:#018x}, fence at event {})",
                fail.detail,
                fail.workload.label(),
                fail.window,
                fail.rank,
                fail.hash,
                fail.end_pos,
            )?;
        }
        if self.is_clean() {
            writeln!(f, "campaign clean: every enumerated image recovers or quarantines")?;
        } else {
            writeln!(
                f,
                "campaign FAILED: {} violating image(s), {} membership miss(es)",
                self.failures.len(),
                self.membership.iter().map(|m| m.misses).sum::<u64>()
            )?;
        }
        Ok(())
    }
}

/// Enumerates one recorded workload (public for repro runs).
#[must_use]
pub fn enumerate_workload(cfg: &CrashenumConfig, recorded: &RecordedWorkload) -> EnumResult {
    enumerate(&recorded.events, cfg.enum_config())
}

/// Runs the enumeration campaign over every workload: record, enumerate,
/// then verify every distinct image (first occurrence per hash), fanned
/// out over `jobs` worker threads. Output is byte-identical at any job
/// count.
#[must_use]
pub fn run_campaign(cfg: &CrashenumConfig, jobs: usize) -> CrashenumReport {
    struct Prep {
        recorded: RecordedWorkload,
        result: EnumResult,
    }
    // Phase 1 (serial): record + enumerate. This is the cheap part.
    let preps: Vec<Prep> = FaultWorkload::ALL
        .into_iter()
        .map(|w| {
            let recorded = record_workload(cfg, w);
            let result = enumerate_workload(cfg, &recorded);
            Prep { recorded, result }
        })
        .collect();

    // Phase 2: build the unique-image work list (deterministic: windows
    // in trace order, ranks ascending, first occurrence per hash wins).
    let mut work: Vec<(usize, usize, u64)> = Vec::new();
    for (pi, prep) in preps.iter().enumerate() {
        let mut seen = std::collections::BTreeSet::new();
        for (wi, w) in prep.result.windows.iter().enumerate() {
            for img in &w.images {
                if seen.insert(img.hash) {
                    work.push((pi, wi, img.rank));
                }
            }
        }
    }

    // Phase 3 (parallel): materialize + recover + verify each image.
    let outcomes: Vec<ImageOutcome> = parallel_map(jobs, work.clone(), |(pi, wi, rank)| {
        let prep = &preps[pi];
        let w = &prep.result.windows[wi];
        let lines = w.image_lines(rank);
        check_image(cfg, prep.recorded.workload, &lines, &prep.recorded.keys)
    });

    // Phase 4 (serial): canonical tally.
    let mut report = CrashenumReport { campaign_seed: cfg.campaign_seed, ..Default::default() };
    let mut rows: Vec<WorkloadRow> = preps
        .iter()
        .map(|p| WorkloadRow {
            workload: p.recorded.workload,
            windows: p.result.total_windows,
            images: p.result.total_images(),
            images_dropped: p.result.total_dropped() + p.result.windows_dropped,
            unique_images: 0,
            recovered: 0,
            quarantined: 0,
            violations: 0,
        })
        .collect();
    for (&(pi, wi, rank), outcome) in work.iter().zip(&outcomes) {
        let row = &mut rows[pi];
        row.unique_images += 1;
        match outcome {
            ImageOutcome::Recovered => row.recovered += 1,
            ImageOutcome::Quarantined => row.quarantined += 1,
            ImageOutcome::Violation(detail) => {
                row.violations += 1;
                let w = &preps[pi].result.windows[wi];
                report.failures.push(ImageFailure {
                    workload: preps[pi].recorded.workload,
                    window: w.window,
                    rank,
                    hash: w.images.iter().find(|i| i.rank == rank).map_or(0, |i| i.hash),
                    end_pos: w.end_pos,
                    detail: detail.clone(),
                });
            }
        }
    }
    report.rows = rows;
    report.membership = FaultWorkload::ALL.into_iter().map(|w| membership_check(cfg, w)).collect();
    report
}

/// Re-verifies a single enumerated image of one workload — the repro
/// path behind the binary's `--workload/--window/--rank` flags. Returns
/// the image hash and the violation detail (`None` = acceptable).
#[must_use]
pub fn verify_one(
    cfg: &CrashenumConfig,
    workload: FaultWorkload,
    window: u64,
    rank: u64,
) -> Option<(u64, Option<String>)> {
    let recorded = record_workload(cfg, workload);
    let result = enumerate_workload(cfg, &recorded);
    let w = result.windows.iter().find(|w| w.window == window && w.pmo == recorded.pool)?;
    if rank >= w.product_size() {
        return None;
    }
    let lines = w.image_lines(rank);
    let hash = image_hash(&lines);
    match check_image(cfg, workload, &lines, &recorded.keys) {
        ImageOutcome::Violation(detail) => Some((hash, Some(detail))),
        _ => Some((hash, None)),
    }
}

/// Cross-validates the enumerator against the sampling campaign: crash
/// the workload with real injected power failures at sampled points and
/// require every post-crash pool image to hash into the enumerated set
/// of its own recorded trace.
#[must_use]
pub fn membership_check(cfg: &CrashenumConfig, workload: FaultWorkload) -> MembershipRow {
    // Armable store count (the storage-level counter the fault armer
    // compares against), from a dry run: total media stores minus the
    // pool-creation stores executed before the fault could be injected.
    let op_stores = measure_armable(cfg, workload);
    let mut row = MembershipRow { workload, samples: 0, members: 0, capped: 0, misses: 0 };
    for i in 0..cfg.membership_samples {
        // Deterministic spread over the whole store space (pool birth
        // included: early crash points exercise the creation windows).
        let after = if cfg.membership_samples <= 1 {
            op_stores / 2
        } else {
            (i * op_stores.saturating_sub(1)) / (cfg.membership_samples - 1)
        };
        let seed = mix(cfg.campaign_seed ^ workload_tag(workload), after);
        if let Some(verdict) = membership_sample(cfg, workload, after, seed) {
            row.samples += 1;
            match verdict {
                SampleVerdict::Member => row.members += 1,
                SampleVerdict::Capped => row.capped += 1,
                SampleVerdict::Miss => row.misses += 1,
            }
        }
    }
    row
}

enum SampleVerdict {
    Member,
    Capped,
    Miss,
}

/// Dry run: counts the media stores the armable phase (structure create
/// plus inserts) performs, so membership samples cover the whole space.
fn measure_armable(cfg: &CrashenumConfig, workload: FaultWorkload) -> u64 {
    fn body<S: CheckedStructure>(cfg: &CrashenumConfig, workload: FaultWorkload) -> u64 {
        let mut sink = NullSink::new();
        let mut rt = PmRuntime::new();
        let pool = rt
            .pool_create(POOL_NAME, POOL_BYTES, Mode::private(), &mut sink)
            .expect("measure: pool_create");
        let before = rt.storage(pool).expect("pool exists").stores();
        let mut s = S::create(&mut rt, pool, cfg.value_bytes, &mut sink).expect("measure: create");
        for op in 0..cfg.inserts {
            let key = cfg.key_at(workload, op);
            rt.txn_begin(pool).expect("measure: txn_begin");
            s.insert(&mut rt, key, &mut sink).expect("measure: insert");
            rt.txn_commit(&mut sink).expect("measure: txn_commit");
        }
        rt.storage(pool).expect("pool exists").stores() - before
    }
    match workload {
        FaultWorkload::Avl => body::<AvlTree>(cfg, workload),
        FaultWorkload::Rbt => body::<RbTree>(cfg, workload),
        FaultWorkload::Bplus => body::<BplusTree>(cfg, workload),
        FaultWorkload::List => body::<LinkedList>(cfg, workload),
        FaultWorkload::Hashmap => body::<PersistentHashmap>(cfg, workload),
    }
}

/// Runs one power-failure sample: record the workload with a fault armed
/// after `after` stores, crash at the failure, hash the surviving pool
/// image, and test membership in the trace's enumerated image set.
/// Returns `None` when the fault never fired.
fn membership_sample(
    cfg: &CrashenumConfig,
    workload: FaultWorkload,
    after: u64,
    seed: u64,
) -> Option<SampleVerdict> {
    fn body<S: CheckedStructure>(
        cfg: &CrashenumConfig,
        workload: FaultWorkload,
        after: u64,
        seed: u64,
    ) -> Option<SampleVerdict> {
        let mut trace = RecordedTrace::new();
        let mut rt = PmRuntime::new();
        let pool = rt
            .pool_create(POOL_NAME, POOL_BYTES, Mode::private(), &mut trace)
            .expect("membership: pool_create");
        rt.inject_fault(
            pool,
            FaultPlan { kind: FaultKind::PowerFailure, after_stores: after, seed },
        )
        .expect("membership: arm fault");
        trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
        let mut crashed = false;
        match S::create(&mut rt, pool, cfg.value_bytes, &mut trace) {
            Ok(mut s) => {
                for op in 0..cfg.inserts {
                    let key = cfg.key_at(workload, op);
                    let r = rt.txn_begin(pool).and_then(|()| {
                        s.insert(&mut rt, key, &mut trace)?;
                        rt.txn_commit(&mut trace)
                    });
                    match r {
                        Ok(()) => {}
                        Err(RuntimeError::PowerFailure) => {
                            crashed = true;
                            break;
                        }
                        Err(other) => panic!("membership: unexpected op error: {other}"),
                    }
                }
            }
            // A failed create is still a crash point: the fault fired
            // mid-setup.
            Err(RuntimeError::PowerFailure) => crashed = true,
            Err(other) => panic!("membership: unexpected setup error: {other}"),
        }
        if !crashed {
            return None;
        }
        rt.crash();
        let survivor = image_hash(&rt.storage(pool).expect("pool survives").line_image());
        let result = enumerate(&trace.into_events(), cfg.enum_config());
        if result.pool_hashes(pool).contains(&survivor) {
            Some(SampleVerdict::Member)
        } else if !result.exhaustive() {
            Some(SampleVerdict::Capped)
        } else {
            Some(SampleVerdict::Miss)
        }
    }
    match workload {
        FaultWorkload::Avl => body::<AvlTree>(cfg, workload, after, seed),
        FaultWorkload::Rbt => body::<RbTree>(cfg, workload, after, seed),
        FaultWorkload::Bplus => body::<BplusTree>(cfg, workload, after, seed),
        FaultWorkload::List => body::<LinkedList>(cfg, workload, after, seed),
        FaultWorkload::Hashmap => body::<PersistentHashmap>(cfg, workload, after, seed),
    }
}

// ---------------------------------------------------------------------
// Seeded-plant self-validation: the checksummed-cell ledger.
// ---------------------------------------------------------------------

/// Ledger geometry: `LEDGER_CELLS` cells of 128 bytes each; a cell holds
/// a 48-byte value (one cache line: the root payload starts 8 bytes into
/// a line, so bytes `[8, 56)` never straddle) and, 64 bytes later (hence
/// always a *different* line), an 8-byte checksum over the value.
const LEDGER_CELLS: u64 = 2;
const CELL_STRIDE: u32 = 128;
const CELL_VALUE_BYTES: usize = 48;
const LEDGER_POOL: &str = "crashenum-ledger";
const LEDGER_POOL_BYTES: u64 = 1 << 20;

fn cell_value(tag: u64) -> [u8; CELL_VALUE_BYTES] {
    let mut out = [0u8; CELL_VALUE_BYTES];
    for (i, chunk) in out.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&mix(tag, i as u64 + 1).to_le_bytes());
    }
    out
}

fn cell_checksum(value: &[u8; CELL_VALUE_BYTES]) -> u64 {
    value.chunks_exact(8).enumerate().fold(0x6c65_6467_6572u64, |acc, (i, chunk)| {
        mix(acc ^ u64::from_le_bytes(chunk.try_into().expect("8 bytes")), i as u64)
    })
}

/// The ledger's invariant, applied to one recovered cell: either the
/// cell was never written (value and checksum both zero) or the stored
/// checksum matches the stored value.
fn cell_consistent(value: &[u8; CELL_VALUE_BYTES], check: u64) -> bool {
    (value.iter().all(|&b| b == 0) && check == 0) || cell_checksum(value) == check
}

/// Records the clean ledger trace: every cell initialized
/// transactionally, then cell 0 updated transactionally. When `torn` is
/// set, the update is instead performed *in place without a
/// transaction* — the torn-write plant.
fn ledger_record(torn: bool) -> Vec<TraceEvent> {
    let mut trace = RecordedTrace::new();
    let mut rt = PmRuntime::new();
    let pool = rt
        .pool_create(LEDGER_POOL, LEDGER_POOL_BYTES, Mode::private(), &mut trace)
        .expect("ledger: pool_create");
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
    let root = rt
        .pool_root(pool, u64::from(CELL_STRIDE) * LEDGER_CELLS, &mut trace)
        .expect("ledger: pool_root");
    for cell in 0..LEDGER_CELLS {
        let value = cell_value(0x10 + cell);
        let at = cell as u32 * CELL_STRIDE;
        rt.txn_begin(pool).expect("ledger: txn_begin");
        rt.write_bytes(root, at, &value, &mut trace).expect("ledger: stage value");
        rt.write_u64(root, at + 64, cell_checksum(&value), &mut trace)
            .expect("ledger: stage checksum");
        rt.txn_commit(&mut trace).expect("ledger: txn_commit");
    }
    let value = cell_value(0x99);
    if torn {
        // In-place multi-line update with no write-ahead log: the value
        // line and the checksum line persist independently, so mixed
        // images are reachable.
        rt.write_bytes(root, 0, &value, &mut trace).expect("ledger: torn value");
        rt.write_u64(root, 64, cell_checksum(&value), &mut trace).expect("ledger: torn checksum");
        rt.persist(root, 0, 72, &mut trace).expect("ledger: torn persist");
    } else {
        rt.txn_begin(pool).expect("ledger: txn_begin");
        rt.write_bytes(root, 0, &value, &mut trace).expect("ledger: stage value");
        rt.write_u64(root, 64, cell_checksum(&value), &mut trace).expect("ledger: stage checksum");
        rt.txn_commit(&mut trace).expect("ledger: txn_commit");
    }
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
    trace.into_events()
}

/// Recovers one enumerated ledger image and checks the checksum
/// invariant. `None` = acceptable (consistent or quarantined).
fn ledger_check(lines: &[(u64, [u8; 64])]) -> Option<String> {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    rt.materialize_pool(LEDGER_POOL, LEDGER_POOL_BYTES, Mode::private(), lines)
        .expect("ledger lines are in range");
    let pool = match rt.pool_open(LEDGER_POOL, AttachIntent::ReadWrite, &mut sink) {
        Ok(id) => id,
        Err(RuntimeError::PoolQuarantined { .. }) => return None,
        Err(other) => return Some(format!("unexpected attach error: {other}")),
    };
    let root = match rt.pool_root(pool, u64::from(CELL_STRIDE) * LEDGER_CELLS, &mut sink) {
        Ok(r) => r,
        Err(other) => return Some(format!("unexpected root error: {other}")),
    };
    for cell in 0..LEDGER_CELLS {
        let at = cell as u32 * CELL_STRIDE;
        let mut value = [0u8; CELL_VALUE_BYTES];
        if let Err(e) = rt.read_bytes(root, at, &mut value, &mut sink) {
            return Some(format!("cell {cell} unreadable: {e}"));
        }
        let check = match rt.read_u64(root, at + 64, &mut sink) {
            Ok(c) => c,
            Err(e) => return Some(format!("cell {cell} checksum unreadable: {e}")),
        };
        if !cell_consistent(&value, check) {
            return Some(format!(
                "cell {cell} checksum mismatch: stored {check:#018x}, computed {:#018x}",
                cell_checksum(&value)
            ));
        }
    }
    None
}

fn seeded_row(
    plant: &'static str,
    control: bool,
    events: &[TraceEvent],
    cfg: &CrashenumConfig,
) -> SeededRow {
    let result = enumerate(events, cfg.enum_config());
    let mut row = SeededRow {
        plant,
        control,
        windows: result.total_windows,
        images: result.total_images(),
        violations: 0,
        first_repro: None,
    };
    for w in &result.windows {
        for img in &w.images {
            let lines = w.image_lines(img.rank);
            if ledger_check(&lines).is_some() {
                row.violations += 1;
                if row.first_repro.is_none() {
                    row.first_repro = Some((w.window, img.rank));
                }
            }
        }
    }
    row
}

/// Runs the self-validation suite: the clean ledger must enumerate zero
/// violations (the `control` row), and each planted fault class must be
/// caught — at least one enumerated image violating the ledger's
/// checksum invariant ([`SeededRow::passed`]).
#[must_use]
pub fn run_seeded(cfg: &CrashenumConfig) -> Vec<SeededRow> {
    let clean = ledger_record(false);
    let torn = ledger_record(true);
    let dropped =
        seed_bug(&clean, SeededBug::DroppedFlush).expect("ledger trace has a commit to corrupt");
    let reordered =
        seed_bug(&clean, SeededBug::ReorderedFence).expect("ledger trace has a fence to move");
    vec![
        seeded_row("control", true, &clean, cfg),
        seeded_row("torn-write", false, &torn, cfg),
        seeded_row("dropped-flush", false, &dropped, cfg),
        seeded_row("reordered-persist", false, &reordered, cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CrashenumConfig {
        CrashenumConfig {
            campaign_seed: 0x1505,
            inserts: 2,
            value_bytes: 32,
            max_images_per_window: 4096,
            max_windows: 4096,
            membership_samples: 3,
        }
    }

    #[test]
    fn recorded_traces_are_value_complete() {
        let cfg = tiny();
        let rec = record_workload(&cfg, FaultWorkload::List);
        let result = enumerate_workload(&cfg, &rec);
        assert!(result.opaque_pools.is_empty(), "every store must carry its bytes");
        assert!(result.total_windows > 4, "creation + two txns span many fences");
        assert_eq!(rec.keys.len(), 2);
    }

    #[test]
    fn clean_list_images_all_recover_or_quarantine() {
        let cfg = tiny();
        let rec = record_workload(&cfg, FaultWorkload::List);
        let result = enumerate_workload(&cfg, &rec);
        assert!(result.exhaustive());
        let mut seen = std::collections::BTreeSet::new();
        let mut recovered = 0u64;
        for w in &result.windows {
            for img in &w.images {
                if !seen.insert(img.hash) {
                    continue;
                }
                let lines = w.image_lines(img.rank);
                match check_image(&cfg, FaultWorkload::List, &lines, &rec.keys) {
                    ImageOutcome::Violation(d) => {
                        panic!("window {} rank {}: {d}", w.window, img.rank)
                    }
                    ImageOutcome::Recovered => recovered += 1,
                    ImageOutcome::Quarantined => {}
                }
            }
        }
        assert!(recovered > 0, "at least the settled images recover");
    }

    #[test]
    fn ledger_control_is_clean_and_all_plants_are_caught() {
        let rows = run_seeded(&tiny());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].plant, "control");
        assert_eq!(rows[0].violations, 0, "clean ledger must enumerate zero violations");
        for row in &rows[1..] {
            assert!(
                row.passed(),
                "{}: expected >=1 violating image among {} in {} windows",
                row.plant,
                row.images,
                row.windows
            );
            assert!(row.first_repro.is_some());
        }
    }

    #[test]
    fn sampled_power_failure_images_are_members() {
        let cfg = tiny();
        let row = membership_check(&cfg, FaultWorkload::List);
        assert!(row.samples > 0, "some sampled fault must fire");
        assert_eq!(row.misses, 0, "{row:?}");
        assert!(row.members > 0, "at least one exhaustive membership proof");
    }

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        let cfg = CrashenumConfig { inserts: 1, membership_samples: 1, ..tiny() };
        let serial = run_campaign(&cfg, 1);
        let parallel = run_campaign(&cfg, 4);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert!(serial.failures.is_empty(), "{serial}");
    }
}
