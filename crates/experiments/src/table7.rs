//! Table VII: overhead breakdown for the two proposed designs at the
//! maximum PMO count.

use std::fmt;

use pmo_protect::SchemeKind;
use pmo_simarch::SimConfig;
use pmo_workloads::MicroBench;

use crate::pool::parallel_map;
use crate::runner::{report_for, run_micro, RunOptions};
use crate::text::{f, TextTable};
use crate::Scale;

/// Breakdown of one scheme on one benchmark, as percentages of the
/// lowerbound execution time.
#[derive(Clone, Copy, Debug, Default)]
pub struct Table7Cell {
    /// Permission-change (SETPERM/WRPKRU) percentage.
    pub permission_change: f64,
    /// Entry-change (1-cycle table micro-ops) percentage.
    pub entry_changes: f64,
    /// DTT-miss (design 1) or PTLB-miss (design 2) percentage.
    pub table_miss: f64,
    /// TLB-invalidation percentage (design 1 only).
    pub tlb_invalidation: f64,
    /// Access-latency percentage (design 2 only).
    pub access_latency: f64,
    /// Measured total overhead over lowerbound (may differ slightly from
    /// the bucket sum: buckets are attribution estimates).
    pub measured_total: f64,
}

impl Table7Cell {
    /// Sum of the attribution buckets.
    #[must_use]
    pub fn bucket_total(&self) -> f64 {
        self.permission_change
            + self.entry_changes
            + self.table_miss
            + self.tlb_invalidation
            + self.access_latency
    }
}

/// The full Table VII result.
#[derive(Clone, Debug)]
pub struct Table7 {
    /// PMO count the breakdown was measured at.
    pub pmos: u32,
    /// Benchmark labels, in column order.
    pub benches: Vec<&'static str>,
    /// Design 1 (hardware MPK virtualization) cells per benchmark.
    pub mpk_virt: Vec<Table7Cell>,
    /// Design 2 (hardware domain virtualization) cells per benchmark.
    pub domain_virt: Vec<Table7Cell>,
}

/// Runs the Table VII experiment at the scale's maximum PMO count.
/// Benchmarks fan across `opts.jobs` workers; columns keep canonical
/// order.
#[must_use]
pub fn table7(scale: Scale, sim: &SimConfig, opts: RunOptions) -> Table7 {
    let kinds = [SchemeKind::Lowerbound, SchemeKind::MpkVirt, SchemeKind::DomainVirt];
    let config = scale.micro_config(scale.max_pmos());
    let cells = parallel_map(opts.jobs, MicroBench::ALL.to_vec(), |bench| {
        let reports = run_micro(bench, &config, &kinds, sim, opts.serial());
        let lb = report_for(&reports, SchemeKind::Lowerbound);
        let cell = |kind: SchemeKind| {
            let r = report_for(&reports, kind);
            let b = r.breakdown.as_percent_of(lb.cycles);
            Table7Cell {
                permission_change: b.permission_change,
                entry_changes: b.entry_changes,
                table_miss: b.translation_miss,
                tlb_invalidation: b.tlb_invalidation,
                access_latency: b.access_latency,
                measured_total: r.overhead_pct_over(lb),
            }
        };
        (bench.label(), cell(SchemeKind::MpkVirt), cell(SchemeKind::DomainVirt))
    });
    let mut benches = Vec::new();
    let mut mpk_virt = Vec::new();
    let mut domain_virt = Vec::new();
    for (label, d1, d2) in cells {
        benches.push(label);
        mpk_virt.push(d1);
        domain_virt.push(d2);
    }
    Table7 { pmos: scale.max_pmos(), benches, mpk_virt, domain_virt }
}

fn mean(cells: &[Table7Cell], get: impl Fn(&Table7Cell) -> f64) -> f64 {
    cells.iter().map(&get).sum::<f64>() / cells.len() as f64
}

type Row<'a> = (&'a str, &'a dyn Fn(&Table7Cell) -> f64);

fn section(
    out: &mut fmt::Formatter<'_>,
    title: &str,
    benches: &[&'static str],
    cells: &[Table7Cell],
    rows: &[Row<'_>],
) -> fmt::Result {
    let mut headers = vec!["Overhead source"];
    headers.extend(benches.iter().copied());
    headers.push("Avg");
    let mut t = TextTable::new(title, &headers);
    for (name, get) in rows {
        let mut row = vec![(*name).to_string()];
        for c in cells {
            row.push(f(get(c), 2));
        }
        row.push(f(mean(cells, get), 2));
        t.row(row);
    }
    writeln!(out, "{t}")
}

impl fmt::Display for Table7 {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "Table VII: overhead breakdown for the proposed solutions with {} PMOs per \
             benchmark (percent of lowerbound execution time)\n",
            self.pmos
        )?;
        section(
            out,
            "Overhead of hardware-based MPK virtualization",
            &self.benches,
            &self.mpk_virt,
            &[
                ("Permission change (%)", &|c| c.permission_change),
                ("Entry changes (%)", &|c| c.entry_changes),
                ("DTT misses (%)", &|c| c.table_miss),
                ("TLB invalidations (%)", &|c| c.tlb_invalidation),
                ("Total (bucket sum, %)", &|c| c.bucket_total()),
                ("Total (measured, %)", &|c| c.measured_total),
            ],
        )?;
        section(
            out,
            "Overhead of hardware-based domain virtualization",
            &self.benches,
            &self.domain_virt,
            &[
                ("Permission change (%)", &|c| c.permission_change),
                ("Entry changes (%)", &|c| c.entry_changes),
                ("PTLB misses (%)", &|c| c.table_miss),
                ("Access latency (%)", &|c| c.access_latency),
                ("Total (bucket sum, %)", &|c| c.bucket_total()),
                ("Total (measured, %)", &|c| c.measured_total),
            ],
        )
    }
}
