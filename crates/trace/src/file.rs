//! Binary trace files: record a trace to disk and replay it later, like
//! the Pin trace files the paper's methodology revolves around.
//!
//! Format: a 16-byte header (`magic, version, event count`) followed by
//! fixed-width 22-byte little-endian records (`tag u8, a u64, b u64,
//! c u8, d u32`). Hand-rolled (no serde) and versioned.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::block::{pack_record, unpack_record};
use crate::{TraceEvent, TraceSink, TraceSource};

const MAGIC: u32 = 0x504d_4f54; // "PMOT"
/// Current format version. v2 added the valued-store record (tag 12);
/// records are otherwise unchanged, so v1 files stay readable.
const VERSION: u32 = 2;
/// Oldest version [`TraceFile::open`] still accepts.
const MIN_VERSION: u32 = 1;
const RECORD_BYTES: usize = 22;

fn encode(ev: &TraceEvent) -> [u8; RECORD_BYTES] {
    let (tag, a, b, c, d) = pack_record(ev);
    let mut rec = [0u8; RECORD_BYTES];
    rec[0] = tag;
    rec[1..9].copy_from_slice(&a.to_le_bytes());
    rec[9..17].copy_from_slice(&b.to_le_bytes());
    rec[17] = c;
    rec[18..22].copy_from_slice(&d.to_le_bytes());
    rec
}

fn decode(rec: &[u8; RECORD_BYTES]) -> io::Result<TraceEvent> {
    let tag = rec[0];
    let a = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
    let b = u64::from_le_bytes(rec[9..17].try_into().expect("8 bytes"));
    let c = rec[17];
    let d = u32::from_le_bytes(rec[18..22].try_into().expect("4 bytes"));
    unpack_record(tag, a, b, c, d)
}

/// A sink that streams events into a trace file as they arrive.
///
/// Call [`TraceFileWriter::finish`] to flush and finalize the header.
#[derive(Debug)]
pub struct TraceFileWriter {
    out: BufWriter<File>,
    count: u64,
}

impl TraceFileWriter {
    /// Creates (truncates) a trace file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        // Placeholder header; the count is patched in `finish`.
        out.write_all(&MAGIC.to_le_bytes())?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?;
        Ok(TraceFileWriter { out, count: 0 })
    }

    /// Events written so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no events were written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Flushes, patches the header's event count, and closes the file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(self) -> io::Result<u64> {
        use std::io::Seek;
        let TraceFileWriter { out, count } = self;
        let mut file = out.into_inner()?;
        file.seek(io::SeekFrom::Start(8))?;
        file.write_all(&count.to_le_bytes())?;
        file.sync_all()?;
        Ok(count)
    }
}

impl TraceSink for TraceFileWriter {
    /// # Panics
    ///
    /// Panics on I/O errors (sinks are infallible by contract; use a
    /// reliable filesystem for trace capture).
    fn event(&mut self, ev: TraceEvent) {
        self.out.write_all(&encode(&ev)).expect("trace file write");
        self.count += 1;
    }
}

/// A trace file on disk, replayable as a [`TraceSource`].
#[derive(Debug)]
pub struct TraceFile {
    path: std::path::PathBuf,
    events: u64,
}

impl TraceFile {
    /// Opens and validates a trace file's header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a bad magic number, or a version mismatch.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = [0u8; 16];
        reader.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a PMO trace file"));
        }
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let events = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        Ok(TraceFile { path: path.as_ref().to_path_buf(), events })
    }

    /// Number of events in the file.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.events
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Streams every event into `sink`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or corrupt records.
    pub fn stream_into(&self, sink: &mut dyn TraceSink) -> io::Result<u64> {
        let mut reader = BufReader::new(File::open(&self.path)?);
        let mut header = [0u8; 16];
        reader.read_exact(&mut header)?;
        let mut rec = [0u8; RECORD_BYTES];
        let mut streamed = 0;
        for _ in 0..self.events {
            reader.read_exact(&mut rec)?;
            sink.event(decode(&rec)?);
            streamed += 1;
        }
        Ok(streamed)
    }
}

impl TraceSource for TraceFile {
    /// # Panics
    ///
    /// Panics on I/O errors or corruption (use [`TraceFile::stream_into`]
    /// for fallible streaming).
    fn replay(&self, sink: &mut dyn TraceSink) {
        self.stream_into(sink).expect("trace file replay");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultKind, OpKind, Perm, PmoId, RecordedTrace, ThreadId};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Attach {
                pmo: PmoId::new(7),
                base: 0x2000_0000_0000,
                size: 8 << 20,
                nvm: true,
            },
            TraceEvent::ThreadSwitch { thread: ThreadId::new(3) },
            TraceEvent::SetPerm { pmo: PmoId::new(7), perm: Perm::ReadWrite },
            TraceEvent::Load { va: 0x2000_0000_0040, size: 8 },
            TraceEvent::Store { va: 0x2000_0000_0048, size: 4 },
            TraceEvent::StoreData { va: 0x2000_0000_0050, size: 8, data: 0xa11c_0c0a_dead_beef },
            TraceEvent::Compute { count: 1234 },
            TraceEvent::Flush { va: 0x2000_0000_0040 },
            TraceEvent::Fence,
            TraceEvent::Op { kind: OpKind::Begin },
            TraceEvent::Op { kind: OpKind::End },
            TraceEvent::SetPerm { pmo: PmoId::new(7), perm: Perm::None },
            TraceEvent::Fault { pmo: PmoId::new(7), kind: FaultKind::PowerFailure },
            TraceEvent::Fault { pmo: PmoId::new(7), kind: FaultKind::TornWrite },
            TraceEvent::Fault { pmo: PmoId::new(7), kind: FaultKind::MediaError },
            TraceEvent::Detach { pmo: PmoId::new(7) },
            TraceEvent::Shootdown { pmo: PmoId::new(7) },
        ]
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("pmo-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pmot");

        let mut writer = TraceFileWriter::create(&path).unwrap();
        for ev in sample() {
            writer.event(ev);
        }
        assert_eq!(writer.len(), 17);
        assert_eq!(writer.finish().unwrap(), 17);

        let file = TraceFile::open(&path).unwrap();
        assert_eq!(file.len(), 17);
        assert!(!file.is_empty());
        let mut replayed = RecordedTrace::new();
        file.replay(&mut replayed);
        assert_eq!(replayed.events(), sample().as_slice());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("pmo-trace-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.pmot");
        std::fs::write(&path, b"definitely not a trace file").unwrap();
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_event_kind_roundtrips() {
        for ev in sample() {
            let rec = encode(&ev);
            assert_eq!(decode(&rec).unwrap(), ev, "{ev:?}");
        }
        // Unknown tag is an error, not a panic.
        let mut bad = [0u8; RECORD_BYTES];
        bad[0] = 250;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn version1_files_still_open() {
        let dir = std::env::temp_dir().join(format!("pmo-trace-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.pmot");

        // A v1 file: same header layout, version field 1, no tag-12
        // records (v1 writers could not produce them).
        let legacy: Vec<TraceEvent> =
            sample().into_iter().filter(|e| !matches!(e, TraceEvent::StoreData { .. })).collect();
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&(legacy.len() as u64).to_le_bytes());
        for ev in &legacy {
            body.extend_from_slice(&encode(ev));
        }
        std::fs::write(&path, body).unwrap();

        let file = TraceFile::open(&path).unwrap();
        let mut replayed = RecordedTrace::new();
        file.replay(&mut replayed);
        assert_eq!(replayed.events(), legacy.as_slice());

        // A future version is still rejected.
        let mut future = std::fs::read(&path).unwrap();
        future[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        std::fs::write(&path, future).unwrap();
        assert!(TraceFile::open(&path).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn valued_store_packs_full_payload() {
        let ev = TraceEvent::StoreData { va: u64::MAX, size: 8, data: u64::MAX };
        assert_eq!(decode(&encode(&ev)).unwrap(), ev);
    }

    #[test]
    fn attach_packs_large_values() {
        let ev = TraceEvent::Attach {
            pmo: PmoId::new(u32::MAX),
            base: u64::MAX,
            size: u64::MAX,
            nvm: false,
        };
        assert_eq!(decode(&encode(&ev)).unwrap(), ev);
    }
}
