//! Permission lattice for protection domains.

use std::fmt;

/// The kind of a memory access, used when checking permissions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load instruction.
    Read,
    /// A store instruction.
    Write,
}

impl AccessKind {
    /// Whether this access writes memory.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// Per-thread permission for a protection domain.
///
/// The paper's PTLB encodes this in 2 bits (§IV.E): `1x` = inaccessible /
/// execute-only, `01` = read-only, `00` = read-write. MPK's PKRU uses the
/// same lattice with one access-disable and one write-disable bit per key.
///
/// The lattice order (most→least restrictive) is
/// [`None`](Perm::None) < [`ReadOnly`](Perm::ReadOnly) <
/// [`ReadWrite`](Perm::ReadWrite); [`meet`](Perm::meet) returns the stricter
/// of two permissions, which is how the MMU combines domain permission with
/// page permission (§IV.C: "the more restrictive permission is derived").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Perm {
    /// Inaccessible (execute-only for code domains): `1x` encoding.
    #[default]
    None,
    /// Read permitted, write denied: `01` encoding.
    ReadOnly,
    /// Read and write permitted: `00` encoding.
    ReadWrite,
}

impl Perm {
    /// Whether an access of kind `kind` is allowed under this permission.
    ///
    /// ```
    /// use pmo_trace::{AccessKind, Perm};
    /// assert!(Perm::ReadOnly.allows(AccessKind::Read));
    /// assert!(!Perm::ReadOnly.allows(AccessKind::Write));
    /// ```
    #[must_use]
    pub const fn allows(self, kind: AccessKind) -> bool {
        match (self, kind) {
            (Perm::None, _) => false,
            (Perm::ReadOnly, AccessKind::Read) => true,
            (Perm::ReadOnly, AccessKind::Write) => false,
            (Perm::ReadWrite, _) => true,
        }
    }

    /// Whether reads are allowed.
    #[must_use]
    pub const fn allows_read(self) -> bool {
        !matches!(self, Perm::None)
    }

    /// Whether writes are allowed.
    #[must_use]
    pub const fn allows_write(self) -> bool {
        matches!(self, Perm::ReadWrite)
    }

    /// The stricter of two permissions (lattice meet).
    ///
    /// This is the combination rule the MMU applies between the domain
    /// permission (PKRU / PTLB) and the page permission (TLB / page table).
    #[must_use]
    pub const fn meet(self, other: Perm) -> Perm {
        match (self, other) {
            (Perm::None, _) | (_, Perm::None) => Perm::None,
            (Perm::ReadOnly, _) | (_, Perm::ReadOnly) => Perm::ReadOnly,
            (Perm::ReadWrite, Perm::ReadWrite) => Perm::ReadWrite,
        }
    }

    /// The laxer of two permissions (lattice join).
    ///
    /// Used when analysing key sharing: if two domains must share one
    /// protection key, the key's effective permission is the join, which is
    /// the security weakening the paper describes in §IV.B.
    #[must_use]
    pub const fn join(self, other: Perm) -> Perm {
        match (self, other) {
            (Perm::ReadWrite, _) | (_, Perm::ReadWrite) => Perm::ReadWrite,
            (Perm::ReadOnly, _) | (_, Perm::ReadOnly) => Perm::ReadOnly,
            (Perm::None, Perm::None) => Perm::None,
        }
    }

    /// The paper's 2-bit PTLB encoding (`1x`=None, `01`=ReadOnly, `00`=RW).
    #[must_use]
    pub const fn encode(self) -> u8 {
        match self {
            Perm::None => 0b10,
            Perm::ReadOnly => 0b01,
            Perm::ReadWrite => 0b00,
        }
    }

    /// Decodes the 2-bit PTLB encoding; both `10` and `11` map to `None`.
    #[must_use]
    pub const fn decode(bits: u8) -> Perm {
        match bits & 0b11 {
            0b00 => Perm::ReadWrite,
            0b01 => Perm::ReadOnly,
            _ => Perm::None,
        }
    }
}

impl PartialOrd for Perm {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Perm {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(p: Perm) -> u8 {
            match p {
                Perm::None => 0,
                Perm::ReadOnly => 1,
                Perm::ReadWrite => 2,
            }
        }
        rank(*self).cmp(&rank(*other))
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Perm::None => f.write_str("none"),
            Perm::ReadOnly => f.write_str("read-only"),
            Perm::ReadWrite => f.write_str("read-write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Perm; 3] = [Perm::None, Perm::ReadOnly, Perm::ReadWrite];

    #[test]
    fn allows_matches_lattice() {
        assert!(!Perm::None.allows(AccessKind::Read));
        assert!(!Perm::None.allows(AccessKind::Write));
        assert!(Perm::ReadOnly.allows(AccessKind::Read));
        assert!(!Perm::ReadOnly.allows(AccessKind::Write));
        assert!(Perm::ReadWrite.allows(AccessKind::Read));
        assert!(Perm::ReadWrite.allows(AccessKind::Write));
    }

    #[test]
    fn meet_is_commutative_and_idempotent() {
        for a in ALL {
            assert_eq!(a.meet(a), a);
            for b in ALL {
                assert_eq!(a.meet(b), b.meet(a));
                assert_eq!(a.meet(b), a.min(b));
            }
        }
    }

    #[test]
    fn join_is_commutative_and_idempotent() {
        for a in ALL {
            assert_eq!(a.join(a), a);
            for b in ALL {
                assert_eq!(a.join(b), b.join(a));
                assert_eq!(a.join(b), a.max(b));
            }
        }
    }

    #[test]
    fn join_weakens_meet_strengthens() {
        // The §IV.B example: R(A) and RW(B) sharing a key yields RW — writes
        // to A are wrongly permitted.
        let shared_key = Perm::ReadOnly.join(Perm::ReadWrite);
        assert!(shared_key.allows(AccessKind::Write));
        // MMU combination is the meet: RW domain on a read-only page denies.
        assert!(!Perm::ReadWrite.meet(Perm::ReadOnly).allows(AccessKind::Write));
    }

    #[test]
    fn encode_decode_roundtrip() {
        for p in ALL {
            assert_eq!(Perm::decode(p.encode()), p);
        }
        // Execute-only alias `11` also decodes to None.
        assert_eq!(Perm::decode(0b11), Perm::None);
    }

    #[test]
    fn ordering_is_total_and_matches_strictness() {
        assert!(Perm::None < Perm::ReadOnly);
        assert!(Perm::ReadOnly < Perm::ReadWrite);
    }

    #[test]
    fn default_is_none() {
        // Paper §V: "The default permission for this key is inaccessible."
        assert_eq!(Perm::default(), Perm::None);
    }
}
