//! The trace event vocabulary.

use std::fmt;

use crate::{Perm, PmoId, ThreadId, Va};

/// High-level operation markers, used for per-operation statistics
/// (e.g. the per-data-structure-operation permission window of the
/// multi-PMO experiments, §V).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// A whole benchmark transaction / data-structure operation begins.
    Begin,
    /// The current transaction / operation ends.
    End,
}

/// The kind of injected hardware fault a campaign recorded.
///
/// Emitted as [`TraceEvent::Fault`] by fault-injection harnesses at the
/// instant a planned fault fires, so a recorded trace carries enough
/// information to replay the exact same failure deterministically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Whole-machine power loss: every unflushed line reverts.
    PowerFailure,
    /// Power loss with torn cache-line writes: each unflushed line
    /// independently persists fully, reverts fully, or tears at word
    /// granularity.
    TornWrite,
    /// Power loss plus NVM media damage: a deterministic subset of
    /// recently-written lines becomes unreadable (ECC-uncorrectable).
    MediaError,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::PowerFailure => "power-failure",
            FaultKind::TornWrite => "torn-write",
            FaultKind::MediaError => "media-error",
        })
    }
}

/// One event of an execution trace.
///
/// Events are deliberately scheme-agnostic: a permission switch is recorded
/// as the *intent* ([`TraceEvent::SetPerm`]) and each protection scheme
/// lowers it to its own mechanism during replay (WRPKRU for MPK and the
/// lowerbound, `pkey_set`/eviction for libmpk, SETPERM + DTT/PKRU update for
/// hardware MPK virtualization, SETPERM + PTLB update for domain
/// virtualization). This mirrors the paper's methodology of replaying one
/// Pin trace under every scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// `count` non-memory instructions (ALU/branch work between accesses).
    Compute {
        /// Number of instructions.
        count: u32,
    },
    /// A load of `size` bytes from virtual address `va`.
    Load {
        /// Virtual address.
        va: Va,
        /// Access size in bytes (1..=64).
        size: u8,
    },
    /// A store of `size` bytes to virtual address `va`.
    Store {
        /// Virtual address.
        va: Va,
        /// Access size in bytes (1..=64).
        size: u8,
    },
    /// A store of `size` bytes to virtual address `va` that also carries
    /// the written bytes (little-endian in the low `size` bytes of
    /// `data`), so persistency-model analyses can reconstruct the exact
    /// memory image a crash would leave behind.
    ///
    /// Runtimes chunk data writes to at most 8 bytes per store, so one
    /// `u64` payload suffices. Replay-wise this is identical to
    /// [`TraceEvent::Store`]; old (v1) trace files simply never contain
    /// it.
    StoreData {
        /// Virtual address.
        va: Va,
        /// Access size in bytes (1..=8).
        size: u8,
        /// The written bytes, little-endian in the low `size` bytes.
        data: u64,
    },
    /// The running thread changes its own permission for a domain
    /// (the paper's user-level SETPERM instruction; WRPKRU under MPK).
    SetPerm {
        /// Target PMO / domain.
        pmo: PmoId,
        /// New absolute permission for the executing thread.
        perm: Perm,
    },
    /// A PMO is attached to the address space (system call).
    Attach {
        /// PMO / domain ID assigned by the OS.
        pmo: PmoId,
        /// Base virtual address of the attached (aligned) region.
        base: Va,
        /// Size in bytes of the region reserved for the PMO.
        size: u64,
        /// Whether the backing physical memory is NVM (vs DRAM).
        nvm: bool,
    },
    /// A PMO is detached from the address space (system call).
    Detach {
        /// PMO / domain ID.
        pmo: PmoId,
    },
    /// Execution switches to another thread (context switch on this core).
    ThreadSwitch {
        /// The thread that now runs.
        thread: ThreadId,
    },
    /// A cache-line writeback to persistent memory (`clwb`-like).
    Flush {
        /// Line-aligned virtual address being written back.
        va: Va,
    },
    /// A persist/memory fence (`sfence`-like). SETPERM also carries fence
    /// semantics (§IV.A) but the scheme layer accounts for that itself.
    Fence,
    /// Marker delimiting one benchmark operation, for per-op statistics.
    Op {
        /// Begin or end.
        kind: OpKind,
    },
    /// An injected hardware fault fired against a PMO's backing NVM.
    ///
    /// Recorded by fault-injection campaigns so the crash point is part
    /// of the trace itself and a replay reproduces the identical failure.
    Fault {
        /// PMO whose backing storage the fault hit.
        pmo: PmoId,
        /// What kind of fault fired.
        kind: FaultKind,
    },
    /// A ranged TLB/PTLB shootdown for one PMO's mappings completed
    /// (§IV.B: detach and key eviction must invalidate stale translations
    /// on every core before the mapping or key is reused).
    ///
    /// The replay cost model charges shootdowns inside the detach system
    /// call itself; this marker exists so trace-level analyses can verify
    /// the ordering discipline (no reuse window without an intervening
    /// shootdown).
    Shootdown {
        /// PMO whose translations were invalidated.
        pmo: PmoId,
    },
}

impl TraceEvent {
    /// Whether this event is a load or store.
    #[must_use]
    pub const fn is_memory_access(&self) -> bool {
        matches!(
            self,
            TraceEvent::Load { .. } | TraceEvent::Store { .. } | TraceEvent::StoreData { .. }
        )
    }

    /// Number of retired instructions this event represents.
    ///
    /// `Attach`/`Detach` are system calls whose instruction footprint is
    /// charged by the simulator's cost model, not by the trace; markers
    /// (`Op`) represent no instruction at all.
    #[must_use]
    pub const fn instruction_count(&self) -> u64 {
        match self {
            TraceEvent::Compute { count } => *count as u64,
            TraceEvent::Load { .. }
            | TraceEvent::Store { .. }
            | TraceEvent::StoreData { .. }
            | TraceEvent::SetPerm { .. }
            | TraceEvent::Flush { .. }
            | TraceEvent::Fence => 1,
            TraceEvent::Attach { .. }
            | TraceEvent::Detach { .. }
            | TraceEvent::ThreadSwitch { .. }
            | TraceEvent::Op { .. }
            | TraceEvent::Fault { .. }
            | TraceEvent::Shootdown { .. } => 0,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Compute { count } => write!(f, "compute x{count}"),
            TraceEvent::Load { va, size } => write!(f, "ld {size}B @{va:#x}"),
            TraceEvent::Store { va, size } => write!(f, "st {size}B @{va:#x}"),
            TraceEvent::StoreData { va, size, data } => {
                write!(f, "st {size}B @{va:#x} = {data:#x}")
            }
            TraceEvent::SetPerm { pmo, perm } => write!(f, "setperm pmo={pmo} {perm}"),
            TraceEvent::Attach { pmo, base, size, nvm } => {
                write!(f, "attach pmo={pmo} base={base:#x} size={size} nvm={nvm}")
            }
            TraceEvent::Detach { pmo } => write!(f, "detach pmo={pmo}"),
            TraceEvent::ThreadSwitch { thread } => write!(f, "switch-to t{thread}"),
            TraceEvent::Flush { va } => write!(f, "clwb @{va:#x}"),
            TraceEvent::Fence => f.write_str("fence"),
            TraceEvent::Op { kind: OpKind::Begin } => f.write_str("op-begin"),
            TraceEvent::Op { kind: OpKind::End } => f.write_str("op-end"),
            TraceEvent::Fault { pmo, kind } => write!(f, "fault pmo={pmo} kind={kind}"),
            TraceEvent::Shootdown { pmo } => write!(f, "shootdown pmo={pmo}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_access_classification() {
        assert!(TraceEvent::Load { va: 0, size: 8 }.is_memory_access());
        assert!(TraceEvent::Store { va: 0, size: 8 }.is_memory_access());
        assert!(TraceEvent::StoreData { va: 0, size: 8, data: 0xfeed }.is_memory_access());
        assert!(!TraceEvent::Fence.is_memory_access());
        assert!(!TraceEvent::Compute { count: 3 }.is_memory_access());
    }

    #[test]
    fn instruction_counts() {
        assert_eq!(TraceEvent::Compute { count: 17 }.instruction_count(), 17);
        assert_eq!(TraceEvent::Load { va: 0, size: 4 }.instruction_count(), 1);
        assert_eq!(TraceEvent::StoreData { va: 0, size: 8, data: 7 }.instruction_count(), 1);
        assert_eq!(
            TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly }.instruction_count(),
            1
        );
        assert_eq!(TraceEvent::Op { kind: OpKind::Begin }.instruction_count(), 0);
        assert_eq!(TraceEvent::ThreadSwitch { thread: ThreadId::MAIN }.instruction_count(), 0);
        assert_eq!(
            TraceEvent::Fault { pmo: PmoId::new(3), kind: FaultKind::TornWrite }
                .instruction_count(),
            0
        );
        assert_eq!(TraceEvent::Shootdown { pmo: PmoId::new(3) }.instruction_count(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        let events = [
            TraceEvent::Compute { count: 1 },
            TraceEvent::Load { va: 0x10, size: 8 },
            TraceEvent::Store { va: 0x18, size: 8 },
            TraceEvent::StoreData { va: 0x18, size: 8, data: 0xdead_beef },
            TraceEvent::SetPerm { pmo: PmoId::new(2), perm: Perm::ReadWrite },
            TraceEvent::Attach { pmo: PmoId::new(2), base: 0x1000, size: 4096, nvm: true },
            TraceEvent::Detach { pmo: PmoId::new(2) },
            TraceEvent::ThreadSwitch { thread: ThreadId::new(1) },
            TraceEvent::Flush { va: 0x40 },
            TraceEvent::Fence,
            TraceEvent::Op { kind: OpKind::End },
            TraceEvent::Fault { pmo: PmoId::new(2), kind: FaultKind::PowerFailure },
            TraceEvent::Fault { pmo: PmoId::new(2), kind: FaultKind::TornWrite },
            TraceEvent::Fault { pmo: PmoId::new(2), kind: FaultKind::MediaError },
            TraceEvent::Shootdown { pmo: PmoId::new(2) },
        ];
        for e in events {
            assert!(!format!("{e}").is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn fault_kind_display_is_distinct() {
        let names = [
            FaultKind::PowerFailure.to_string(),
            FaultKind::TornWrite.to_string(),
            FaultKind::MediaError.to_string(),
        ];
        assert_eq!(names.iter().collect::<std::collections::BTreeSet<_>>().len(), 3);
    }
}
