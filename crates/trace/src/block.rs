//! Struct-of-arrays event blocks: the versioned zero-copy binary trace
//! format the batched replay engine iterates.
//!
//! The record-per-event file format ([`crate::TraceFile`]) is convenient
//! for capture, but replaying it means matching a [`TraceEvent`] enum per
//! event. The block format stores the same 22-byte record fields as five
//! parallel *lanes* — `tags`, `va` (field `a`), `aux` (field `b`), `size`
//! (field `c`), `id` (field `d`) — grouped into fixed-capacity blocks, so
//! a replay inner loop can scan flat arrays (e.g. run-length batching of
//! consecutive same-line accesses over the `va` lane) without constructing
//! an enum value per event.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header:  magic u32 ("PMOB") | version u16 | flags u16 (0) |
//!          block_events u32 | block_count u32 | total_events u64
//! block:   n u32 | tags[n] u8 | size[n] u8 | id[n] u32 |
//!          va[n] u64 | aux[n] u64
//! ```
//!
//! [`BlockReader`] is the mmap-style view: it borrows an encoded byte
//! slice and exposes per-block [`LaneView`]s whose lanes alias the input
//! buffer directly (no copy, no allocation). [`BlockTrace`] is the owned
//! decoded form with per-block [`EventCounts`] precomputed at build time.

use std::io;

use crate::{
    EventCounts, FaultKind, OpKind, Perm, PmoId, RecordedTrace, ThreadId, TraceEvent, TraceSink,
    TraceSource,
};

/// Block-format magic: "PMOB".
pub const BLOCK_MAGIC: u32 = 0x504d_4f42;
/// Current block-format version.
pub const BLOCK_VERSION: u16 = 1;
/// Default events per block: large enough to amortize per-block work,
/// small enough that a block of 22-byte records stays L2-resident.
pub const DEFAULT_BLOCK_EVENTS: u32 = 4096;

const HEADER_BYTES: usize = 24;

/// Record tag codes, shared by the file and block formats.
pub mod tag {
    /// `TraceEvent::Compute`.
    pub const COMPUTE: u8 = 0;
    /// `TraceEvent::Load`.
    pub const LOAD: u8 = 1;
    /// `TraceEvent::Store`.
    pub const STORE: u8 = 2;
    /// `TraceEvent::SetPerm`.
    pub const SET_PERM: u8 = 3;
    /// `TraceEvent::Attach`.
    pub const ATTACH: u8 = 4;
    /// `TraceEvent::Detach`.
    pub const DETACH: u8 = 5;
    /// `TraceEvent::ThreadSwitch`.
    pub const THREAD_SWITCH: u8 = 6;
    /// `TraceEvent::Flush`.
    pub const FLUSH: u8 = 7;
    /// `TraceEvent::Fence`.
    pub const FENCE: u8 = 8;
    /// `TraceEvent::Op`.
    pub const OP: u8 = 9;
    /// `TraceEvent::Fault`.
    pub const FAULT: u8 = 10;
    /// `TraceEvent::Shootdown`.
    pub const SHOOTDOWN: u8 = 11;
    /// `TraceEvent::StoreData`.
    pub const STORE_DATA: u8 = 12;
    /// Highest valid tag.
    pub const MAX: u8 = STORE_DATA;
}

/// Packs an event into the shared `(tag, a, b, c, d)` record fields used
/// by both the file format and the block lanes.
#[must_use]
pub fn pack_record(ev: &TraceEvent) -> (u8, u64, u64, u8, u32) {
    match *ev {
        TraceEvent::Compute { count } => (tag::COMPUTE, u64::from(count), 0, 0, 0),
        TraceEvent::Load { va, size } => (tag::LOAD, va, 0, size, 0),
        TraceEvent::Store { va, size } => (tag::STORE, va, 0, size, 0),
        TraceEvent::SetPerm { pmo, perm } => (tag::SET_PERM, 0, 0, perm.encode(), pmo.raw()),
        TraceEvent::Attach { pmo, base, size, nvm } => {
            (tag::ATTACH, base, size, u8::from(nvm), pmo.raw())
        }
        TraceEvent::Detach { pmo } => (tag::DETACH, 0, 0, 0, pmo.raw()),
        TraceEvent::ThreadSwitch { thread } => (tag::THREAD_SWITCH, 0, 0, 0, thread.raw()),
        TraceEvent::Flush { va } => (tag::FLUSH, va, 0, 0, 0),
        TraceEvent::Fence => (tag::FENCE, 0, 0, 0, 0),
        TraceEvent::Op { kind } => (tag::OP, 0, 0, u8::from(matches!(kind, OpKind::End)), 0),
        TraceEvent::Fault { pmo, kind } => {
            let code = match kind {
                FaultKind::PowerFailure => 0,
                FaultKind::TornWrite => 1,
                FaultKind::MediaError => 2,
            };
            (tag::FAULT, 0, 0, code, pmo.raw())
        }
        TraceEvent::Shootdown { pmo } => (tag::SHOOTDOWN, 0, 0, 0, pmo.raw()),
        TraceEvent::StoreData { va, size, data } => (tag::STORE_DATA, va, data, size, 0),
    }
}

/// Unpacks the shared `(tag, a, b, c, d)` record fields into an event.
///
/// # Errors
///
/// Fails on an unknown tag or fault-kind code.
pub fn unpack_record(t: u8, a: u64, b: u64, c: u8, d: u32) -> io::Result<TraceEvent> {
    Ok(match t {
        tag::COMPUTE => TraceEvent::Compute { count: a as u32 },
        tag::LOAD => TraceEvent::Load { va: a, size: c },
        tag::STORE => TraceEvent::Store { va: a, size: c },
        tag::SET_PERM => TraceEvent::SetPerm { pmo: PmoId::from_raw(d), perm: Perm::decode(c) },
        tag::ATTACH => {
            TraceEvent::Attach { pmo: PmoId::from_raw(d), base: a, size: b, nvm: c != 0 }
        }
        tag::DETACH => TraceEvent::Detach { pmo: PmoId::from_raw(d) },
        tag::THREAD_SWITCH => TraceEvent::ThreadSwitch { thread: ThreadId::new(d) },
        tag::FLUSH => TraceEvent::Flush { va: a },
        tag::FENCE => TraceEvent::Fence,
        tag::OP => TraceEvent::Op { kind: if c != 0 { OpKind::End } else { OpKind::Begin } },
        tag::FAULT => TraceEvent::Fault {
            pmo: PmoId::from_raw(d),
            kind: match c {
                0 => FaultKind::PowerFailure,
                1 => FaultKind::TornWrite,
                2 => FaultKind::MediaError,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown fault kind code {other}"),
                    ))
                }
            },
        },
        tag::SHOOTDOWN => TraceEvent::Shootdown { pmo: PmoId::from_raw(d) },
        tag::STORE_DATA => TraceEvent::StoreData { va: a, size: c, data: b },
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown trace record tag {other}"),
            ))
        }
    })
}

/// One struct-of-arrays block of events.
///
/// Invariant: all five lanes have equal length, every record unpacks
/// cleanly (tags and fault codes validated on construction), and `counts`
/// reflects exactly the events in the lanes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventBlock {
    tags: Vec<u8>,
    va: Vec<u64>,
    aux: Vec<u64>,
    size: Vec<u8>,
    id: Vec<u32>,
    counts: EventCounts,
}

impl EventBlock {
    /// An empty block with capacity for `block_events` events.
    #[must_use]
    pub fn with_capacity(block_events: u32) -> Self {
        let n = block_events as usize;
        EventBlock {
            tags: Vec::with_capacity(n),
            va: Vec::with_capacity(n),
            aux: Vec::with_capacity(n),
            size: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
            counts: EventCounts::new(),
        }
    }

    /// Number of events in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the block holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Appends one event.
    pub fn push(&mut self, ev: &TraceEvent) {
        let (t, a, b, c, d) = pack_record(ev);
        self.tags.push(t);
        self.va.push(a);
        self.aux.push(b);
        self.size.push(c);
        self.id.push(d);
        self.counts.observe(ev);
    }

    /// The tag lane.
    #[must_use]
    pub fn tags(&self) -> &[u8] {
        &self.tags
    }

    /// The `va` lane (record field `a`: address, compute count, attach base).
    #[must_use]
    pub fn va(&self) -> &[u64] {
        &self.va
    }

    /// The `aux` lane (record field `b`: attach size, store payload).
    #[must_use]
    pub fn aux(&self) -> &[u64] {
        &self.aux
    }

    /// The `size` lane (record field `c`: access size, perm/fault codes).
    #[must_use]
    pub fn size(&self) -> &[u8] {
        &self.size
    }

    /// The `id` lane (record field `d`: PMO or thread ID).
    #[must_use]
    pub fn id(&self) -> &[u32] {
        &self.id
    }

    /// Event counts for exactly this block's events.
    #[must_use]
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }

    /// Reconstructs event `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds (records themselves are validated
    /// at construction, so unpacking cannot fail).
    #[must_use]
    pub fn event(&self, i: usize) -> TraceEvent {
        unpack_record(self.tags[i], self.va[i], self.aux[i], self.size[i], self.id[i])
            .expect("block records are validated at construction")
    }

    fn clear(&mut self) {
        self.tags.clear();
        self.va.clear();
        self.aux.clear();
        self.size.clear();
        self.id.clear();
        self.counts = EventCounts::new();
    }
}

/// An owned trace decoded into struct-of-arrays blocks.
///
/// Build one with [`BlockTrace::from_events`], by streaming events into it
/// (it implements [`TraceSink`]), or by decoding an encoded buffer. It
/// replays like any other [`TraceSource`]; the batched replay engine
/// instead iterates [`BlockTrace::blocks`] directly.
#[derive(Clone, Debug, Default)]
pub struct BlockTrace {
    blocks: Vec<EventBlock>,
    block_events: u32,
    total: u64,
}

impl BlockTrace {
    /// An empty trace with the default block size.
    #[must_use]
    pub fn new() -> Self {
        Self::with_block_events(DEFAULT_BLOCK_EVENTS)
    }

    /// An empty trace splitting lanes every `block_events` events.
    ///
    /// # Panics
    ///
    /// Panics if `block_events` is zero.
    #[must_use]
    pub fn with_block_events(block_events: u32) -> Self {
        assert!(block_events > 0, "block size must be nonzero");
        BlockTrace { blocks: Vec::new(), block_events, total: 0 }
    }

    /// Builds a block trace from a recorded event slice.
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut out = Self::new();
        for ev in events {
            out.event(*ev);
        }
        out
    }

    /// Total events across all blocks.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The decoded blocks.
    #[must_use]
    pub fn blocks(&self) -> &[EventBlock] {
        &self.blocks
    }

    /// Event counts merged across all blocks.
    #[must_use]
    pub fn counts(&self) -> EventCounts {
        let mut total = EventCounts::new();
        for block in &self.blocks {
            total.merge(block.counts());
        }
        total
    }

    /// Serializes to the versioned binary block format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.total as usize * 22);
        out.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        out.extend_from_slice(&BLOCK_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.extend_from_slice(&self.block_events.to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        for block in &self.blocks {
            out.extend_from_slice(&(block.len() as u32).to_le_bytes());
            out.extend_from_slice(&block.tags);
            out.extend_from_slice(&block.size);
            for v in &block.id {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for v in &block.va {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for v in &block.aux {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decodes an encoded buffer into owned blocks.
    ///
    /// # Errors
    ///
    /// Fails on a bad magic number, an unsupported version or flags, a
    /// framing mismatch, or an invalid record.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        let reader = BlockReader::new(bytes)?;
        let mut out = Self::with_block_events(reader.block_events().max(1));
        let mut scratch = EventBlock::default();
        for view in reader.blocks() {
            view.read_into(&mut scratch)?;
            out.total += scratch.len() as u64;
            out.blocks.push(std::mem::take(&mut scratch));
        }
        Ok(out)
    }
}

impl TraceSink for BlockTrace {
    fn event(&mut self, ev: TraceEvent) {
        let roll = match self.blocks.last() {
            None => true,
            Some(b) => b.len() >= self.block_events as usize,
        };
        if roll {
            self.blocks.push(EventBlock::with_capacity(self.block_events));
        }
        self.blocks.last_mut().expect("block present").push(&ev);
        self.total += 1;
    }
}

impl TraceSource for BlockTrace {
    fn replay(&self, sink: &mut dyn TraceSink) {
        for block in &self.blocks {
            for i in 0..block.len() {
                sink.event(block.event(i));
            }
        }
    }
}

/// A zero-copy view over an encoded block-format buffer.
///
/// Lanes returned by [`BlockReader::blocks`] borrow the input slice
/// directly — the mmap-style path: map (or read) the file once and replay
/// without materializing events.
#[derive(Clone, Copy, Debug)]
pub struct BlockReader<'a> {
    body: &'a [u8],
    block_events: u32,
    block_count: u32,
    total: u64,
}

impl<'a> BlockReader<'a> {
    /// Validates the header and block framing of an encoded buffer.
    ///
    /// # Errors
    ///
    /// Fails on a bad magic number, an unsupported version or flags, or
    /// truncated / oversized framing.
    pub fn new(bytes: &'a [u8]) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if bytes.len() < HEADER_BYTES {
            return Err(bad("block trace shorter than its header".into()));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if magic != BLOCK_MAGIC {
            return Err(bad("not a PMO block trace".into()));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != BLOCK_VERSION {
            return Err(bad(format!("unsupported block trace version {version}")));
        }
        let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
        if flags != 0 {
            return Err(bad(format!("unsupported block trace flags {flags:#x}")));
        }
        let block_events = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let block_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let total = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let body = &bytes[HEADER_BYTES..];

        // Walk the frame once so iteration can't run off the buffer.
        let mut offset = 0usize;
        let mut seen = 0u64;
        for _ in 0..block_count {
            if body.len() < offset + 4 {
                return Err(bad("truncated block header".into()));
            }
            let n =
                u32::from_le_bytes(body[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            offset = offset
                .checked_add(4 + 22 * n)
                .filter(|end| *end <= body.len())
                .ok_or_else(|| bad("truncated block body".into()))?;
            seen += n as u64;
        }
        if offset != body.len() {
            return Err(bad("trailing bytes after final block".into()));
        }
        if seen != total {
            return Err(bad(format!("header claims {total} events, blocks hold {seen}")));
        }
        Ok(BlockReader { body, block_events, block_count, total })
    }

    /// Total events in the buffer.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the buffer holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The writer's configured events-per-block.
    #[must_use]
    pub fn block_events(&self) -> u32 {
        self.block_events
    }

    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> u32 {
        self.block_count
    }

    /// Iterates borrowed lane views, one per block.
    pub fn blocks(&self) -> impl Iterator<Item = LaneView<'a>> + '_ {
        let mut offset = 0usize;
        let body = self.body;
        (0..self.block_count).map(move |_| {
            // Framing was validated in `new`; these slices cannot be out
            // of bounds.
            let n =
                u32::from_le_bytes(body[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let tags_at = offset + 4;
            let size_at = tags_at + n;
            let id_at = size_at + n;
            let va_at = id_at + 4 * n;
            let aux_at = va_at + 8 * n;
            offset = aux_at + 8 * n;
            LaneView {
                n,
                tags: &body[tags_at..size_at],
                size: &body[size_at..id_at],
                id: &body[id_at..va_at],
                va: &body[va_at..aux_at],
                aux: &body[aux_at..offset],
            }
        })
    }
}

impl TraceSource for BlockReader<'_> {
    /// # Panics
    ///
    /// Panics on a corrupt record (framing is validated when the reader is
    /// built, record contents lazily; use [`BlockTrace::decode`] for fully
    /// fallible decoding).
    fn replay(&self, sink: &mut dyn TraceSink) {
        for view in self.blocks() {
            for i in 0..view.len() {
                sink.event(view.event(i).expect("corrupt block record"));
            }
        }
    }
}

/// Borrowed lanes of one block; all slices alias the encoded buffer.
#[derive(Clone, Copy, Debug)]
pub struct LaneView<'a> {
    n: usize,
    tags: &'a [u8],
    size: &'a [u8],
    id: &'a [u8],
    va: &'a [u8],
    aux: &'a [u8],
}

impl LaneView<'_> {
    /// Number of events in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the block holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The tag lane (one byte per event, borrowed verbatim).
    #[must_use]
    pub fn tags(&self) -> &[u8] {
        self.tags
    }

    /// The size lane (one byte per event, borrowed verbatim).
    #[must_use]
    pub fn size(&self) -> &[u8] {
        self.size
    }

    /// Record field `a` (address lane) of event `i`.
    #[inline]
    #[must_use]
    pub fn va_at(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.va[8 * i..8 * i + 8].try_into().expect("8 bytes"))
    }

    /// Record field `b` (aux lane) of event `i`.
    #[inline]
    #[must_use]
    pub fn aux_at(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.aux[8 * i..8 * i + 8].try_into().expect("8 bytes"))
    }

    /// Record field `d` (ID lane) of event `i`.
    #[inline]
    #[must_use]
    pub fn id_at(&self, i: usize) -> u32 {
        u32::from_le_bytes(self.id[4 * i..4 * i + 4].try_into().expect("4 bytes"))
    }

    /// Reconstructs event `i`.
    ///
    /// # Errors
    ///
    /// Fails on an invalid record.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn event(&self, i: usize) -> io::Result<TraceEvent> {
        assert!(i < self.n, "event index out of bounds");
        unpack_record(self.tags[i], self.va_at(i), self.aux_at(i), self.size[i], self.id_at(i))
    }

    /// Decodes this view into an owned block, reusing `block`'s lane
    /// allocations (the streaming replay path decodes every block into one
    /// scratch block — no per-event or per-block heap churn).
    ///
    /// # Errors
    ///
    /// Fails on an invalid record (unknown tag or fault code).
    pub fn read_into(&self, block: &mut EventBlock) -> io::Result<()> {
        block.clear();
        block.tags.extend_from_slice(self.tags);
        block.size.extend_from_slice(self.size);
        block.id.extend(
            self.id.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))),
        );
        block.va.extend(
            self.va.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
        );
        block.aux.extend(
            self.aux.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
        );
        for i in 0..self.n {
            if block.tags[i] > tag::MAX || (block.tags[i] == tag::FAULT && block.size[i] > 2) {
                let err = self.event(i).expect_err("tag or fault code is invalid");
                block.clear();
                return Err(err);
            }
            block.counts.observe_packed(block.tags[i], block.va[i], block.size[i]);
        }
        Ok(())
    }

    /// Decodes this view into a fresh owned block.
    ///
    /// # Errors
    ///
    /// Fails on an invalid record.
    pub fn to_block(&self) -> io::Result<EventBlock> {
        let mut block = EventBlock::default();
        self.read_into(&mut block)?;
        Ok(block)
    }
}

/// Convenience: records a source's events into a [`BlockTrace`].
#[must_use]
pub fn block_trace_of(source: &dyn TraceSource) -> BlockTrace {
    let mut out = BlockTrace::new();
    source.replay(&mut out);
    out
}

/// Convenience: replays a block trace into a [`RecordedTrace`] (tests).
#[must_use]
pub fn to_recorded(trace: &BlockTrace) -> RecordedTrace {
    let mut out = RecordedTrace::new();
    trace.replay(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Attach {
                pmo: PmoId::new(7),
                base: 0x2000_0000_0000,
                size: 8 << 20,
                nvm: true,
            },
            TraceEvent::ThreadSwitch { thread: ThreadId::new(3) },
            TraceEvent::SetPerm { pmo: PmoId::new(7), perm: Perm::ReadWrite },
            TraceEvent::Load { va: 0x2000_0000_0040, size: 8 },
            TraceEvent::Store { va: 0x2000_0000_0048, size: 4 },
            TraceEvent::StoreData { va: 0x2000_0000_0050, size: 8, data: 0xa11c_0c0a_dead_beef },
            TraceEvent::Compute { count: 1234 },
            TraceEvent::Flush { va: 0x2000_0000_0040 },
            TraceEvent::Fence,
            TraceEvent::Op { kind: OpKind::Begin },
            TraceEvent::Op { kind: OpKind::End },
            TraceEvent::Fault { pmo: PmoId::new(7), kind: FaultKind::TornWrite },
            TraceEvent::Shootdown { pmo: PmoId::new(7) },
            TraceEvent::Detach { pmo: PmoId::new(7) },
        ]
    }

    fn arb_event() -> impl Strategy<Value = TraceEvent> {
        prop_oneof![
            (1u32..5000).prop_map(|count| TraceEvent::Compute { count }),
            (any::<u64>(), 1u8..=64).prop_map(|(va, size)| TraceEvent::Load { va, size }),
            (any::<u64>(), 1u8..=64).prop_map(|(va, size)| TraceEvent::Store { va, size }),
            (any::<u64>(), 1u8..=8, any::<u64>())
                .prop_map(|(va, size, data)| TraceEvent::StoreData { va, size, data }),
            (1u32..64, 0u8..4).prop_map(|(pmo, code)| TraceEvent::SetPerm {
                pmo: PmoId::new(pmo),
                perm: Perm::decode(code),
            }),
            (1u32..64, any::<u64>(), 1u64..(1 << 30), any::<bool>()).prop_map(
                |(pmo, base, size, nvm)| TraceEvent::Attach {
                    pmo: PmoId::new(pmo),
                    base,
                    size,
                    nvm,
                }
            ),
            (1u32..64).prop_map(|pmo| TraceEvent::Detach { pmo: PmoId::new(pmo) }),
            (0u32..16).prop_map(|t| TraceEvent::ThreadSwitch { thread: ThreadId::new(t) }),
            any::<u64>().prop_map(|va| TraceEvent::Flush { va }),
            Just(TraceEvent::Fence),
            Just(TraceEvent::Op { kind: OpKind::Begin }),
            Just(TraceEvent::Op { kind: OpKind::End }),
            (1u32..64, 0u8..3).prop_map(|(pmo, code)| TraceEvent::Fault {
                pmo: PmoId::new(pmo),
                kind: match code {
                    0 => FaultKind::PowerFailure,
                    1 => FaultKind::TornWrite,
                    _ => FaultKind::MediaError,
                },
            }),
            (1u32..64).prop_map(|pmo| TraceEvent::Shootdown { pmo: PmoId::new(pmo) }),
        ]
    }

    #[test]
    fn record_packing_matches_file_format() {
        for ev in sample() {
            let (t, a, b, c, d) = pack_record(&ev);
            assert_eq!(unpack_record(t, a, b, c, d).unwrap(), ev, "{ev:?}");
        }
        assert!(unpack_record(tag::MAX + 1, 0, 0, 0, 0).is_err());
        assert!(unpack_record(tag::FAULT, 0, 0, 3, 0).is_err(), "bad fault code");
    }

    #[test]
    fn blocks_split_at_the_configured_size() {
        let mut trace = BlockTrace::with_block_events(4);
        for ev in sample() {
            trace.event(ev);
        }
        assert_eq!(trace.len(), 14);
        assert_eq!(trace.blocks().len(), 4, "14 events over 4-event blocks");
        assert_eq!(trace.blocks()[0].len(), 4);
        assert_eq!(trace.blocks()[3].len(), 2);
        let merged = trace.counts();
        assert_eq!(merged.events, 14);
        assert_eq!(merged.stores, 2, "Store + StoreData");
        assert_eq!(merged.computes, 1234);
    }

    #[test]
    fn per_block_counts_match_a_streamed_count() {
        let trace = BlockTrace::from_events(&sample());
        let mut streamed = EventCounts::new();
        for ev in sample() {
            streamed.observe(&ev);
        }
        assert_eq!(trace.counts(), streamed);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut trace = BlockTrace::with_block_events(5);
        for ev in sample() {
            trace.event(ev);
        }
        let bytes = trace.encode();
        let back = BlockTrace::decode(&bytes).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(to_recorded(&back).events(), sample().as_slice());
        assert_eq!(back.counts(), trace.counts());
    }

    #[test]
    fn zero_copy_reader_reconstructs_every_event() {
        let trace = BlockTrace::from_events(&sample());
        let bytes = trace.encode();
        let reader = BlockReader::new(&bytes).unwrap();
        assert_eq!(reader.len(), 14);
        assert_eq!(reader.block_events(), DEFAULT_BLOCK_EVENTS);
        let mut replayed = RecordedTrace::new();
        reader.replay(&mut replayed);
        assert_eq!(replayed.events(), sample().as_slice());
        // Lane accessors agree with the reconstructed events.
        let view = reader.blocks().next().unwrap();
        assert_eq!(view.tags()[3], tag::LOAD);
        assert_eq!(view.va_at(3), 0x2000_0000_0040);
        assert_eq!(view.size()[3], 8);
        assert_eq!(view.aux_at(5), 0xa11c_0c0a_dead_beef);
        assert_eq!(view.id_at(0), 7);
    }

    #[test]
    fn rejects_wrong_magic_version_flags_and_framing() {
        let bytes = BlockTrace::from_events(&sample()).encode();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0..4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        assert!(BlockReader::new(&wrong_magic).is_err());

        let mut wrong_version = bytes.clone();
        wrong_version[4..6].copy_from_slice(&(BLOCK_VERSION + 1).to_le_bytes());
        assert!(BlockReader::new(&wrong_version).is_err(), "future version rejected");
        assert!(BlockTrace::decode(&wrong_version).is_err());

        let mut wrong_flags = bytes.clone();
        wrong_flags[6..8].copy_from_slice(&1u16.to_le_bytes());
        assert!(BlockReader::new(&wrong_flags).is_err());

        let truncated = &bytes[..bytes.len() - 1];
        assert!(BlockReader::new(truncated).is_err());

        let mut wrong_total = bytes.clone();
        wrong_total[16..24].copy_from_slice(&999u64.to_le_bytes());
        assert!(BlockReader::new(&wrong_total).is_err());

        assert!(BlockReader::new(b"PMOB").is_err(), "shorter than the header");
    }

    #[test]
    fn decode_rejects_corrupt_records() {
        let trace = BlockTrace::from_events(&sample());
        let mut bytes = trace.encode();
        // First tag byte lives right after the header + block length.
        bytes[HEADER_BYTES + 4] = 250;
        assert!(BlockReader::new(&bytes).is_ok(), "framing is still valid");
        assert!(BlockTrace::decode(&bytes).is_err(), "record validation fails");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = BlockTrace::new();
        let bytes = trace.encode();
        let back = BlockTrace::decode(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.counts(), EventCounts::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn roundtrip_is_identity(
            events in prop::collection::vec(arb_event(), 0..400),
            block_events in 1u32..48,
        ) {
            let mut trace = BlockTrace::with_block_events(block_events);
            for ev in &events {
                trace.event(*ev);
            }
            prop_assert_eq!(trace.len(), events.len() as u64);

            // Owned replay reproduces the input exactly.
            let replayed = to_recorded(&trace);
            prop_assert_eq!(replayed.events(), events.as_slice());

            // Encode -> zero-copy reader -> replay is also the identity.
            let bytes = trace.encode();
            let reader = BlockReader::new(&bytes)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let mut via_reader = RecordedTrace::new();
            reader.replay(&mut via_reader);
            prop_assert_eq!(via_reader.events(), events.as_slice());

            // Encode -> owned decode preserves events and merged counts.
            let back = BlockTrace::decode(&bytes)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let back_recorded = to_recorded(&back);
            prop_assert_eq!(back_recorded.events(), events.as_slice());
            let mut streamed = EventCounts::new();
            for ev in &events {
                streamed.observe(ev);
            }
            prop_assert_eq!(back.counts(), streamed);
        }

        #[test]
        fn truncated_buffers_return_typed_errors(
            events in prop::collection::vec(arb_event(), 0..200),
            cut_seed in any::<u64>(),
        ) {
            let bytes = BlockTrace::from_events(&events).encode();
            // Every strict prefix must fail the frame walk: the header's
            // block count and event total cannot be satisfied by fewer
            // bytes. Typed errors, never a panic or out-of-bounds read.
            let cut = (cut_seed % bytes.len() as u64) as usize;
            let prefix = &bytes[..cut];
            let reader_err =
                BlockReader::new(prefix).err().ok_or_else(|| {
                    TestCaseError::fail(format!("prefix of {cut} bytes accepted"))
                })?;
            prop_assert_eq!(reader_err.kind(), io::ErrorKind::InvalidData);
            let decode_err = BlockTrace::decode(prefix).err().ok_or_else(|| {
                TestCaseError::fail(format!("prefix of {cut} bytes decoded"))
            })?;
            prop_assert_eq!(decode_err.kind(), io::ErrorKind::InvalidData);
        }

        #[test]
        fn bit_flips_never_panic_or_read_out_of_bounds(
            events in prop::collection::vec(arb_event(), 0..200),
            pos_seed in any::<u64>(),
            bit in 0u8..8,
        ) {
            let mut bytes = BlockTrace::from_events(&events).encode();
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << bit;
            // Corruption anywhere — magic, framing, lanes — surfaces as
            // a typed error or a clean decode of the altered contents;
            // never a panic or a read past the buffer.
            match BlockTrace::decode(&bytes) {
                Ok(back) => {
                    let replayed = to_recorded(&back);
                    prop_assert_eq!(replayed.events().len() as u64, back.len());
                }
                Err(e) => prop_assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            }
        }
    }

    #[test]
    fn zero_event_blocks_frame_cleanly_and_lying_totals_error() {
        // A hand-built buffer of three zero-event blocks: a writer never
        // emits one, but the reader must frame it gracefully.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&BLOCK_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes()); // flags
        bytes.extend_from_slice(&8u32.to_le_bytes()); // block_events
        bytes.extend_from_slice(&3u32.to_le_bytes()); // block_count
        bytes.extend_from_slice(&0u64.to_le_bytes()); // total
        for _ in 0..3 {
            bytes.extend_from_slice(&0u32.to_le_bytes()); // n = 0
        }
        let reader = BlockReader::new(&bytes).unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.block_count(), 3);
        assert_eq!(reader.blocks().count(), 3);
        let back = BlockTrace::decode(&bytes).unwrap();
        assert!(back.is_empty());

        // The same frame with a header claiming events no block holds is
        // a typed error, not a crash during iteration.
        bytes[16..24].copy_from_slice(&5u64.to_le_bytes());
        let err = BlockReader::new(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(BlockTrace::decode(&bytes).is_err());
    }
}
