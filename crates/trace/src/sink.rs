//! Streaming trace consumers and replayable producers.

use crate::{EventCounts, TraceEvent, Va};

/// A streaming consumer of trace events.
///
/// Workload generators push events into a sink as they execute; the
/// simulator is itself a sink. Convenience methods cover the common
/// load/store/compute cases.
pub trait TraceSink {
    /// Consume one event.
    fn event(&mut self, ev: TraceEvent);

    /// Convenience: record a load.
    fn load(&mut self, va: Va, size: u8) {
        self.event(TraceEvent::Load { va, size });
    }

    /// Convenience: record a store.
    fn store(&mut self, va: Va, size: u8) {
        self.event(TraceEvent::Store { va, size });
    }

    /// Convenience: record a store that carries its written bytes
    /// (little-endian in the low `size` bytes of `data`, `size <= 8`).
    fn store_valued(&mut self, va: Va, size: u8, data: u64) {
        debug_assert!(size <= 8, "valued stores carry at most 8 bytes");
        self.event(TraceEvent::StoreData { va, size, data });
    }

    /// Convenience: record `count` non-memory instructions.
    fn compute(&mut self, count: u32) {
        if count > 0 {
            self.event(TraceEvent::Compute { count });
        }
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn event(&mut self, ev: TraceEvent) {
        (**self).event(ev);
    }
}

/// A replayable producer of trace events.
///
/// Recorded traces implement this; the simulator replays one source once
/// per protection scheme, mirroring the paper's single-trace methodology.
pub trait TraceSource {
    /// Replay every event, in order, into `sink`.
    fn replay(&self, sink: &mut dyn TraceSink);
}

/// An in-memory recorded trace.
///
/// Useful for tests and small experiments; large workloads should stream
/// directly into the simulator instead (they are deterministic, so the
/// "same trace" property is preserved by reseeding).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedTrace {
    events: Vec<TraceEvent>,
}

impl RecordedTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        RecordedTrace { events: Vec::with_capacity(capacity) }
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over the recorded events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Consumes the trace, returning the raw event vector.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for RecordedTrace {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

impl TraceSource for RecordedTrace {
    fn replay(&self, sink: &mut dyn TraceSink) {
        for ev in &self.events {
            sink.event(*ev);
        }
    }
}

impl FromIterator<TraceEvent> for RecordedTrace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        RecordedTrace { events: iter.into_iter().collect() }
    }
}

impl Extend<TraceEvent> for RecordedTrace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RecordedTrace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for RecordedTrace {
    type Item = TraceEvent;
    type IntoIter = std::vec::IntoIter<TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

/// A sink that discards every event (baseline for generator benchmarks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl NullSink {
    /// Creates a null sink.
    #[must_use]
    pub fn new() -> Self {
        NullSink
    }
}

impl TraceSink for NullSink {
    fn event(&mut self, _ev: TraceEvent) {}
}

/// A sink that only counts events by kind (see [`EventCounts`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    counts: EventCounts,
}

impl CountingSink {
    /// Creates a counting sink with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated counts.
    #[must_use]
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }

    /// Consumes the sink, returning the counts.
    #[must_use]
    pub fn into_counts(self) -> EventCounts {
        self.counts
    }
}

impl TraceSink for CountingSink {
    fn event(&mut self, ev: TraceEvent) {
        self.counts.observe(&ev);
    }
}

/// A sink that duplicates every event into two child sinks.
///
/// Useful to simulate and record simultaneously, or to count while
/// simulating.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// Borrows the first child sink.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// Borrows the second child sink.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Consumes the tee, returning both child sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn event(&mut self, ev: TraceEvent) {
        self.first.event(ev);
        self.second.event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, Perm, PmoId};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Attach { pmo: PmoId::new(1), base: 0x1000, size: 4096, nvm: true },
            TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite },
            TraceEvent::Load { va: 0x1000, size: 8 },
            TraceEvent::Store { va: 0x1008, size: 8 },
            TraceEvent::Compute { count: 12 },
            TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None },
            TraceEvent::Op { kind: OpKind::End },
        ]
    }

    #[test]
    fn recorded_trace_roundtrip() {
        let mut trace = RecordedTrace::new();
        for ev in sample_events() {
            trace.event(ev);
        }
        assert_eq!(trace.len(), 7);
        assert!(!trace.is_empty());

        let mut copy = RecordedTrace::new();
        trace.replay(&mut copy);
        assert_eq!(trace, copy);
    }

    #[test]
    fn recorded_trace_from_iterator() {
        let trace: RecordedTrace = sample_events().into_iter().collect();
        assert_eq!(trace.events(), sample_events().as_slice());
        let back: Vec<_> = trace.clone().into_iter().collect();
        assert_eq!(back, sample_events());
        assert_eq!((&trace).into_iter().count(), 7);
    }

    #[test]
    fn convenience_methods_emit_events() {
        let mut trace = RecordedTrace::new();
        trace.load(0x10, 4);
        trace.store(0x20, 8);
        trace.store_valued(0x28, 4, 0x1234);
        trace.compute(5);
        trace.compute(0); // zero-count compute is elided
        assert_eq!(
            trace.events(),
            &[
                TraceEvent::Load { va: 0x10, size: 4 },
                TraceEvent::Store { va: 0x20, size: 8 },
                TraceEvent::StoreData { va: 0x28, size: 4, data: 0x1234 },
                TraceEvent::Compute { count: 5 },
            ]
        );
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        for ev in sample_events() {
            sink.event(ev);
        }
        let counts = sink.counts();
        assert_eq!(counts.loads, 1);
        assert_eq!(counts.stores, 1);
        assert_eq!(counts.set_perms, 2);
        assert_eq!(counts.attaches, 1);
        assert_eq!(counts.computes, 12);
        assert_eq!(counts.ops, 1);
    }

    #[test]
    fn tee_duplicates() {
        let mut tee = TeeSink::new(RecordedTrace::new(), CountingSink::new());
        for ev in sample_events() {
            tee.event(ev);
        }
        assert_eq!(tee.first().len(), 7);
        assert_eq!(tee.second().counts().set_perms, 2);
        let (rec, counter) = tee.into_inner();
        assert_eq!(rec.len(), 7);
        assert_eq!(counter.into_counts().loads, 1);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink::new();
        for ev in sample_events() {
            sink.event(ev);
        }
    }

    #[test]
    fn sink_works_through_mut_reference() {
        fn fill(sink: &mut impl TraceSink) {
            sink.load(0, 8);
        }
        let mut trace = RecordedTrace::new();
        fill(&mut &mut trace);
        assert_eq!(trace.len(), 1);
    }
}
