//! Per-thread executable code images with registered call-gate regions.
//!
//! ERIM's safety argument (Vahldiek-Oberwagner et al., USENIX Security
//! '19) has two halves: a runtime half (the call-gate discipline the
//! replayed schemes model) and a *static* half — binary inspection of the
//! process's executable pages proving that no key-update instruction
//! sequence exists outside the registered gates. This module supplies the
//! trace-side vocabulary for the static half: a [`CodeImage`] records the
//! byte stream a thread executes from, and its [`GateRegion`]s mark the
//! byte ranges registered as trusted call gates. The analyzer's
//! inspection pass scans these images for WRPKRU-equivalent sequences at
//! *every* byte offset, because an unaligned indirect jump can execute a
//! sequence hidden inside an immediate or spanning two intended
//! instructions.

use crate::ids::{ThreadId, Va};

/// A registered call-gate byte range `[start, end)` inside a
/// [`CodeImage`]: the only place a key-update sequence is allowed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateRegion {
    /// Human-readable gate name (e.g. `"pmo_set_perm"`).
    pub name: String,
    /// First byte offset of the gate, inclusive.
    pub start: u64,
    /// One past the last byte offset of the gate, exclusive.
    pub end: u64,
}

impl GateRegion {
    /// Whether the byte range `[start, end)` lies entirely inside this gate.
    #[must_use]
    pub fn contains(&self, start: u64, end: u64) -> bool {
        start >= self.start && end <= self.end
    }

    /// Whether the byte range `[start, end)` overlaps this gate at all.
    #[must_use]
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        start < self.end && end > self.start
    }
}

/// The executable region of one thread, modeled as a raw instruction-byte
/// stream plus the registered call gates inside it.
///
/// Images are deliberately *not* a [`TraceEvent`](crate::TraceEvent)
/// variant: events are `Copy` and stream at tens of millions per trace,
/// while an image is a one-time sidecar a workload registers with the
/// inspection pass before (or independent of) replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeImage {
    /// Thread this image is mapped executable for.
    pub thread: ThreadId,
    /// Virtual address the image is loaded at (diagnostics report
    /// `base + offset` so sites are clickable against the trace's VAs).
    pub base: Va,
    /// The raw instruction bytes, in execution order.
    pub bytes: Vec<u8>,
    /// Registered call gates, as byte ranges into `bytes`.
    pub gates: Vec<GateRegion>,
}

impl CodeImage {
    /// Creates an image with no registered gates.
    #[must_use]
    pub fn new(thread: ThreadId, base: Va, bytes: Vec<u8>) -> Self {
        CodeImage { thread, base, bytes, gates: Vec::new() }
    }

    /// Registers a call gate covering `[start, end)` and returns the image
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or falls outside the image bytes — a
    /// gate that covers nothing (or bytes that do not exist) is a harness
    /// bug, not a property to report.
    #[must_use]
    pub fn with_gate(mut self, name: &str, start: u64, end: u64) -> Self {
        assert!(start < end, "gate '{name}' is empty ({start}..{end})");
        assert!(
            end <= self.bytes.len() as u64,
            "gate '{name}' ends at {end}, past the {} image bytes",
            self.bytes.len()
        );
        self.gates.push(GateRegion { name: name.to_string(), start, end });
        self
    }

    /// The gate fully containing the byte range `[start, end)`, if any.
    #[must_use]
    pub fn gate_containing(&self, start: u64, end: u64) -> Option<&GateRegion> {
        self.gates.iter().find(|g| g.contains(start, end))
    }

    /// The first gate the byte range `[start, end)` merely *overlaps*
    /// (without being contained), if any — a sequence straddling a gate
    /// boundary is neither provably trusted nor provably reachable.
    #[must_use]
    pub fn gate_straddling(&self, start: u64, end: u64) -> Option<&GateRegion> {
        self.gates.iter().find(|g| g.overlaps(start, end) && !g.contains(start, end))
    }

    /// Number of image bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image has no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_containment_is_inclusive_exclusive() {
        let img = CodeImage::new(ThreadId::MAIN, 0x4000, vec![0x90; 16]).with_gate("g", 4, 8);
        assert!(img.gate_containing(4, 8).is_some());
        assert!(img.gate_containing(5, 7).is_some());
        assert!(img.gate_containing(4, 9).is_none());
        assert!(img.gate_containing(3, 8).is_none());
    }

    #[test]
    fn straddle_is_overlap_without_containment() {
        let img = CodeImage::new(ThreadId::MAIN, 0, vec![0x90; 16]).with_gate("g", 4, 8);
        assert!(img.gate_straddling(6, 10).is_some());
        assert!(img.gate_straddling(2, 6).is_some());
        assert!(img.gate_straddling(5, 7).is_none(), "contained is not a straddle");
        assert!(img.gate_straddling(8, 12).is_none(), "adjacent is not an overlap");
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn gates_must_fit_the_image() {
        let _ = CodeImage::new(ThreadId::MAIN, 0, vec![0x90; 4]).with_gate("g", 2, 8);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gates_must_be_nonempty() {
        let _ = CodeImage::new(ThreadId::MAIN, 0, vec![0x90; 4]).with_gate("g", 2, 2);
    }
}
