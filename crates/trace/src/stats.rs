//! Trace-level statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::{PmoId, TraceEvent, TraceSink};

/// Raw per-kind event counters (populated by
/// [`CountingSink`](crate::CountingSink) or [`EventCounts::observe`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Total trace events observed (one per [`TraceEvent`], regardless of
    /// kind) — the denominator for replay-throughput rates.
    pub events: u64,
    /// Total non-memory instructions (sum of `Compute.count`).
    pub computes: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of permission-switch instructions.
    pub set_perms: u64,
    /// Number of attach system calls.
    pub attaches: u64,
    /// Number of detach system calls.
    pub detaches: u64,
    /// Number of context switches.
    pub thread_switches: u64,
    /// Number of cache-line flushes to persistent memory.
    pub flushes: u64,
    /// Number of fences.
    pub fences: u64,
    /// Number of completed operations (`Op::End` markers).
    pub ops: u64,
    /// Number of injected-fault markers.
    pub faults: u64,
    /// Number of ranged-shootdown completion markers.
    pub shootdowns: u64,
}

impl EventCounts {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates the counters for one event.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match ev {
            TraceEvent::Compute { count } => self.computes += u64::from(*count),
            TraceEvent::Load { .. } => self.loads += 1,
            TraceEvent::Store { .. } | TraceEvent::StoreData { .. } => self.stores += 1,
            TraceEvent::SetPerm { .. } => self.set_perms += 1,
            TraceEvent::Attach { .. } => self.attaches += 1,
            TraceEvent::Detach { .. } => self.detaches += 1,
            TraceEvent::ThreadSwitch { .. } => self.thread_switches += 1,
            TraceEvent::Flush { .. } => self.flushes += 1,
            TraceEvent::Fence => self.fences += 1,
            TraceEvent::Op { kind } => {
                if matches!(kind, crate::OpKind::End) {
                    self.ops += 1;
                }
            }
            TraceEvent::Fault { .. } => self.faults += 1,
            TraceEvent::Shootdown { .. } => self.shootdowns += 1,
        }
    }

    /// Updates the counters for one packed record (tag plus the `a` and
    /// `c` fields of the 22-byte record layout) without constructing a
    /// [`TraceEvent`] — the block decoder's lane-scan equivalent of
    /// [`EventCounts::observe`]. The caller must pass a valid tag.
    pub fn observe_packed(&mut self, tag: u8, a: u64, c: u8) {
        self.events += 1;
        match tag {
            0 => self.computes += a,
            1 => self.loads += 1,
            2 | 12 => self.stores += 1,
            3 => self.set_perms += 1,
            4 => self.attaches += 1,
            5 => self.detaches += 1,
            6 => self.thread_switches += 1,
            7 => self.flushes += 1,
            8 => self.fences += 1,
            9 => self.ops += u64::from(c != 0),
            10 => self.faults += 1,
            11 => self.shootdowns += 1,
            other => debug_assert!(false, "observe_packed on invalid tag {other}"),
        }
    }

    /// Adds another set of counters field-wise (merging per-block counts
    /// into a trace total).
    pub fn merge(&mut self, other: &EventCounts) {
        self.events += other.events;
        self.computes += other.computes;
        self.loads += other.loads;
        self.stores += other.stores;
        self.set_perms += other.set_perms;
        self.attaches += other.attaches;
        self.detaches += other.detaches;
        self.thread_switches += other.thread_switches;
        self.flushes += other.flushes;
        self.fences += other.fences;
        self.ops += other.ops;
        self.faults += other.faults;
        self.shootdowns += other.shootdowns;
    }

    /// Total retired instructions represented by the counted events.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.computes + self.memory_accesses() + self.set_perms + self.flushes + self.fences
    }

    /// Loads plus stores.
    #[must_use]
    pub fn memory_accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

impl fmt::Display for EventCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr ({} compute, {} ld, {} st, {} setperm, {} clwb, {} fence), \
             {} ops, {} attach/{} detach, {} ctx-switches",
            self.instructions(),
            self.computes,
            self.loads,
            self.stores,
            self.set_perms,
            self.flushes,
            self.fences,
            self.ops,
            self.attaches,
            self.detaches,
            self.thread_switches,
        )
    }
}

/// Richer trace statistics: event counts plus the per-PMO attach map and
/// per-PMO access counts (an access is attributed to a PMO when its address
/// falls inside the PMO's attached range).
///
/// This sink is how experiments derive "switches per second" and PMO-access
/// rates without storing the trace.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    counts: EventCounts,
    regions: BTreeMap<u64, (u64, PmoId)>, // base -> (end, pmo)
    per_pmo_accesses: BTreeMap<PmoId, u64>,
    pmo_loads: u64,
    pmo_stores: u64,
}

impl TraceStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw event counters.
    #[must_use]
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }

    /// Loads that hit an attached PMO region.
    #[must_use]
    pub fn pmo_loads(&self) -> u64 {
        self.pmo_loads
    }

    /// Stores that hit an attached PMO region.
    #[must_use]
    pub fn pmo_stores(&self) -> u64 {
        self.pmo_stores
    }

    /// Total accesses (loads + stores) that hit attached PMO regions.
    #[must_use]
    pub fn pmo_accesses(&self) -> u64 {
        self.pmo_loads + self.pmo_stores
    }

    /// Accesses attributed to one PMO (0 if never accessed / unknown).
    #[must_use]
    pub fn accesses_for(&self, pmo: PmoId) -> u64 {
        self.per_pmo_accesses.get(&pmo).copied().unwrap_or(0)
    }

    /// Number of distinct PMOs that were accessed at least once.
    #[must_use]
    pub fn touched_pmos(&self) -> usize {
        self.per_pmo_accesses.len()
    }

    fn lookup(&self, va: u64) -> Option<PmoId> {
        let (_, (end, pmo)) = self.regions.range(..=va).next_back()?;
        (va < *end).then_some(*pmo)
    }

    fn observe_access(&mut self, va: u64, is_store: bool) {
        if let Some(pmo) = self.lookup(va) {
            *self.per_pmo_accesses.entry(pmo).or_insert(0) += 1;
            if is_store {
                self.pmo_stores += 1;
            } else {
                self.pmo_loads += 1;
            }
        }
    }
}

impl TraceSink for TraceStats {
    fn event(&mut self, ev: TraceEvent) {
        self.counts.observe(&ev);
        match ev {
            TraceEvent::Attach { pmo, base, size, .. } => {
                self.regions.insert(base, (base + size, pmo));
            }
            TraceEvent::Detach { pmo } => {
                self.regions.retain(|_, (_, p)| *p != pmo);
            }
            TraceEvent::Load { va, .. } => self.observe_access(va, false),
            TraceEvent::Store { va, .. } | TraceEvent::StoreData { va, .. } => {
                self.observe_access(va, true);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Perm;

    #[test]
    fn attributes_accesses_to_regions() {
        let mut stats = TraceStats::new();
        stats.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: 0x1000,
            size: 0x1000,
            nvm: true,
        });
        stats.event(TraceEvent::Attach {
            pmo: PmoId::new(2),
            base: 0x4000,
            size: 0x1000,
            nvm: true,
        });
        stats.load(0x1004, 8); // pmo 1
        stats.store(0x4ff8, 8); // pmo 2
        stats.load(0x9000, 8); // outside
        assert_eq!(stats.pmo_loads(), 1);
        assert_eq!(stats.pmo_stores(), 1);
        assert_eq!(stats.pmo_accesses(), 2);
        assert_eq!(stats.accesses_for(PmoId::new(1)), 1);
        assert_eq!(stats.accesses_for(PmoId::new(2)), 1);
        assert_eq!(stats.touched_pmos(), 2);
        assert_eq!(stats.counts().loads, 2);
    }

    #[test]
    fn detach_stops_attribution() {
        let mut stats = TraceStats::new();
        stats.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: 0x1000,
            size: 0x1000,
            nvm: true,
        });
        stats.load(0x1000, 8);
        stats.event(TraceEvent::Detach { pmo: PmoId::new(1) });
        stats.load(0x1000, 8);
        assert_eq!(stats.accesses_for(PmoId::new(1)), 1);
        assert_eq!(stats.counts().loads, 2);
    }

    #[test]
    fn boundary_addresses() {
        let mut stats = TraceStats::new();
        stats.event(TraceEvent::Attach {
            pmo: PmoId::new(3),
            base: 0x2000,
            size: 0x100,
            nvm: false,
        });
        stats.load(0x1fff, 1); // one byte before
        stats.load(0x2000, 1); // first byte
        stats.load(0x20ff, 1); // last byte
        stats.load(0x2100, 1); // one past the end
        assert_eq!(stats.accesses_for(PmoId::new(3)), 2);
    }

    #[test]
    fn instruction_totals() {
        let mut counts = EventCounts::new();
        counts.observe(&TraceEvent::Compute { count: 10 });
        counts.observe(&TraceEvent::Load { va: 0, size: 8 });
        counts.observe(&TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        counts.observe(&TraceEvent::Fence);
        counts.observe(&TraceEvent::Flush { va: 0x40 });
        assert_eq!(counts.instructions(), 14);
        assert_eq!(counts.memory_accesses(), 1);
        assert_eq!(counts.events, 5, "one event counted per observe");
        assert!(!format!("{counts}").is_empty());
    }

    #[test]
    fn op_end_counts_ops() {
        let mut counts = EventCounts::new();
        counts.observe(&TraceEvent::Op { kind: crate::OpKind::Begin });
        counts.observe(&TraceEvent::Op { kind: crate::OpKind::End });
        assert_eq!(counts.ops, 1);
    }

    #[test]
    fn valued_stores_count_as_stores() {
        let mut stats = TraceStats::new();
        stats.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: 0x1000,
            size: 0x1000,
            nvm: true,
        });
        stats.store_valued(0x1008, 8, 0xabcd);
        assert_eq!(stats.counts().stores, 1);
        assert_eq!(stats.pmo_stores(), 1);
        assert_eq!(stats.accesses_for(PmoId::new(1)), 1);
    }

    #[test]
    fn faults_count_but_retire_no_instructions() {
        let mut counts = EventCounts::new();
        let fault = TraceEvent::Fault { pmo: PmoId::new(1), kind: crate::FaultKind::MediaError };
        counts.observe(&fault);
        assert_eq!(counts.faults, 1);
        assert_eq!(counts.instructions(), 0);
    }
}
