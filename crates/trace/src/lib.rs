//! Trace event model for the PMO domain-virtualization reproduction.
//!
//! The paper's evaluation methodology is *trace replay*: real applications
//! are instrumented with Intel Pin to obtain an instruction/memory trace,
//! which is then fed to a cycle-level simulator once per protection scheme.
//! This crate is the Pin substitute: it defines the event vocabulary
//! ([`TraceEvent`]), the streaming consumer interface ([`TraceSink`]), the
//! replayable producer interface ([`TraceSource`]), and a set of composable
//! sinks (recording, counting, tee, null).
//!
//! Traces can reach tens of millions of events, so the primary mode of use
//! is *streaming*: a deterministic workload generator pushes events into a
//! sink (usually the simulator) without ever materializing the whole trace.
//! [`RecordedTrace`] materializes events in memory for tests and small runs.
//!
//! # Example
//!
//! ```
//! use pmo_trace::{PmoId, Perm, RecordedTrace, TraceEvent, TraceSink};
//!
//! let mut trace = RecordedTrace::new();
//! trace.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
//! trace.load(0x1000, 8);
//! trace.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
//! assert_eq!(trace.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod block;
mod code;
mod event;
mod file;
mod ids;
mod perm;
mod sink;
mod stats;

pub use audit::{AuditViolation, PermAudit};
pub use block::{BlockReader, BlockTrace, EventBlock, LaneView};
pub use code::{CodeImage, GateRegion};
pub use event::{FaultKind, OpKind, TraceEvent};
pub use file::{TraceFile, TraceFileWriter};
pub use ids::{PmoId, ThreadId, Va};
pub use perm::{AccessKind, Perm};
pub use sink::{CountingSink, NullSink, RecordedTrace, TeeSink, TraceSink, TraceSource};
pub use stats::{EventCounts, TraceStats};
