//! Identifier newtypes shared across the workspace.

use std::fmt;

/// A virtual address.
///
/// Kept as a plain alias rather than a newtype because workload generators
/// and the MMU perform heavy address arithmetic; the aligned-range invariants
/// are enforced where addresses are *created* (the PMO attach layer), per
/// the "static enforcement at the boundary" guideline.
pub type Va = u64;

/// Identifier of a Persistent Memory Object.
///
/// Per the paper (§IV.A), the PMO ID returned by the attach system call *is*
/// the protection-domain ID, so this type doubles as the domain identifier
/// throughout the workspace. ID `0` is reserved as the NULL domain
/// ("domainless" accesses, §IV.D).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PmoId(u32);

impl PmoId {
    /// The reserved NULL domain: accesses outside any PMO.
    pub const NULL: PmoId = PmoId(0);

    /// Creates a PMO/domain ID.
    ///
    /// # Panics
    ///
    /// Panics if `raw == 0`; use [`PmoId::NULL`] to express the reserved
    /// NULL domain explicitly.
    #[must_use]
    pub fn new(raw: u32) -> Self {
        assert_ne!(raw, 0, "PMO id 0 is reserved for the NULL domain");
        PmoId(raw)
    }

    /// Creates an ID without the non-NULL check (for table indexing code).
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        PmoId(raw)
    }

    /// The raw 32-bit value (the paper stores this in DTT/DRT root entries).
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the reserved NULL domain.
    #[must_use]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for PmoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PmoId(NULL)")
        } else {
            write!(f, "PmoId({})", self.0)
        }
    }
}

impl fmt::Display for PmoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a thread within the traced process.
///
/// The Permission Table (PT) of the domain-virtualization design is indexed
/// by `(domain, thread)`, and the PKRU/DTTLB/PTLB are thread-private state,
/// so threads are first-class in traces via
/// [`TraceEvent::ThreadSwitch`](crate::TraceEvent::ThreadSwitch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The main thread of the process.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread ID.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        ThreadId(raw)
    }

    /// The raw index (used to index the Permission Table).
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreadId({})", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_pmo_id_is_zero() {
        assert!(PmoId::NULL.is_null());
        assert_eq!(PmoId::NULL.raw(), 0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_zero() {
        let _ = PmoId::new(0);
    }

    #[test]
    fn from_raw_allows_zero() {
        assert!(PmoId::from_raw(0).is_null());
        assert!(!PmoId::from_raw(7).is_null());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", PmoId::NULL), "PmoId(NULL)");
        assert_eq!(format!("{:?}", PmoId::new(3)), "PmoId(3)");
        assert_eq!(format!("{:?}", ThreadId::new(2)), "ThreadId(2)");
        assert_eq!(format!("{}", PmoId::new(3)), "3");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(PmoId::new(1) < PmoId::new(2));
        assert!(ThreadId::new(0) < ThreadId::new(1));
    }
}
