//! Static permission-window auditing of traces.
//!
//! The paper's security argument (§VI.D) rests on a discipline the
//! *program* must follow: permissions are enabled right before PMO work
//! and disabled right after, so that "at most two PMOs are enabled" at
//! any time and vulnerabilities are confined to the open window. ERIM
//! enforces the analogous property for WRPKRU sites by binary
//! inspection. [`PermAudit`] is the trace-level analogue: it scans an
//! instruction stream and reports every violation of the window
//! discipline, without running a simulator.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Perm, PmoId, ThreadId, TraceEvent, TraceSink, Va};

/// A violation of the permission-window discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditViolation {
    /// A thread accessed an attached PMO without holding a sufficient
    /// grant at that point of the trace.
    UnguardedAccess {
        /// The accessing thread.
        thread: ThreadId,
        /// The PMO accessed.
        pmo: PmoId,
        /// The faulting address.
        va: Va,
        /// Whether the access was a write.
        write: bool,
    },
    /// A thread held more than the allowed number of simultaneously
    /// enabled domains (the paper argues for at most two).
    TooManyOpenWindows {
        /// The offending thread.
        thread: ThreadId,
        /// How many domains were enabled after this grant.
        open: usize,
    },
    /// A grant was still open when the trace ended (a missing revoke:
    /// the window never closed).
    WindowLeftOpen {
        /// The thread holding the grant.
        thread: ThreadId,
        /// The domain still enabled.
        pmo: PmoId,
    },
    /// A PMO was detached while some thread still held a grant on it.
    DetachedWhileGranted {
        /// The thread holding the grant.
        thread: ThreadId,
        /// The detached PMO.
        pmo: PmoId,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::UnguardedAccess { thread, pmo, va, write } => write!(
                f,
                "thread {thread} {} pmo {pmo} at {va:#x} outside a permission window",
                if *write { "wrote" } else { "read" }
            ),
            AuditViolation::TooManyOpenWindows { thread, open } => {
                write!(f, "thread {thread} holds {open} simultaneously enabled domains")
            }
            AuditViolation::WindowLeftOpen { thread, pmo } => {
                write!(f, "thread {thread} left pmo {pmo} enabled at end of trace")
            }
            AuditViolation::DetachedWhileGranted { thread, pmo } => {
                write!(f, "pmo {pmo} detached while thread {thread} still held a grant")
            }
        }
    }
}

/// A [`TraceSink`] that audits permission-window hygiene.
///
/// Feed a trace through it (alone, or tee'd with the simulator) and call
/// [`PermAudit::finish`] for the violation list.
#[derive(Debug)]
pub struct PermAudit {
    /// Attached regions: base -> (end, pmo).
    regions: BTreeMap<Va, (Va, PmoId)>,
    /// Open grants: (thread, pmo) -> perm.
    grants: BTreeMap<(ThreadId, PmoId), Perm>,
    current: ThreadId,
    max_open_windows: usize,
    violations: Vec<AuditViolation>,
}

impl Default for PermAudit {
    fn default() -> Self {
        Self::new()
    }
}

impl PermAudit {
    /// Creates an auditor with the paper's "at most two enabled PMOs"
    /// discipline.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_open_windows(2)
    }

    /// Creates an auditor allowing up to `max` simultaneously enabled
    /// domains per thread.
    #[must_use]
    pub fn with_max_open_windows(max: usize) -> Self {
        PermAudit {
            regions: BTreeMap::new(),
            grants: BTreeMap::new(),
            current: ThreadId::MAIN,
            max_open_windows: max,
            violations: Vec::new(),
        }
    }

    fn pmo_at(&self, va: Va) -> Option<PmoId> {
        let (_, (end, pmo)) = self.regions.range(..=va).next_back()?;
        (va < *end).then_some(*pmo)
    }

    fn open_windows(&self, thread: ThreadId) -> usize {
        self.grants.keys().filter(|(t, _)| *t == thread).count()
    }

    fn check_access(&mut self, va: Va, write: bool) {
        let Some(pmo) = self.pmo_at(va) else { return };
        let held = self.grants.get(&(self.current, pmo)).copied().unwrap_or(Perm::None);
        let ok = if write { held.allows_write() } else { held.allows_read() };
        if !ok {
            self.violations.push(AuditViolation::UnguardedAccess {
                thread: self.current,
                pmo,
                va,
                write,
            });
        }
    }

    /// Violations found so far.
    #[must_use]
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Ends the audit: any still-open window is itself a violation.
    #[must_use]
    pub fn finish(mut self) -> Vec<AuditViolation> {
        let mut open: Vec<(ThreadId, PmoId)> = self.grants.keys().copied().collect();
        open.sort_unstable();
        for (thread, pmo) in open {
            self.violations.push(AuditViolation::WindowLeftOpen { thread, pmo });
        }
        self.violations
    }
}

impl TraceSink for PermAudit {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Attach { pmo, base, size, .. } => {
                self.regions.insert(base, (base + size, pmo));
            }
            TraceEvent::Detach { pmo } => {
                self.regions.retain(|_, (_, p)| *p != pmo);
                let holders: Vec<ThreadId> =
                    self.grants.keys().filter(|(_, p)| *p == pmo).map(|(t, _)| *t).collect();
                for thread in holders {
                    self.grants.remove(&(thread, pmo));
                    self.violations.push(AuditViolation::DetachedWhileGranted { thread, pmo });
                }
            }
            TraceEvent::SetPerm { pmo, perm } => {
                if perm == Perm::None {
                    self.grants.remove(&(self.current, pmo));
                } else {
                    self.grants.insert((self.current, pmo), perm);
                    let open = self.open_windows(self.current);
                    if open > self.max_open_windows {
                        self.violations.push(AuditViolation::TooManyOpenWindows {
                            thread: self.current,
                            open,
                        });
                    }
                }
            }
            TraceEvent::ThreadSwitch { thread } => self.current = thread,
            TraceEvent::Load { va, .. } => self.check_access(va, false),
            TraceEvent::Store { va, .. } | TraceEvent::StoreData { va, .. } => {
                self.check_access(va, true);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Va = 0x1000;

    fn attach(audit: &mut PermAudit, pmo: u32, base: Va) {
        audit.event(TraceEvent::Attach { pmo: PmoId::new(pmo), base, size: 0x1000, nvm: true });
    }

    #[test]
    fn clean_window_passes() {
        let mut audit = PermAudit::new();
        attach(&mut audit, 1, BASE);
        audit.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        audit.store(BASE + 8, 8);
        audit.load(BASE + 8, 8);
        audit.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
        assert!(audit.finish().is_empty());
    }

    #[test]
    fn detects_unguarded_access() {
        let mut audit = PermAudit::new();
        attach(&mut audit, 1, BASE);
        audit.load(BASE, 8); // no grant at all
        audit.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        audit.store(BASE, 8); // read-only grant, write access
        let violations = audit.violations().to_vec();
        assert_eq!(violations.len(), 2);
        assert!(matches!(violations[0], AuditViolation::UnguardedAccess { write: false, .. }));
        assert!(matches!(violations[1], AuditViolation::UnguardedAccess { write: true, .. }));
    }

    #[test]
    fn detects_too_many_open_windows() {
        let mut audit = PermAudit::new(); // max 2
        for i in 1..=3u32 {
            attach(&mut audit, i, BASE * u64::from(i) * 2);
            audit.event(TraceEvent::SetPerm { pmo: PmoId::new(i), perm: Perm::ReadOnly });
        }
        assert!(audit
            .violations()
            .iter()
            .any(|v| matches!(v, AuditViolation::TooManyOpenWindows { open: 3, .. })));
    }

    #[test]
    fn detects_leaked_window_at_end() {
        let mut audit = PermAudit::new();
        attach(&mut audit, 1, BASE);
        audit.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        let violations = audit.finish();
        assert_eq!(
            violations,
            vec![AuditViolation::WindowLeftOpen { thread: ThreadId::MAIN, pmo: PmoId::new(1) }]
        );
    }

    #[test]
    fn grants_are_per_thread() {
        let mut audit = PermAudit::new();
        attach(&mut audit, 1, BASE);
        audit.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        audit.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(1) });
        audit.load(BASE, 8); // thread 1 never got a grant
        assert_eq!(audit.violations().len(), 1);
        // Back on the granting thread: fine.
        audit.event(TraceEvent::ThreadSwitch { thread: ThreadId::MAIN });
        audit.load(BASE, 8);
        assert_eq!(audit.violations().len(), 1);
    }

    #[test]
    fn detects_detach_with_open_grant() {
        let mut audit = PermAudit::new();
        attach(&mut audit, 1, BASE);
        audit.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        audit.event(TraceEvent::Detach { pmo: PmoId::new(1) });
        assert!(matches!(audit.violations()[0], AuditViolation::DetachedWhileGranted { .. }));
        // The grant is gone with the detach; the trace can end cleanly.
        assert_eq!(audit.finish().len(), 1);
    }

    #[test]
    fn violation_display_is_descriptive() {
        let violations = [
            AuditViolation::UnguardedAccess {
                thread: ThreadId::MAIN,
                pmo: PmoId::new(1),
                va: 0x1000,
                write: true,
            },
            AuditViolation::TooManyOpenWindows { thread: ThreadId::MAIN, open: 3 },
            AuditViolation::WindowLeftOpen { thread: ThreadId::MAIN, pmo: PmoId::new(1) },
            AuditViolation::DetachedWhileGranted { thread: ThreadId::MAIN, pmo: PmoId::new(1) },
        ];
        for v in violations {
            assert!(!format!("{v}").is_empty());
        }
    }
}
