//! Error types of the PMO runtime.

use std::error::Error;
use std::fmt;

use pmo_trace::PmoId;

/// Errors returned by the PMO runtime (Table I API and accessors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A pool with this name already exists.
    PoolExists(String),
    /// No pool with this name exists.
    NoSuchPool(String),
    /// The calling user may not attach the pool with the requested intent.
    PermissionDenied {
        /// Pool name.
        name: String,
        /// Why the OS refused.
        reason: &'static str,
    },
    /// The pool requires an attach key and the supplied key was wrong.
    WrongAttachKey(String),
    /// The pool is already attached by this process.
    AlreadyAttached(PmoId),
    /// The PMO is not attached to this process's address space.
    NotAttached(PmoId),
    /// The pool is exclusively attached for writing by another process.
    ExclusivelyHeld(String),
    /// Allocation failed: the pool heap is exhausted.
    OutOfMemory {
        /// Pool.
        pmo: PmoId,
        /// Requested size.
        requested: u64,
    },
    /// The ObjectID does not reference a valid allocation.
    InvalidOid {
        /// The offending OID's raw form.
        oid: u64,
        /// Why it is invalid.
        reason: &'static str,
    },
    /// An access fell outside the pool or the attachment intent
    /// (e.g. a write through a read-only attachment).
    AccessViolation {
        /// Pool.
        pmo: PmoId,
        /// Offset within the pool.
        offset: u64,
        /// Why the access is illegal.
        reason: &'static str,
    },
    /// The transaction log area is full.
    LogFull(PmoId),
    /// The requested size is invalid (zero, or larger than supported).
    InvalidSize(u64),
    /// An injected power failure fired (failure-injection testing): the
    /// store did not execute; the caller should simulate a crash.
    PowerFailure,
    /// A read touched an NVM line that an injected media fault left
    /// unreadable (ECC-uncorrectable). The pool survives; only reads of
    /// the damaged line fail until it is fully overwritten.
    MediaError {
        /// Pool whose backing storage is damaged.
        pmo: PmoId,
        /// Pool-relative byte offset of the damaged cache line.
        offset: u64,
    },
    /// The pool's recovery metadata (header or redo log) is damaged
    /// beyond safe repair; the pool is quarantined and refuses attach
    /// until recreated. Data is preserved on media for forensics.
    PoolQuarantined {
        /// Pool name.
        name: String,
        /// What recovery found wrong.
        reason: &'static str,
    },
    /// The runtime already has an open transaction on this pool;
    /// transactions cannot nest.
    TxnInProgress(PmoId),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::PoolExists(name) => write!(f, "pool `{name}` already exists"),
            RuntimeError::NoSuchPool(name) => write!(f, "no pool named `{name}`"),
            RuntimeError::PermissionDenied { name, reason } => {
                write!(f, "permission denied attaching `{name}`: {reason}")
            }
            RuntimeError::WrongAttachKey(name) => {
                write!(f, "wrong attach key for pool `{name}`")
            }
            RuntimeError::AlreadyAttached(pmo) => write!(f, "pmo {pmo} is already attached"),
            RuntimeError::NotAttached(pmo) => write!(f, "pmo {pmo} is not attached"),
            RuntimeError::ExclusivelyHeld(name) => {
                write!(f, "pool `{name}` is exclusively attached for writing elsewhere")
            }
            RuntimeError::OutOfMemory { pmo, requested } => {
                write!(f, "pool {pmo} cannot allocate {requested} bytes")
            }
            RuntimeError::InvalidOid { oid, reason } => {
                write!(f, "invalid object id {oid:#x}: {reason}")
            }
            RuntimeError::AccessViolation { pmo, offset, reason } => {
                write!(f, "illegal access to pmo {pmo} at offset {offset:#x}: {reason}")
            }
            RuntimeError::LogFull(pmo) => write!(f, "transaction log of pmo {pmo} is full"),
            RuntimeError::InvalidSize(size) => write!(f, "invalid size {size}"),
            RuntimeError::PowerFailure => write!(f, "injected power failure"),
            RuntimeError::MediaError { pmo, offset } => {
                write!(f, "unreadable NVM line in pmo {pmo} at offset {offset:#x}")
            }
            RuntimeError::PoolQuarantined { name, reason } => {
                write!(f, "pool `{name}` is quarantined: {reason}")
            }
            RuntimeError::TxnInProgress(pmo) => {
                write!(f, "a transaction is already open on pmo {pmo}")
            }
        }
    }
}

impl Error for RuntimeError {}

/// Convenience alias used across the runtime.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let errors: Vec<RuntimeError> = vec![
            RuntimeError::PoolExists("a".into()),
            RuntimeError::NoSuchPool("b".into()),
            RuntimeError::PermissionDenied { name: "c".into(), reason: "mode" },
            RuntimeError::WrongAttachKey("d".into()),
            RuntimeError::AlreadyAttached(PmoId::new(1)),
            RuntimeError::NotAttached(PmoId::new(2)),
            RuntimeError::ExclusivelyHeld("e".into()),
            RuntimeError::OutOfMemory { pmo: PmoId::new(3), requested: 64 },
            RuntimeError::InvalidOid { oid: 5, reason: "free" },
            RuntimeError::AccessViolation { pmo: PmoId::new(4), offset: 8, reason: "ro" },
            RuntimeError::LogFull(PmoId::new(5)),
            RuntimeError::InvalidSize(0),
            RuntimeError::PowerFailure,
            RuntimeError::MediaError { pmo: PmoId::new(6), offset: 0x40 },
            RuntimeError::PoolQuarantined { name: "f".into(), reason: "bad magic" },
            RuntimeError::TxnInProgress(PmoId::new(7)),
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }
}
