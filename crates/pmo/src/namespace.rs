//! OS-managed PMO namespace: names, ownership, permission modes, attach
//! keys, and inter-process sharing policy (paper §IV.A, second requirement).

use std::collections::BTreeMap;

use pmo_trace::PmoId;

use crate::error::{Result, RuntimeError};
use crate::storage::PoolStorage;

/// A user identifier (the namespace's permission subject).
pub type Uid = u32;

/// Unix-like permission mode for a pool: read/write for the owning user
/// and for everyone else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mode {
    /// Owner may attach for reading.
    pub owner_read: bool,
    /// Owner may attach for writing.
    pub owner_write: bool,
    /// Other users may attach for reading.
    pub other_read: bool,
    /// Other users may attach for writing.
    pub other_write: bool,
}

impl Mode {
    /// Owner read/write; no access for others (0600).
    #[must_use]
    pub const fn private() -> Self {
        Mode { owner_read: true, owner_write: true, other_read: false, other_write: false }
    }

    /// Owner read/write; others read-only (0644).
    #[must_use]
    pub const fn shared_read() -> Self {
        Mode { owner_read: true, owner_write: true, other_read: true, other_write: false }
    }

    /// Read/write for everyone (0666).
    #[must_use]
    pub const fn shared_write() -> Self {
        Mode { owner_read: true, owner_write: true, other_read: true, other_write: true }
    }

    fn allows(&self, is_owner: bool, write: bool) -> bool {
        match (is_owner, write) {
            (true, false) => self.owner_read,
            (true, true) => self.owner_write,
            (false, false) => self.other_read,
            (false, true) => self.other_write,
        }
    }
}

impl Default for Mode {
    fn default() -> Self {
        Mode::private()
    }
}

/// The intent a process declares when attaching a PMO (§IV.A: "a process
/// can express intent to read (R) or both read and write (RW)").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttachIntent {
    /// Read-only attachment; may be shared among processes.
    Read,
    /// Read-write attachment; exclusive against other writers.
    ReadWrite,
}

impl AttachIntent {
    /// Whether the intent includes writing.
    #[must_use]
    pub const fn writes(self) -> bool {
        matches!(self, AttachIntent::ReadWrite)
    }
}

/// A pool's health as judged by the last recovery that examined it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolHealth {
    /// Recovery metadata is intact; all data readable.
    Healthy,
    /// The pool attached and its metadata is intact, but some data
    /// lines are unreadable (injected or real media damage).
    Degraded,
    /// Recovery metadata itself is damaged; the pool refuses attach.
    Quarantined,
}

/// One registered pool.
#[derive(Debug)]
pub struct PoolEntry {
    /// Stable PMO/domain ID, assigned at creation.
    pub id: PmoId,
    /// Pool name (the namespace key).
    pub name: String,
    /// Owning user.
    pub owner: Uid,
    /// Permission mode.
    pub mode: Mode,
    /// Optional attach key: processes must present it to attach (§IV.A).
    pub attach_key: Option<u64>,
    /// Backing storage.
    pub storage: PoolStorage,
    /// Number of live read-only attachments.
    pub readers: u32,
    /// Number of live read-write attachments (0 or 1: single-writer).
    pub writers: u32,
    /// Sticky quarantine: set when recovery finds the pool's header or
    /// redo log damaged beyond safe repair. A quarantined pool refuses
    /// further attaches (data stays on media for forensics) until
    /// destroyed and recreated.
    pub quarantined: Option<&'static str>,
}

impl PoolEntry {
    /// Lifts a sticky quarantine after the media has been scrubbed.
    ///
    /// Quarantine exists because the pool's recovery metadata cannot be
    /// trusted; releasing it is only safe once nothing of the damaged
    /// image remains, so this refuses while any poisoned line survives.
    /// Returns the reason the pool had been quarantined for (so callers
    /// can log what was recovered from). A repeat media error after
    /// release re-quarantines exactly like the first: release clears the
    /// flag, never the mechanism.
    ///
    /// # Errors
    ///
    /// Fails with [`RuntimeError::PoolQuarantined`] if poisoned lines
    /// remain on media (scrub first).
    pub fn release_quarantine(&mut self) -> Result<Option<&'static str>> {
        if self.storage.poisoned_lines() > 0 {
            return Err(RuntimeError::PoolQuarantined {
                name: self.name.clone(),
                reason: "media still poisoned; scrub before releasing quarantine",
            });
        }
        Ok(self.quarantined.take())
    }

    /// The pool's current health.
    #[must_use]
    pub fn health(&self) -> PoolHealth {
        if self.quarantined.is_some() {
            PoolHealth::Quarantined
        } else if self.storage.poisoned_lines() > 0 {
            PoolHealth::Degraded
        } else {
            PoolHealth::Healthy
        }
    }
}

/// The OS-side PMO registry.
///
/// The namespace implements the paper's inter-process policy: a PMO may be
/// attached by many readers or one writer ("a PMO may be attached
/// exclusively to only one process for writing, but may be attached to
/// multiple processes for reading").
#[derive(Debug, Default)]
pub struct Namespace {
    pools: BTreeMap<String, PoolEntry>,
    names_by_id: BTreeMap<PmoId, String>,
    next_id: u32,
}

impl Namespace {
    /// Creates an empty namespace.
    #[must_use]
    pub fn new() -> Self {
        Namespace { pools: BTreeMap::new(), names_by_id: BTreeMap::new(), next_id: 1 }
    }

    /// Registers a new pool; returns its stable PMO ID.
    pub fn create(&mut self, name: &str, size: u64, mode: Mode, owner: Uid) -> Result<PmoId> {
        if size == 0 {
            return Err(RuntimeError::InvalidSize(size));
        }
        if self.pools.contains_key(name) {
            return Err(RuntimeError::PoolExists(name.to_string()));
        }
        let id = PmoId::new(self.next_id);
        self.next_id += 1;
        let mut storage = PoolStorage::new(size);
        storage.set_owner(id);
        self.pools.insert(
            name.to_string(),
            PoolEntry {
                id,
                name: name.to_string(),
                owner,
                mode,
                attach_key: None,
                storage,
                readers: 0,
                writers: 0,
                quarantined: None,
            },
        );
        self.names_by_id.insert(id, name.to_string());
        Ok(id)
    }

    /// Sets (or clears) a pool's attach key. Only the owner may do this.
    pub fn set_attach_key(&mut self, name: &str, uid: Uid, key: Option<u64>) -> Result<()> {
        let entry = self.entry_mut_by_name(name)?;
        if entry.owner != uid {
            return Err(RuntimeError::PermissionDenied {
                name: name.to_string(),
                reason: "only the owner may change the attach key",
            });
        }
        entry.attach_key = key;
        Ok(())
    }

    /// Validates an attach request and acquires the reader/writer lock.
    /// Returns the pool's PMO ID.
    pub fn acquire(
        &mut self,
        name: &str,
        uid: Uid,
        intent: AttachIntent,
        key: Option<u64>,
    ) -> Result<PmoId> {
        let entry = self.entry_mut_by_name(name)?;
        if let Some(reason) = entry.quarantined {
            return Err(RuntimeError::PoolQuarantined { name: name.to_string(), reason });
        }
        if !entry.mode.allows(entry.owner == uid, intent.writes()) {
            return Err(RuntimeError::PermissionDenied {
                name: name.to_string(),
                reason: "mode forbids the requested intent",
            });
        }
        if entry.attach_key.is_some() && entry.attach_key != key {
            return Err(RuntimeError::WrongAttachKey(name.to_string()));
        }
        match intent {
            AttachIntent::Read => {
                if entry.writers > 0 {
                    return Err(RuntimeError::ExclusivelyHeld(name.to_string()));
                }
                entry.readers += 1;
            }
            AttachIntent::ReadWrite => {
                if entry.writers > 0 || entry.readers > 0 {
                    return Err(RuntimeError::ExclusivelyHeld(name.to_string()));
                }
                entry.writers += 1;
            }
        }
        Ok(entry.id)
    }

    /// Releases an attachment lock previously acquired with
    /// [`Namespace::acquire`].
    pub fn release(&mut self, id: PmoId, intent: AttachIntent) -> Result<()> {
        let entry = self.entry_mut(id)?;
        match intent {
            AttachIntent::Read => entry.readers = entry.readers.saturating_sub(1),
            AttachIntent::ReadWrite => entry.writers = entry.writers.saturating_sub(1),
        }
        Ok(())
    }

    /// Looks up a pool by ID.
    pub fn entry(&self, id: PmoId) -> Result<&PoolEntry> {
        let name = self.names_by_id.get(&id).ok_or(RuntimeError::NotAttached(id))?;
        Ok(&self.pools[name])
    }

    /// Looks up a pool mutably by ID.
    pub fn entry_mut(&mut self, id: PmoId) -> Result<&mut PoolEntry> {
        let name = self.names_by_id.get(&id).ok_or(RuntimeError::NotAttached(id))?.clone();
        Ok(self.pools.get_mut(&name).expect("indexes in sync"))
    }

    /// Looks up a pool mutably by name (the scrub/quarantine-release
    /// path operates on pools that may refuse ID-based attach).
    pub fn entry_mut_by_name(&mut self, name: &str) -> Result<&mut PoolEntry> {
        self.pools.get_mut(name).ok_or_else(|| RuntimeError::NoSuchPool(name.to_string()))
    }

    /// Destroys a pool and its data. Only the owner may destroy it, and
    /// only while nobody has it attached.
    pub fn destroy(&mut self, name: &str, uid: Uid) -> Result<()> {
        let entry = self.entry_mut_by_name(name)?;
        if entry.owner != uid {
            return Err(RuntimeError::PermissionDenied {
                name: name.to_string(),
                reason: "only the owner may destroy a pool",
            });
        }
        if entry.readers > 0 || entry.writers > 0 {
            return Err(RuntimeError::ExclusivelyHeld(name.to_string()));
        }
        let id = entry.id;
        self.pools.remove(name);
        self.names_by_id.remove(&id);
        Ok(())
    }

    /// Iterates over registered pool names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.pools.keys().map(String::as_str)
    }

    /// Whether a pool with this name exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.pools.contains_key(name)
    }

    /// A pool's current health.
    ///
    /// # Errors
    ///
    /// Fails if no pool with this name exists.
    pub fn health(&self, name: &str) -> Result<PoolHealth> {
        self.pools
            .get(name)
            .map(PoolEntry::health)
            .ok_or_else(|| RuntimeError::NoSuchPool(name.to_string()))
    }

    /// Number of registered pools.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// Whether no pools are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Simulates machine power loss: every pool's unflushed lines revert
    /// and all attachment locks evaporate. Returns total lines lost.
    pub fn crash_all(&mut self) -> u64 {
        let mut lost = 0;
        for entry in self.pools.values_mut() {
            lost += entry.storage.crash();
            entry.readers = 0;
            entry.writers = 0;
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_ids_are_stable() {
        let mut ns = Namespace::new();
        let a = ns.create("a", 4096, Mode::private(), 1).unwrap();
        let b = ns.create("b", 4096, Mode::private(), 1).unwrap();
        assert_ne!(a, b);
        assert_eq!(ns.entry(a).unwrap().name, "a");
        assert!(ns.contains("a"));
        assert_eq!(ns.len(), 2);
        assert!(matches!(
            ns.create("a", 4096, Mode::private(), 1),
            Err(RuntimeError::PoolExists(_))
        ));
    }

    #[test]
    fn zero_size_rejected() {
        let mut ns = Namespace::new();
        assert!(matches!(ns.create("z", 0, Mode::private(), 1), Err(RuntimeError::InvalidSize(0))));
    }

    #[test]
    fn permission_mode_enforced() {
        let mut ns = Namespace::new();
        ns.create("secret", 4096, Mode::private(), 1).unwrap();
        // Owner can attach RW.
        let id = ns.acquire("secret", 1, AttachIntent::ReadWrite, None).unwrap();
        ns.release(id, AttachIntent::ReadWrite).unwrap();
        // Other users cannot.
        assert!(matches!(
            ns.acquire("secret", 2, AttachIntent::Read, None),
            Err(RuntimeError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn shared_read_allows_others_reading_only() {
        let mut ns = Namespace::new();
        ns.create("pub", 4096, Mode::shared_read(), 1).unwrap();
        let id = ns.acquire("pub", 2, AttachIntent::Read, None).unwrap();
        ns.release(id, AttachIntent::Read).unwrap();
        assert!(ns.acquire("pub", 2, AttachIntent::ReadWrite, None).is_err());
    }

    #[test]
    fn single_writer_many_readers() {
        let mut ns = Namespace::new();
        ns.create("p", 4096, Mode::shared_write(), 1).unwrap();
        let r1 = ns.acquire("p", 2, AttachIntent::Read, None).unwrap();
        let _r2 = ns.acquire("p", 3, AttachIntent::Read, None).unwrap();
        // Writer blocked while readers exist.
        assert!(matches!(
            ns.acquire("p", 1, AttachIntent::ReadWrite, None),
            Err(RuntimeError::ExclusivelyHeld(_))
        ));
        ns.release(r1, AttachIntent::Read).unwrap();
        ns.release(r1, AttachIntent::Read).unwrap();
        let w = ns.acquire("p", 1, AttachIntent::ReadWrite, None).unwrap();
        // Reader blocked while a writer exists.
        assert!(ns.acquire("p", 2, AttachIntent::Read, None).is_err());
        ns.release(w, AttachIntent::ReadWrite).unwrap();
    }

    #[test]
    fn attach_keys() {
        let mut ns = Namespace::new();
        ns.create("locked", 4096, Mode::shared_write(), 1).unwrap();
        ns.set_attach_key("locked", 1, Some(0xfeed)).unwrap();
        assert!(matches!(
            ns.acquire("locked", 2, AttachIntent::Read, None),
            Err(RuntimeError::WrongAttachKey(_))
        ));
        assert!(matches!(
            ns.acquire("locked", 2, AttachIntent::Read, Some(1)),
            Err(RuntimeError::WrongAttachKey(_))
        ));
        assert!(ns.acquire("locked", 2, AttachIntent::Read, Some(0xfeed)).is_ok());
        // Non-owner cannot change the key.
        assert!(ns.set_attach_key("locked", 2, None).is_err());
    }

    #[test]
    fn crash_releases_locks() {
        let mut ns = Namespace::new();
        ns.create("p", 4096, Mode::private(), 1).unwrap();
        ns.acquire("p", 1, AttachIntent::ReadWrite, None).unwrap();
        ns.crash_all();
        assert!(ns.acquire("p", 1, AttachIntent::ReadWrite, None).is_ok());
    }

    #[test]
    fn destroy_rules() {
        let mut ns = Namespace::new();
        ns.create("p", 4096, Mode::shared_write(), 1).unwrap();
        // Non-owner cannot destroy.
        assert!(matches!(ns.destroy("p", 2), Err(RuntimeError::PermissionDenied { .. })));
        // Attached pools cannot be destroyed.
        let id = ns.acquire("p", 1, AttachIntent::Read, None).unwrap();
        assert!(matches!(ns.destroy("p", 1), Err(RuntimeError::ExclusivelyHeld(_))));
        ns.release(id, AttachIntent::Read).unwrap();
        ns.destroy("p", 1).unwrap();
        assert!(!ns.contains("p"));
        assert!(ns.entry(id).is_err(), "id mapping removed");
        assert_eq!(ns.names().count(), 0);
        // The name can be reused (with a fresh id).
        let id2 = ns.create("p", 4096, Mode::private(), 1).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn quarantined_pools_refuse_attach_until_recreated() {
        let mut ns = Namespace::new();
        ns.create("sick", 4096, Mode::shared_write(), 1).unwrap();
        assert_eq!(ns.entry_mut_by_name("sick").unwrap().health(), PoolHealth::Healthy);
        ns.entry_mut_by_name("sick").unwrap().quarantined = Some("bad magic");
        assert_eq!(ns.entry_mut_by_name("sick").unwrap().health(), PoolHealth::Quarantined);
        assert!(matches!(
            ns.acquire("sick", 1, AttachIntent::ReadWrite, None),
            Err(RuntimeError::PoolQuarantined { reason: "bad magic", .. })
        ));
        // Destroy + recreate yields a fresh, healthy pool.
        ns.destroy("sick", 1).unwrap();
        ns.create("sick", 4096, Mode::shared_write(), 1).unwrap();
        assert!(ns.acquire("sick", 1, AttachIntent::ReadWrite, None).is_ok());
    }

    #[test]
    fn missing_pool_errors() {
        let mut ns = Namespace::new();
        assert!(matches!(
            ns.acquire("ghost", 1, AttachIntent::Read, None),
            Err(RuntimeError::NoSuchPool(_))
        ));
        assert!(ns.entry(PmoId::new(99)).is_err());
    }
}
