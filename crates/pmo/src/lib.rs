//! Persistent Memory Object (PMO) runtime substrate.
//!
//! Implements the pool abstraction the paper builds on (its Table I,
//! following PMDK and Wang et al. \[54\]): OS-managed named pools with
//! permissions and attach keys, attach/detach into aligned virtual-address
//! regions, a persistent heap (`pmalloc`/`pfree`), relocatable 32+32-bit
//! ObjectIDs, durable redo-log transactions, and a crash/recovery model at
//! cache-line persistence granularity.
//!
//! All data operations are *functional* (they move real bytes in simulated
//! NVM) and *instrumented*: every persistent load, store, flush and fence
//! is emitted as a [`pmo_trace::TraceEvent`] so the timing simulator can
//! replay the workload under each protection scheme.
//!
//! # Example
//!
//! ```
//! use pmo_runtime::{AttachIntent, Mode, PmRuntime};
//! use pmo_trace::NullSink;
//!
//! # fn main() -> Result<(), pmo_runtime::RuntimeError> {
//! let mut rt = PmRuntime::new();
//! let mut sink = NullSink::new();
//!
//! // Create a pool, write durably, crash, recover.
//! let pool = rt.pool_create("ledger", 1 << 20, Mode::private(), &mut sink)?;
//! let root = rt.pool_root(pool, 64, &mut sink)?;
//! let mut tx = rt.begin_txn(pool, &mut sink)?;
//! tx.write_u64(root, 0, 1000)?;
//! tx.commit()?;
//!
//! rt.crash();
//! let pool = rt.pool_open("ledger", AttachIntent::ReadWrite, &mut sink)?;
//! let root = rt.pool_root(pool, 64, &mut sink)?;
//! assert_eq!(rt.read_u64(root, 0, &mut sink)?, 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addrspace;
mod error;
mod layout;
mod namespace;
mod oid;
mod runtime;
mod storage;
mod txn;

pub use addrspace::{granule_for, AddressSpace, GRANULES};
pub use error::{Result, RuntimeError};
pub use layout::{hdr, heap_base_for, log_bytes_for, HEADER_SIZE};
pub use namespace::{AttachIntent, Mode, Namespace, PoolEntry, PoolHealth, Uid};
pub use oid::Oid;
pub use runtime::{Attachment, PmRuntime, RecoveryReport, ScrubReport};
pub use storage::{FaultPlan, PoolStorage, LINE};
pub use txn::Transaction;
