//! On-pool metadata layout: header fields, allocation headers, log area.
//!
//! Every pool reserves a 64-byte header followed by a redo-log area used by
//! durable transactions; the allocatable heap starts after the log. All
//! metadata lives *inside* the pool bytes so it is persistent and
//! crash-recoverable like user data.

/// Pool header size in bytes.
pub const HEADER_SIZE: u64 = 64;

/// Byte offsets of the header fields (all `u64`).
pub mod hdr {
    /// Magic number identifying an initialized pool.
    pub const MAGIC: u64 = 0;
    /// Offset of the next unallocated heap byte.
    pub const HEAP_TOP: u64 = 8;
    /// Raw OID of the root object (0 = none).
    pub const ROOT_OID: u64 = 16;
    /// Size of the root object (0 = none).
    pub const ROOT_SIZE: u64 = 24;
    /// Transaction commit flag (0 = idle, 1 = committed log pending apply).
    pub const COMMIT_FLAG: u64 = 32;
    /// Offset of the redo-log area.
    pub const LOG_BASE: u64 = 40;
    /// Size of the redo-log area in bytes.
    pub const LOG_SIZE: u64 = 48;
}

/// Magic value in [`hdr::MAGIC`].
pub const POOL_MAGIC: u64 = 0x504d_4f5f_504f_4f4c; // "PMO_POOL"

/// Magic tag of a live allocation header.
pub const ALLOC_MAGIC: u32 = 0xA110_CA7E;
/// Magic tag of a freed allocation header.
pub const FREED_MAGIC: u32 = 0xF4EE_D000;

/// Bytes of allocation header preceding each object (`size: u32`,
/// `magic: u32`).
pub const ALLOC_HEADER: u64 = 8;

/// Allocation alignment.
pub const ALLOC_ALIGN: u64 = 16;

/// Redo-log area size for a pool of `pool_size` bytes: 1/16 of the pool,
/// clamped to `[256B, 64KB]` and line-aligned.
#[must_use]
pub fn log_bytes_for(pool_size: u64) -> u64 {
    (pool_size / 16).clamp(256, 64 << 10) & !63
}

/// First heap offset for a pool of `pool_size` bytes.
#[must_use]
pub fn heap_base_for(pool_size: u64) -> u64 {
    HEADER_SIZE + log_bytes_for(pool_size)
}

/// Rounds an allocation request up to a slot size (header + alignment).
#[must_use]
pub fn slot_size(request: u64) -> u64 {
    (request + ALLOC_HEADER).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sizing() {
        assert_eq!(log_bytes_for(4096), 256);
        assert_eq!(log_bytes_for(1 << 20), 64 << 10); // capped at 64KB
        assert_eq!(log_bytes_for(8 << 20), 64 << 10);
        assert_eq!(log_bytes_for(4096) % 64, 0);
        assert!(log_bytes_for(100) >= 256);
    }

    #[test]
    fn heap_base_leaves_room() {
        assert_eq!(heap_base_for(4096), 64 + 256);
        assert!(heap_base_for(8 << 20) < 8 << 20);
    }

    #[test]
    fn slot_sizes_are_aligned() {
        assert_eq!(slot_size(1), 16);
        assert_eq!(slot_size(8), 16);
        assert_eq!(slot_size(9), 32);
        assert_eq!(slot_size(64), 80);
        for req in 1..200 {
            assert_eq!(slot_size(req) % ALLOC_ALIGN, 0);
            assert!(slot_size(req) >= req + ALLOC_HEADER);
        }
    }
}
