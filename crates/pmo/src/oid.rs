//! Relocatable object identifiers (pool pointers).
//!
//! Per the paper's Figure 1 (following [11], [54], [55]), a persistent
//! pointer is a 64-bit value split into a 32-bit pool ID and a 32-bit
//! offset within the pool, so a data structure remains valid when its pool
//! is attached at a different virtual address in a later session.

use std::fmt;

use pmo_trace::PmoId;

/// A relocatable pointer to persistent data: 32-bit pool ID ++ 32-bit
/// offset (the paper's `ObjectID`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    pool: PmoId,
    offset: u32,
}

impl Oid {
    /// The null object ID (pool 0 = NULL domain, offset 0).
    pub const NULL: Oid = Oid { pool: PmoId::NULL, offset: 0 };

    /// Creates an object ID.
    #[must_use]
    pub const fn new(pool: PmoId, offset: u32) -> Self {
        Oid { pool, offset }
    }

    /// The pool (PMO/domain) component.
    #[must_use]
    pub const fn pool(self) -> PmoId {
        self.pool
    }

    /// The byte offset within the pool.
    #[must_use]
    pub const fn offset(self) -> u32 {
        self.offset
    }

    /// Whether this is the null OID.
    #[must_use]
    pub const fn is_null(self) -> bool {
        self.pool.is_null() && self.offset == 0
    }

    /// A new OID at `self.offset + delta` in the same pool.
    ///
    /// # Panics
    ///
    /// Panics on offset overflow.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // `delta` is a byte offset, not an `Oid`
    pub fn add(self, delta: u32) -> Self {
        Oid {
            pool: self.pool,
            offset: self.offset.checked_add(delta).expect("oid offset overflow"),
        }
    }

    /// Packs into the 64-bit persistent representation
    /// (`pool` in the high 32 bits, as in Figure 1).
    #[must_use]
    pub const fn to_raw(self) -> u64 {
        ((self.pool.raw() as u64) << 32) | self.offset as u64
    }

    /// Unpacks from the 64-bit persistent representation.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Oid { pool: PmoId::from_raw((raw >> 32) as u32), offset: raw as u32 }
    }
}

impl Default for Oid {
    fn default() -> Self {
        Oid::NULL
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Oid(NULL)")
        } else {
            write!(f, "Oid({}:{:#x})", self.pool, self.offset)
        }
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.pool, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let oid = Oid::new(PmoId::new(7), 0xdead_beef);
        assert_eq!(Oid::from_raw(oid.to_raw()), oid);
        assert_eq!(oid.to_raw(), 0x0000_0007_dead_beef);
    }

    #[test]
    fn null_properties() {
        assert!(Oid::NULL.is_null());
        assert_eq!(Oid::NULL.to_raw(), 0);
        assert_eq!(Oid::from_raw(0), Oid::NULL);
        assert_eq!(Oid::default(), Oid::NULL);
        // Offset 0 in a real pool is NOT null.
        assert!(!Oid::new(PmoId::new(1), 0).is_null());
    }

    #[test]
    fn add_offsets() {
        let oid = Oid::new(PmoId::new(1), 100);
        assert_eq!(oid.add(28).offset(), 128);
        assert_eq!(oid.add(28).pool(), PmoId::new(1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = Oid::new(PmoId::new(1), u32::MAX).add(1);
    }

    #[test]
    fn formatting() {
        assert_eq!(format!("{:?}", Oid::NULL), "Oid(NULL)");
        assert_eq!(format!("{}", Oid::new(PmoId::new(2), 0x40)), "2:0x40");
    }
}
