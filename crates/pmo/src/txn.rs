//! Durable transactions over pool data (redo logging).
//!
//! The WHISPER-style workloads mutate persistent structures inside failure-
//! atomic transactions. The protocol is classic redo logging, executed
//! entirely with the runtime's instrumented accessors so that log traffic
//! (stores, `clwb`s, fences) appears in the trace exactly like it would on
//! real persistent memory:
//!
//! 1. append one log entry per staged write, then a terminator; flush;
//! 2. fence, set the header commit flag, flush, fence;
//! 3. apply the writes home, flush them;
//! 4. fence, clear the commit flag, flush, fence.
//!
//! A crash before (2) loses the transaction entirely; a crash after (2) is
//! repaired on the next attach by [`replay_log_raw`], which re-applies the
//! committed log. Either way the transaction is atomic.
//!
//! Staging lives in the *runtime* ([`PmRuntime::txn_begin`] /
//! [`PmRuntime::txn_commit`]): while a transaction is open, every runtime
//! write against its pool is staged, so whole data-structure operations
//! become failure-atomic without threading a transaction handle through
//! them. [`Transaction`] is an RAII view over that state — dropping it
//! without committing aborts the transaction.

use pmo_trace::{PmoId, TraceSink};

use crate::error::{Result, RuntimeError};
use crate::layout::hdr;
use crate::oid::Oid;
use crate::runtime::{PmRuntime, RecoveryReport};

/// Size of a log entry header: `target u32, len u32, checksum u32, pad u32`.
pub(crate) const ENTRY_HEADER: u64 = 16;

/// Per-record integrity checksum over the entry's target and payload.
pub(crate) fn checksum(target: u32, data: &[u8]) -> u32 {
    let mut sum = target.wrapping_mul(0x9e37_79b9) ^ (data.len() as u32).wrapping_mul(0x85eb_ca6b);
    for (i, b) in data.iter().enumerate() {
        sum = sum.wrapping_add(u32::from(*b).wrapping_mul(i as u32 | 1));
    }
    sum
}

pub(crate) fn padded(len: u64) -> u64 {
    len.div_ceil(8) * 8
}

/// An open durable transaction on one pool (RAII guard over the runtime's
/// staged-transaction state).
///
/// Writes are staged in volatile memory and become persistent atomically at
/// [`Transaction::commit`]; dropping the transaction without committing
/// aborts it (no persistent effect).
pub struct Transaction<'rt, 's> {
    rt: &'rt mut PmRuntime,
    sink: &'s mut dyn TraceSink,
}

impl PmRuntime {
    /// Begins a durable transaction on `pool`.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached, is attached read-only, or a
    /// transaction is already open on the runtime.
    pub fn begin_txn<'rt, 's>(
        &'rt mut self,
        pool: PmoId,
        sink: &'s mut dyn TraceSink,
    ) -> Result<Transaction<'rt, 's>> {
        self.txn_begin(pool)?;
        Ok(Transaction { rt: self, sink })
    }
}

impl Transaction<'_, '_> {
    /// Stages a write of `bytes` at `oid + delta`.
    ///
    /// # Errors
    ///
    /// Fails if the target is not in this transaction's pool or out of
    /// bounds.
    pub fn write_bytes(&mut self, oid: Oid, delta: u32, bytes: &[u8]) -> Result<()> {
        self.rt.write_bytes(oid, delta, bytes, self.sink)
    }

    /// Stages a `u64` write.
    pub fn write_u64(&mut self, oid: Oid, delta: u32, value: u64) -> Result<()> {
        self.write_bytes(oid, delta, &value.to_le_bytes())
    }

    /// Stages a `u32` write.
    pub fn write_u32(&mut self, oid: Oid, delta: u32, value: u32) -> Result<()> {
        self.write_bytes(oid, delta, &value.to_le_bytes())
    }

    /// Stages a persistent-pointer write.
    pub fn write_oid(&mut self, oid: Oid, delta: u32, value: Oid) -> Result<()> {
        self.write_u64(oid, delta, value.to_raw())
    }

    /// Reads bytes with read-your-writes semantics.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds access.
    pub fn read_bytes(&mut self, oid: Oid, delta: u32, buf: &mut [u8]) -> Result<()> {
        self.rt.read_bytes(oid, delta, buf, self.sink)
    }

    /// Reads a `u64` with read-your-writes semantics.
    pub fn read_u64(&mut self, oid: Oid, delta: u32) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read_bytes(oid, delta, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Number of staged writes.
    #[must_use]
    pub fn staged(&self) -> usize {
        self.rt.txn_staged()
    }

    /// Aborts the transaction: every staged write is discarded and the
    /// pool is untouched (equivalent to dropping the guard).
    pub fn abort(self) {
        self.rt.txn_discard();
    }

    /// Commits: writes the redo log, sets the commit flag, applies the
    /// writes home, clears the flag. Atomic with respect to crashes.
    ///
    /// # Errors
    ///
    /// Fails if the staged writes exceed the pool's log area.
    pub fn commit(self) -> Result<()> {
        self.rt.txn_commit(self.sink)
    }
}

impl Drop for Transaction<'_, '_> {
    /// Dropping without committing aborts: the runtime's staged writes
    /// for this transaction are discarded (a committed or aborted guard
    /// has already cleared them, making this a no-op).
    fn drop(&mut self) {
        self.rt.txn_discard();
    }
}

/// Replays a committed redo log directly against pool storage (kernel
/// context: attach-time recovery, no trace emission). Scans entries until
/// the terminator or a corrupt record.
///
/// Per-record hardening: each entry's bounds and checksum are validated
/// before it is applied; the first invalid record ends the replay as a
/// *torn tail* — the remainder is discarded and counted in
/// [`RecoveryReport::truncated_entries`] rather than applied as garbage
/// or panicking. Unreadable (media-damaged) log lines propagate as
/// [`RuntimeError::MediaError`](crate::RuntimeError::MediaError) for the
/// caller to quarantine the pool.
pub(crate) fn replay_log_raw(storage: &mut crate::storage::PoolStorage) -> Result<RecoveryReport> {
    let read_u64 = |storage: &crate::storage::PoolStorage, off: u64| -> Result<u64> {
        let mut buf = [0u8; 8];
        storage.read(off, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    };
    let log_base = read_u64(storage, hdr::LOG_BASE)?;
    let log_size = read_u64(storage, hdr::LOG_SIZE)?;
    let pool_size = storage.size();
    if log_base.checked_add(log_size).is_none_or(|end| end > pool_size || log_base < ENTRY_HEADER) {
        // The log bounds themselves are garbage (damaged header line):
        // nothing can be replayed safely.
        return Err(RuntimeError::MediaError {
            pmo: pmo_trace::PmoId::NULL,
            offset: hdr::LOG_BASE,
        });
    }
    let mut report = RecoveryReport::default();
    let mut cursor = log_base;
    loop {
        if cursor + ENTRY_HEADER > log_base + log_size {
            break;
        }
        let mut head = [0u8; ENTRY_HEADER as usize];
        storage.read(cursor, &mut head)?;
        let target = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        let sum = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        if len == 0 {
            break; // terminator
        }
        let data_off = cursor + ENTRY_HEADER;
        if data_off + u64::from(len) > log_base + log_size
            || u64::from(target) + u64::from(len) > pool_size
        {
            report.truncated_entries += 1;
            break; // torn tail: discard the invalid remainder
        }
        let mut data = vec![0u8; len as usize];
        storage.read(data_off, &mut data)?;
        if checksum(target, &data) != sum {
            report.truncated_entries += 1;
            break; // torn tail: record fails its checksum
        }
        storage.write(u64::from(target), &data)?;
        storage.flush_range(u64::from(target), u64::from(len));
        report.entries_replayed += 1;
        report.bytes_replayed += u64::from(len);
        cursor = data_off + padded(u64::from(len));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::{AttachIntent, Mode};
    use pmo_trace::{CountingSink, NullSink};

    fn setup() -> (PmRuntime, PmoId, Oid) {
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        let pool = rt.pool_create("t", 1 << 20, Mode::private(), &mut sink).unwrap();
        let obj = rt.pmalloc(pool, 256, &mut sink).unwrap();
        (rt, pool, obj)
    }

    #[test]
    fn commit_applies_writes() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        tx.write_u64(obj, 0, 111).unwrap();
        tx.write_u64(obj, 8, 222).unwrap();
        assert_eq!(tx.staged(), 2);
        tx.commit().unwrap();
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 111);
        assert_eq!(rt.read_u64(obj, 8, &mut sink).unwrap(), 222);
    }

    #[test]
    fn abort_discards() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        rt.write_u64(obj, 0, 7, &mut sink).unwrap();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        tx.write_u64(obj, 0, 8).unwrap();
        tx.abort();
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 7);
    }

    #[test]
    fn abort_clears_runtime_staging_and_storage() {
        // Regression test for the empty-bodied abort: staged writes must
        // not leak into storage, the runtime's transaction slot must be
        // free for the next begin, and no log/home stores may have
        // happened.
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        rt.write_u64(obj, 0, 7, &mut sink).unwrap();
        rt.persist(obj, 0, 8, &mut sink).unwrap();
        let stores_before = rt.storage(pool).unwrap().stores();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        tx.write_u64(obj, 0, 8).unwrap();
        tx.write_u64(obj, 64, 9).unwrap();
        assert_eq!(tx.staged(), 2);
        tx.abort();
        assert_eq!(rt.txn_active(), None, "abort frees the runtime's txn slot");
        assert_eq!(rt.txn_staged(), 0);
        assert_eq!(
            rt.storage(pool).unwrap().stores(),
            stores_before,
            "aborted writes never reach storage (no log, no home stores)"
        );
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 7);
        assert_eq!(rt.read_u64(obj, 64, &mut sink).unwrap(), 0);
        // A fresh transaction can begin and commit normally afterwards.
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        tx.write_u64(obj, 0, 10).unwrap();
        tx.commit().unwrap();
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 10);
    }

    #[test]
    fn drop_without_commit_discards_like_abort() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        {
            let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
            tx.write_u64(obj, 0, 0xbad).unwrap();
            // guard dropped here without commit
        }
        assert_eq!(rt.txn_active(), None);
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 0);
    }

    #[test]
    fn transactions_do_not_nest() {
        let (mut rt, pool, _obj) = setup();
        rt.txn_begin(pool).unwrap();
        assert_eq!(rt.txn_begin(pool), Err(RuntimeError::TxnInProgress(pool)));
        rt.txn_discard();
        rt.txn_begin(pool).unwrap();
        rt.txn_discard();
    }

    #[test]
    fn runtime_writes_between_begin_and_commit_are_staged() {
        // The heart of the staging refactor: plain runtime writes (as
        // issued by data-structure operations) become part of the open
        // transaction and commit atomically.
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        rt.txn_begin(pool).unwrap();
        rt.write_u64(obj, 0, 41, &mut sink).unwrap();
        rt.write_u64(obj, 8, 42, &mut sink).unwrap();
        assert_eq!(rt.txn_staged(), 2);
        // Not yet in storage...
        let mut raw = [0u8; 8];
        rt.storage(pool).unwrap().read(u64::from(obj.offset()), &mut raw).unwrap();
        assert_eq!(u64::from_le_bytes(raw), 0);
        // ...but visible through reads (read-your-writes).
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 41);
        rt.txn_commit(&mut sink).unwrap();
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 41);
        assert_eq!(rt.read_u64(obj, 8, &mut sink).unwrap(), 42);
    }

    #[test]
    fn read_your_writes() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        rt.write_u64(obj, 0, 1, &mut sink).unwrap();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        assert_eq!(tx.read_u64(obj, 0).unwrap(), 1, "reads base state");
        tx.write_u64(obj, 0, 2).unwrap();
        assert_eq!(tx.read_u64(obj, 0).unwrap(), 2, "sees staged write");
        tx.write_u64(obj, 0, 3).unwrap();
        assert_eq!(tx.read_u64(obj, 0).unwrap(), 3, "newest staged write wins");
        // Partial overlap.
        tx.write_u32(obj, 4, 0xffff_ffff).unwrap();
        let v = tx.read_u64(obj, 0).unwrap();
        assert_eq!(v & 0xffff_ffff, 3);
        assert_eq!(v >> 32, 0xffff_ffff);
        tx.abort();
    }

    #[test]
    fn crash_before_commit_flag_loses_txn() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        rt.write_u64(obj, 0, 10, &mut sink).unwrap();
        rt.persist(obj, 0, 8, &mut sink).unwrap();
        // Stage but never commit, then crash.
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        tx.write_u64(obj, 0, 20).unwrap();
        drop(tx);
        rt.crash();
        rt.pool_open("t", AttachIntent::ReadWrite, &mut sink).unwrap();
        assert_eq!(rt.last_recovery(), None);
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 10);
    }

    #[test]
    fn committed_log_replays_after_crash() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        tx.write_u64(obj, 0, 0xabcd).unwrap();
        tx.write_u64(obj, 64, 0xef01).unwrap();
        tx.commit().unwrap();
        // Simulate the crash window after the commit point but before the
        // home writes persisted: revert home lines by crashing, then force
        // the commit flag back on (as if the crash happened mid-step-3).
        // We emulate this by directly setting the flag and corrupting home.
        rt.write_u64(obj, 0, 0, &mut sink).unwrap();
        rt.write_header_u64(pool, hdr::COMMIT_FLAG, 1, &mut sink).unwrap();
        rt.flush_header_line(pool, hdr::COMMIT_FLAG, &mut sink).unwrap();
        rt.crash();
        rt.pool_open("t", AttachIntent::ReadWrite, &mut sink).unwrap();
        let report = rt.last_recovery().expect("recovery ran");
        assert_eq!(report.entries_replayed, 2);
        assert_eq!(report.bytes_replayed, 16);
        assert_eq!(report.truncated_entries, 0);
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 0xabcd);
        assert_eq!(rt.read_u64(obj, 64, &mut sink).unwrap(), 0xef01);
    }

    #[test]
    fn corrupt_log_record_truncates_instead_of_applying() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        tx.write_u64(obj, 0, 0x1111).unwrap();
        tx.write_u64(obj, 64, 0x2222).unwrap();
        tx.commit().unwrap();
        // Re-arm the commit flag and corrupt the SECOND log record's
        // payload so its checksum fails; recovery must replay record one,
        // truncate the tail, and report it.
        let log_base = rt.header_u64(pool, hdr::LOG_BASE, &mut sink).unwrap();
        let second_payload = log_base + ENTRY_HEADER + 8 + ENTRY_HEADER;
        rt.write_bytes(Oid::new(pool, second_payload as u32), 0, &[0xFF; 8], &mut sink).unwrap();
        rt.write_u64(obj, 0, 0, &mut sink).unwrap();
        rt.write_u64(obj, 64, 0, &mut sink).unwrap();
        rt.write_header_u64(pool, hdr::COMMIT_FLAG, 1, &mut sink).unwrap();
        rt.flush_header_line(pool, hdr::COMMIT_FLAG, &mut sink).unwrap();
        rt.persist(Oid::new(pool, log_base as u32), 0, 256, &mut sink).unwrap();
        rt.persist(obj, 0, 72, &mut sink).unwrap();
        rt.crash();
        rt.pool_open("t", AttachIntent::ReadWrite, &mut sink).unwrap();
        let report = rt.last_recovery().expect("recovery ran");
        assert_eq!(report.entries_replayed, 1, "first record replays");
        assert_eq!(report.truncated_entries, 1, "corrupt tail is counted");
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 0x1111);
        assert_eq!(rt.read_u64(obj, 64, &mut sink).unwrap(), 0, "corrupt record not applied");
    }

    #[test]
    fn log_full_is_reported() {
        let (mut rt, pool, obj) = setup();
        let mut sink = NullSink::new();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        // The 1MB pool has a 64KB log; stage more than fits.
        let big = vec![0u8; 200];
        for _ in 0..400 {
            tx.write_bytes(obj, 0, &big).unwrap();
        }
        assert!(matches!(tx.commit(), Err(RuntimeError::LogFull(_))));
    }

    #[test]
    fn txn_requires_write_intent() {
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        let pool = rt.pool_create("t", 1 << 20, Mode::shared_read(), &mut sink).unwrap();
        rt.pool_close(pool, &mut sink).unwrap();
        let pool = rt.pool_open("t", AttachIntent::Read, &mut sink).unwrap();
        assert!(rt.begin_txn(pool, &mut sink).is_err());
    }

    #[test]
    fn txn_rejects_foreign_pool_writes() {
        let (mut rt, pool, _obj) = setup();
        let mut sink = NullSink::new();
        let other = rt.pool_create("u", 1 << 20, Mode::private(), &mut sink).unwrap();
        let foreign = rt.pmalloc(other, 64, &mut sink).unwrap();
        let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
        assert!(tx.write_u64(foreign, 0, 1).is_err());
        tx.abort();
    }

    #[test]
    fn empty_commit_is_free() {
        let (mut rt, pool, _obj) = setup();
        let mut counter = CountingSink::new();
        let tx = rt.begin_txn(pool, &mut counter).unwrap();
        tx.commit().unwrap();
        assert_eq!(counter.counts().stores, 0);
    }

    #[test]
    fn commit_emits_persistence_traffic() {
        let (mut rt, pool, obj) = setup();
        let mut counter = CountingSink::new();
        let mut tx = rt.begin_txn(pool, &mut counter).unwrap();
        tx.write_u64(obj, 0, 5).unwrap();
        tx.commit().unwrap();
        let c = counter.counts();
        assert!(c.stores >= 4, "log entry + terminator + flag + home");
        assert!(c.flushes >= 3, "log flush + flag flush + home flush");
        assert!(c.fences >= 3);
    }
}
