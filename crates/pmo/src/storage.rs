//! Simulated non-volatile backing storage.
//!
//! Each pool is a *sparse* byte space representing the current
//! (CPU-visible) contents: 4KB chunks materialize on first write, so a
//! benchmark can declare 1024 x 8MB pools (as the paper's multi-PMO
//! experiments do) while only touched bytes consume host memory.
//!
//! Persistence is modelled at cache-line granularity: a store makes its
//! lines "unflushed" (the NVM still holds the old bytes); an explicit
//! flush persists them; a simulated crash reverts every unflushed line to
//! its last persisted contents. This is exactly the visibility model
//! durable transactions are written against.
//!
//! # Fault injection
//!
//! A [`FaultPlan`] arms the storage with a deterministic fault: after a
//! chosen number of further stores, every write fails with
//! [`RuntimeError::PowerFailure`] until the caller simulates the crash.
//! What the crash does to the media depends on the plan's
//! [`FaultKind`]:
//!
//! - `PowerFailure`: every unflushed line reverts to its persisted image
//!   (the classic model).
//! - `TornWrite`: each unflushed line independently — keyed on
//!   `(seed, line)`, so replayable and independent of iteration order —
//!   persists fully, reverts fully, or *tears*: an 8-byte-word mix of
//!   old and new contents lands on media.
//! - `MediaError`: unflushed lines revert, then a seeded subset of every
//!   line written since the plan was armed becomes unreadable
//!   (ECC-uncorrectable); reads of a poisoned line return
//!   [`RuntimeError::MediaError`] until the whole line is overwritten.

use std::collections::{BTreeMap, BTreeSet};

use pmo_trace::{FaultKind, PmoId};

use crate::error::{Result, RuntimeError};

/// Cache-line size used for persistence granularity.
pub const LINE: u64 = 64;

const CHUNK: u64 = 4096;

/// A deterministic, replayable fault to inject into one pool's storage.
///
/// The fault fires when `after_stores` more writes have executed: from
/// then on every write fails with [`RuntimeError::PowerFailure`] so the
/// caller can only recover by simulating a crash. `seed` drives every
/// per-line random decision the crash makes, so the same plan against
/// the same write sequence always damages the same bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// What happens to the media at the crash.
    pub kind: FaultKind,
    /// Number of further successful stores before writes start failing.
    pub after_stores: u64,
    /// Seed for the per-line crash decisions (ignored by `PowerFailure`).
    pub seed: u64,
}

impl FaultPlan {
    /// A clean power failure after `after_stores` more stores.
    #[must_use]
    pub fn power_failure(after_stores: u64) -> Self {
        FaultPlan { kind: FaultKind::PowerFailure, after_stores, seed: 0 }
    }

    /// A power failure with torn cache-line writes.
    #[must_use]
    pub fn torn_write(after_stores: u64, seed: u64) -> Self {
        FaultPlan { kind: FaultKind::TornWrite, after_stores, seed }
    }

    /// A power failure plus NVM media damage to recently-written lines.
    #[must_use]
    pub fn media_error(after_stores: u64, seed: u64) -> Self {
        FaultPlan { kind: FaultKind::MediaError, after_stores, seed }
    }
}

/// SplitMix64-style finalizer keyed on `(seed, lane)`: every per-line
/// crash decision hashes through this, making outcomes independent of
/// container iteration order and bit-for-bit replayable.
fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One pool's backing storage.
#[derive(Clone, Debug, Default)]
pub struct PoolStorage {
    size: u64,
    chunks: BTreeMap<u64, Box<[u8; CHUNK as usize]>>,
    /// line index -> persisted (pre-write) contents of that line.
    unflushed: BTreeMap<u64, [u8; LINE as usize]>,
    stores: u64,
    flushes: u64,
    /// Armed fault; `after_stores` counts down as writes execute.
    plan: Option<FaultPlan>,
    /// Lines written since the current plan was armed (media-error
    /// poisoning candidates).
    touched: BTreeSet<u64>,
    /// Lines an injected media error left unreadable.
    poisoned: BTreeSet<u64>,
    /// Pool identity reported in media-error diagnostics.
    owner: Option<PmoId>,
}

impl PoolStorage {
    /// Creates zero-initialized storage of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "pool size must be positive");
        PoolStorage { size, ..Self::default() }
    }

    /// Pool size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Host-memory chunks materialized so far (diagnostic).
    #[must_use]
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    fn check(&self, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(RuntimeError::InvalidOid {
                oid: offset,
                reason: "offset range exceeds pool size",
            });
        }
        Ok(())
    }

    fn read_raw(&self, mut offset: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let chunk_idx = offset / CHUNK;
            let within = (offset % CHUNK) as usize;
            let take = (buf.len() - done).min(CHUNK as usize - within);
            match self.chunks.get(&chunk_idx) {
                Some(chunk) => {
                    buf[done..done + take].copy_from_slice(&chunk[within..within + take])
                }
                None => buf[done..done + take].fill(0),
            }
            done += take;
            offset += take as u64;
        }
    }

    fn write_raw(&mut self, mut offset: u64, bytes: &[u8]) {
        let mut done = 0usize;
        while done < bytes.len() {
            let chunk_idx = offset / CHUNK;
            let within = (offset % CHUNK) as usize;
            let take = (bytes.len() - done).min(CHUNK as usize - within);
            let chunk =
                self.chunks.entry(chunk_idx).or_insert_with(|| Box::new([0u8; CHUNK as usize]));
            chunk[within..within + take].copy_from_slice(&bytes[done..done + take]);
            done += take;
            offset += take as u64;
        }
    }

    /// Reads `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds ranges, or with
    /// [`RuntimeError::MediaError`] when the range overlaps a line an
    /// injected media fault left unreadable.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len() as u64)?;
        if !self.poisoned.is_empty() && !buf.is_empty() {
            let first = offset / LINE;
            let last = (offset + buf.len() as u64 - 1) / LINE;
            for line in first..=last {
                if self.poisoned.contains(&line) {
                    return Err(RuntimeError::MediaError {
                        pmo: self.owner.unwrap_or(PmoId::NULL),
                        offset: line * LINE,
                    });
                }
            }
        }
        self.read_raw(offset, buf);
        Ok(())
    }

    /// Sets the pool identity reported by media-error diagnostics.
    pub fn set_owner(&mut self, pmo: PmoId) {
        self.owner = Some(pmo);
    }

    /// Arms a fault: after `plan.after_stores` more successful writes,
    /// every further write fails with
    /// [`RuntimeError::PowerFailure`](crate::RuntimeError::PowerFailure)
    /// until [`PoolStorage::crash`] executes the plan's media effect.
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
        self.touched.clear();
    }

    /// Arms a plain power failure after `stores` more successful writes
    /// (shorthand for [`PoolStorage::inject_fault`] with
    /// [`FaultPlan::power_failure`]).
    pub fn inject_failure_after(&mut self, stores: u64) {
        self.inject_fault(FaultPlan::power_failure(stores));
    }

    /// The currently armed fault plan, if any.
    #[must_use]
    pub fn armed_fault(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Writes `bytes` at `offset`. The touched lines become unflushed.
    ///
    /// A write that covers a poisoned line end-to-end repairs it (the
    /// media controller remaps the line on a full overwrite).
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds ranges or when an armed fault fires.
    pub fn write(&mut self, offset: u64, bytes: &[u8]) -> Result<()> {
        self.check(offset, bytes.len() as u64)?;
        if bytes.is_empty() {
            return Ok(());
        }
        if let Some(plan) = &mut self.plan {
            if plan.after_stores == 0 {
                return Err(RuntimeError::PowerFailure);
            }
            plan.after_stores -= 1;
        }
        // Capture the persisted image of each touched line before the first
        // modification since its last flush.
        let first_line = offset / LINE;
        let last_line = (offset + bytes.len() as u64 - 1) / LINE;
        for line in first_line..=last_line {
            if self.plan.is_some() {
                self.touched.insert(line);
            }
            if !self.unflushed.contains_key(&line) {
                let mut img = [0u8; LINE as usize];
                let base = line * LINE;
                let avail = (self.size - base).min(LINE) as usize;
                self.read_raw(base, &mut img[..avail]);
                self.unflushed.insert(line, img);
            }
            if !self.poisoned.is_empty() {
                let base = line * LINE;
                let valid = (self.size - base).min(LINE);
                if offset <= base && offset + bytes.len() as u64 >= base + valid {
                    self.poisoned.remove(&line);
                }
            }
        }
        self.write_raw(offset, bytes);
        self.stores += 1;
        Ok(())
    }

    /// Persists the line containing `offset` (a `clwb`).
    /// Returns whether the line had unflushed data.
    pub fn flush_line(&mut self, offset: u64) -> bool {
        self.flushes += 1;
        self.unflushed.remove(&(offset / LINE)).is_some()
    }

    /// Persists every line overlapping `[offset, offset + len)`.
    pub fn flush_range(&mut self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut flushed = 0;
        let first = offset / LINE;
        let last = (offset + len - 1) / LINE;
        for line in first..=last {
            if self.flush_line(line * LINE) {
                flushed += 1;
            }
        }
        flushed
    }

    /// Simulates a power loss, executing the armed [`FaultPlan`]'s media
    /// effect (plain revert when no plan is armed). Returns the number
    /// of unflushed lines affected. Disarms the plan; media poison is
    /// durable and survives the crash.
    pub fn crash(&mut self) -> u64 {
        let plan = self.plan.take();
        let touched: Vec<u64> = std::mem::take(&mut self.touched).into_iter().collect();
        let lost = self.unflushed.len() as u64;
        let reverts: Vec<(u64, [u8; LINE as usize])> =
            std::mem::take(&mut self.unflushed).into_iter().collect();
        match plan.map(|p| (p.kind, p.seed)) {
            None | Some((FaultKind::PowerFailure, _)) => {
                for (line, img) in reverts {
                    self.revert_line(line, &img);
                }
            }
            Some((FaultKind::TornWrite, seed)) => {
                for (line, img) in reverts {
                    match mix(seed, line) % 4 {
                        // The line's writeback raced the power loss and won:
                        // the new contents persisted in full.
                        0 => {}
                        // The writeback never started: full revert.
                        1 => self.revert_line(line, &img),
                        // Torn: each 8-byte word independently lands old
                        // or new.
                        _ => self.tear_line(line, &img, seed),
                    }
                }
            }
            Some((FaultKind::MediaError, seed)) => {
                for (line, img) in reverts {
                    self.revert_line(line, &img);
                }
                // A seeded subset of every line written since the plan was
                // armed — flushed or not, so log and header lines are fair
                // game — comes back ECC-uncorrectable.
                for line in touched {
                    if mix(seed, line).is_multiple_of(4) {
                        self.poisoned.insert(line);
                    }
                }
            }
        }
        lost
    }

    fn revert_line(&mut self, line: u64, img: &[u8; LINE as usize]) {
        let base = line * LINE;
        let avail = (self.size - base).min(LINE) as usize;
        self.write_raw(base, &img[..avail]);
    }

    fn tear_line(&mut self, line: u64, img: &[u8; LINE as usize], seed: u64) {
        let base = line * LINE;
        let avail = (self.size - base).min(LINE) as usize;
        let mut current = [0u8; LINE as usize];
        self.read_raw(base, &mut current[..avail]);
        let mut torn = [0u8; LINE as usize];
        for word in 0..(LINE as usize / 8) {
            let span = word * 8..(word + 1) * 8;
            let src = if mix(seed ^ 0xa5a5_a5a5_a5a5_a5a5, line * 8 + word as u64) & 1 == 0 {
                &current // new contents persisted for this word
            } else {
                img // old contents survived for this word
            };
            torn[span.clone()].copy_from_slice(&src[span]);
        }
        self.write_raw(base, &torn[..avail]);
    }

    /// The pool's current (CPU-visible) byte image at cache-line
    /// granularity: every line with any non-zero byte, sorted by line
    /// index. Zero lines are omitted — a fresh pool reads as zero, so
    /// installing the returned pairs into a new pool of the same size
    /// reproduces the image exactly.
    #[must_use]
    pub fn line_image(&self) -> Vec<(u64, [u8; LINE as usize])> {
        let mut chunk_indices: Vec<u64> = self.chunks.keys().copied().collect();
        chunk_indices.sort_unstable();
        let mut out = Vec::new();
        for chunk_idx in chunk_indices {
            let chunk = &self.chunks[&chunk_idx];
            for i in 0..(CHUNK / LINE) {
                let span = (i * LINE) as usize..((i + 1) * LINE) as usize;
                let bytes = &chunk[span];
                if bytes.iter().any(|&b| b != 0) {
                    let mut img = [0u8; LINE as usize];
                    img.copy_from_slice(bytes);
                    out.push((chunk_idx * (CHUNK / LINE) + i, img));
                }
            }
        }
        out
    }

    /// Installs a cache line's image directly onto media: no store
    /// counter, no fault countdown, no pre-image capture. The line is
    /// *persisted* after the call (a later crash does not revert it).
    /// This is the crash-image materialization primitive: an enumerated
    /// image is a set of persisted lines, by definition.
    ///
    /// # Panics
    ///
    /// Panics if the line lies outside the pool.
    pub fn install_line(&mut self, line: u64, img: &[u8; LINE as usize]) {
        let base = line * LINE;
        assert!(base < self.size, "installed line {line} lies outside the pool");
        let avail = (self.size - base).min(LINE) as usize;
        self.write_raw(base, &img[..avail]);
        self.unflushed.remove(&line);
    }

    /// Scrubs the pool's media back to a factory-fresh state: every byte
    /// reads as zero again, unflushed lines are discarded (nothing left
    /// to revert), media poison is cleared (the controller remaps every
    /// damaged line), and any armed fault plan is disarmed. Lifetime
    /// store/flush counters survive — a scrub is maintenance, not a new
    /// device.
    ///
    /// This is the recovery half of quarantine release: a quarantined
    /// pool's contents are preserved for forensics until the operator
    /// explicitly scrubs, after which the pool can be reformatted and
    /// re-admitted. Returns the number of poisoned lines cleared.
    pub fn scrub(&mut self) -> u64 {
        let cleared = self.poisoned.len() as u64;
        self.chunks.clear();
        self.unflushed.clear();
        self.poisoned.clear();
        self.touched.clear();
        self.plan = None;
        cleared
    }

    /// Number of lines an injected media fault currently leaves
    /// unreadable.
    #[must_use]
    pub fn poisoned_lines(&self) -> usize {
        self.poisoned.len()
    }

    /// Whether the line containing `offset` is unreadable.
    #[must_use]
    pub fn is_poisoned(&self, offset: u64) -> bool {
        self.poisoned.contains(&(offset / LINE))
    }

    /// Number of currently unflushed (volatile) lines.
    #[must_use]
    pub fn unflushed_lines(&self) -> usize {
        self.unflushed.len()
    }

    /// Total store operations performed.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Total flush operations performed.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = PoolStorage::new(4096);
        s.write(100, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        s.read(100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn sparse_chunks_materialize_lazily() {
        let mut s = PoolStorage::new(8 << 20); // 8MB pool
        assert_eq!(s.resident_chunks(), 0);
        s.write(5 << 20, &[9; 8]).unwrap();
        assert_eq!(s.resident_chunks(), 1, "only the touched chunk exists");
        let mut buf = [0u8; 8];
        s.read(1 << 20, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "untouched space reads as zero");
        s.read(5 << 20, &mut buf).unwrap();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn write_spanning_chunks() {
        let mut s = PoolStorage::new(16384);
        let data: Vec<u8> = (0..200).collect();
        s.write(4000, &data).unwrap(); // crosses the 4096 boundary
        let mut buf = vec![0u8; 200];
        s.read(4000, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(s.resident_chunks(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut s = PoolStorage::new(128);
        assert!(s.write(120, &[0; 16]).is_err());
        let mut buf = [0u8; 16];
        assert!(s.read(u64::MAX, &mut buf).is_err());
        assert!(s.read(128, &mut buf[..1]).is_err());
        // Exactly at the boundary is fine.
        assert!(s.write(112, &[0; 16]).is_ok());
    }

    #[test]
    fn crash_reverts_unflushed_lines() {
        let mut s = PoolStorage::new(256);
        s.write(0, &[0xAA; 8]).unwrap();
        s.flush_line(0);
        s.write(0, &[0xBB; 8]).unwrap(); // unflushed overwrite
        s.write(64, &[0xCC; 8]).unwrap(); // unflushed new line
        assert_eq!(s.unflushed_lines(), 2);
        let lost = s.crash();
        assert_eq!(lost, 2);
        let mut buf = [0u8; 8];
        s.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0xAA; 8], "flushed data survives");
        s.read(64, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "never-flushed line reverts to zero");
    }

    #[test]
    fn flush_makes_data_durable() {
        let mut s = PoolStorage::new(256);
        s.write(10, &[7; 4]).unwrap();
        assert_eq!(s.flush_range(10, 4), 1);
        s.crash();
        let mut buf = [0u8; 4];
        s.read(10, &mut buf).unwrap();
        assert_eq!(buf, [7; 4]);
    }

    #[test]
    fn write_spanning_lines_tracks_both() {
        let mut s = PoolStorage::new(256);
        s.write(60, &[1; 8]).unwrap(); // spans lines 0 and 1
        assert_eq!(s.unflushed_lines(), 2);
        assert_eq!(s.flush_range(60, 8), 2);
        assert_eq!(s.unflushed_lines(), 0);
    }

    #[test]
    fn flush_of_clean_line_is_noop() {
        let mut s = PoolStorage::new(256);
        assert!(!s.flush_line(0));
        assert_eq!(s.flush_range(0, 0), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = PoolStorage::new(256);
        s.write(0, &[1]).unwrap();
        s.write(1, &[2]).unwrap();
        s.flush_line(0);
        assert_eq!(s.stores(), 2);
        assert_eq!(s.flushes(), 1);
    }

    #[test]
    fn torn_write_crash_mixes_old_and_new_per_line() {
        // With many unflushed lines and a fixed seed, a torn-write crash
        // must leave some lines fully new, some fully old, and the rest
        // word-mixed — and must do so identically on a replay.
        let run = |seed: u64| -> Vec<[u8; 64]> {
            let mut s = PoolStorage::new(64 * 64);
            for line in 0..64u64 {
                s.write(line * 64, &[0x11u8; 64]).unwrap();
            }
            s.flush_range(0, 64 * 64);
            s.inject_fault(FaultPlan::torn_write(u64::MAX, seed));
            for line in 0..64u64 {
                s.write(line * 64, &[0xEEu8; 64]).unwrap();
            }
            s.crash();
            (0..64u64)
                .map(|line| {
                    let mut buf = [0u8; 64];
                    s.read(line * 64, &mut buf).unwrap();
                    buf
                })
                .collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "torn-write outcome must be seed-deterministic");
        let fully_new = a.iter().filter(|l| l.iter().all(|&b| b == 0xEE)).count();
        let fully_old = a.iter().filter(|l| l.iter().all(|&b| b == 0x11)).count();
        let torn = 64 - fully_new - fully_old;
        assert!(fully_new > 0 && fully_old > 0 && torn > 0, "{fully_new}/{fully_old}/{torn}");
        // Torn lines tear at word granularity: every 8-byte word is
        // entirely old or entirely new.
        for line in &a {
            for word in line.chunks(8) {
                assert!(
                    word.iter().all(|&b| b == 0x11) || word.iter().all(|&b| b == 0xEE),
                    "torn line must mix at word granularity: {word:?}"
                );
            }
        }
        assert_ne!(run(8), a, "different seeds should damage different lines");
    }

    #[test]
    fn media_error_poisons_touched_lines_until_overwritten() {
        let mut s = PoolStorage::new(64 * 64);
        s.inject_fault(FaultPlan::media_error(u64::MAX, 3));
        for line in 0..64u64 {
            s.write(line * 64, &[5u8; 64]).unwrap();
        }
        s.flush_range(0, 64 * 64); // flushed lines are still poisoning candidates
        s.crash();
        let poisoned: Vec<u64> = (0..64u64).filter(|&line| s.is_poisoned(line * 64)).collect();
        assert!(!poisoned.is_empty(), "seed 3 should poison some of 64 touched lines");
        assert_eq!(s.poisoned_lines(), poisoned.len());
        let line = poisoned[0];
        let mut buf = [0u8; 8];
        match s.read(line * 64, &mut buf) {
            Err(RuntimeError::MediaError { offset, .. }) => assert_eq!(offset, line * 64),
            other => panic!("expected MediaError, got {other:?}"),
        }
        // Partial overwrite does not repair the line...
        s.write(line * 64, &[1u8; 8]).unwrap();
        assert!(s.is_poisoned(line * 64));
        // ...a full-line overwrite does.
        s.write(line * 64, &[1u8; 64]).unwrap();
        assert!(!s.is_poisoned(line * 64));
        s.read(line * 64, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
    }

    #[test]
    fn media_poison_survives_later_crashes() {
        let mut s = PoolStorage::new(256);
        s.inject_fault(FaultPlan::media_error(u64::MAX, 0));
        // Seed 0: find a line that gets poisoned by touching several.
        for line in 0..4u64 {
            s.write(line * 64, &[9u8; 64]).unwrap();
        }
        s.crash();
        let before = s.poisoned_lines();
        s.crash(); // plain crash, no plan armed
        assert_eq!(s.poisoned_lines(), before, "media damage is durable");
    }

    #[test]
    fn armed_fault_reports_plan_and_crash_disarms() {
        let mut s = PoolStorage::new(256);
        assert_eq!(s.armed_fault(), None);
        s.inject_fault(FaultPlan::torn_write(2, 42));
        assert_eq!(s.armed_fault().map(|p| p.seed), Some(42));
        s.write(0, &[1]).unwrap();
        assert_eq!(
            s.armed_fault().map(|p| p.after_stores),
            Some(1),
            "countdown decrements per store"
        );
        s.write(0, &[2]).unwrap();
        assert_eq!(s.write(0, &[3]), Err(RuntimeError::PowerFailure));
        s.crash();
        assert_eq!(s.armed_fault(), None);
        s.write(0, &[4]).unwrap();
    }

    #[test]
    fn line_image_roundtrips_through_install() {
        let mut s = PoolStorage::new(16384);
        s.write(0, &[0xAB; 64]).unwrap();
        s.write(5000, &[0xCD; 16]).unwrap(); // chunk 1, mid-line
        s.flush_range(0, 16384);
        let image = s.line_image();
        let lines: Vec<u64> = image.iter().map(|&(l, _)| l).collect();
        assert_eq!(lines, vec![0, 78], "sorted, zero lines omitted");
        let mut fresh = PoolStorage::new(16384);
        for (line, img) in &image {
            fresh.install_line(*line, img);
        }
        assert_eq!(fresh.line_image(), image, "install reproduces the image");
        assert_eq!(fresh.stores(), 0, "install bypasses the store counter");
        // Installed lines are persisted: a crash does not revert them.
        fresh.crash();
        let mut buf = [0u8; 16];
        fresh.read(5000, &mut buf).unwrap();
        assert_eq!(buf, [0xCD; 16]);
    }

    #[test]
    fn install_line_bypasses_armed_fault() {
        let mut s = PoolStorage::new(256);
        s.inject_fault(FaultPlan::power_failure(0));
        assert_eq!(s.write(0, &[1]), Err(RuntimeError::PowerFailure));
        s.install_line(0, &[7u8; 64]); // kernel-context install still works
        let mut buf = [0u8; 1];
        s.read(0, &mut buf).unwrap();
        assert_eq!(buf, [7]);
    }

    #[test]
    fn scrub_clears_media_poison_and_armed_faults() {
        let mut s = PoolStorage::new(64 * 64);
        s.inject_fault(FaultPlan::media_error(u64::MAX, 3));
        for line in 0..64u64 {
            s.write(line * 64, &[5u8; 64]).unwrap();
        }
        s.crash();
        assert!(s.poisoned_lines() > 0, "seed 3 poisons some touched lines");
        let stores_before = s.stores();
        // Arm another fault, then scrub: poison, contents, and the plan
        // all go; counters survive.
        s.inject_fault(FaultPlan::power_failure(0));
        let cleared = s.scrub();
        assert!(cleared > 0, "scrub reports the poisoned lines it cleared");
        assert_eq!(s.poisoned_lines(), 0);
        assert_eq!(s.unflushed_lines(), 0);
        assert_eq!(s.armed_fault(), None, "scrub disarms the fault plan");
        assert_eq!(s.resident_chunks(), 0, "scrubbed media is zero again");
        assert_eq!(s.stores(), stores_before, "lifetime counters survive");
        let mut buf = [0u8; 8];
        s.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        s.write(0, &[1u8; 8]).unwrap(); // no armed fault fires
    }

    #[test]
    fn scrub_then_repoison_still_works() {
        // A scrub must not make later media faults any less sticky.
        let mut s = PoolStorage::new(64 * 64);
        s.inject_fault(FaultPlan::media_error(u64::MAX, 3));
        for line in 0..64u64 {
            s.write(line * 64, &[5u8; 64]).unwrap();
        }
        s.crash();
        s.scrub();
        assert_eq!(s.poisoned_lines(), 0);
        s.inject_fault(FaultPlan::media_error(u64::MAX, 3));
        for line in 0..64u64 {
            s.write(line * 64, &[6u8; 64]).unwrap();
        }
        s.crash();
        assert!(s.poisoned_lines() > 0, "post-scrub faults poison exactly as before");
    }

    #[test]
    fn partial_tail_line_pool() {
        // A pool whose size is not a multiple of the line size still
        // crashes/flushes correctly on its tail.
        let mut s = PoolStorage::new(100);
        s.write(96, &[9; 4]).unwrap();
        s.crash();
        let mut buf = [0u8; 4];
        s.read(96, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }
}
