//! Simulated non-volatile backing storage.
//!
//! Each pool is a *sparse* byte space representing the current
//! (CPU-visible) contents: 4KB chunks materialize on first write, so a
//! benchmark can declare 1024 x 8MB pools (as the paper's multi-PMO
//! experiments do) while only touched bytes consume host memory.
//!
//! Persistence is modelled at cache-line granularity: a store makes its
//! lines "unflushed" (the NVM still holds the old bytes); an explicit
//! flush persists them; a simulated crash reverts every unflushed line to
//! its last persisted contents. This is exactly the visibility model
//! durable transactions are written against.

use std::collections::HashMap;

use crate::error::{Result, RuntimeError};

/// Cache-line size used for persistence granularity.
pub const LINE: u64 = 64;

const CHUNK: u64 = 4096;

/// One pool's backing storage.
#[derive(Clone, Debug, Default)]
pub struct PoolStorage {
    size: u64,
    chunks: HashMap<u64, Box<[u8; CHUNK as usize]>>,
    /// line index -> persisted (pre-write) contents of that line.
    unflushed: HashMap<u64, [u8; LINE as usize]>,
    stores: u64,
    flushes: u64,
    /// Failure injection: the write with this countdown at 0 fails.
    fail_after: Option<u64>,
}

impl PoolStorage {
    /// Creates zero-initialized storage of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "pool size must be positive");
        PoolStorage { size, ..Self::default() }
    }

    /// Pool size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Host-memory chunks materialized so far (diagnostic).
    #[must_use]
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    fn check(&self, offset: u64, len: u64) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(RuntimeError::InvalidOid {
                oid: offset,
                reason: "offset range exceeds pool size",
            });
        }
        Ok(())
    }

    fn read_raw(&self, mut offset: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let chunk_idx = offset / CHUNK;
            let within = (offset % CHUNK) as usize;
            let take = (buf.len() - done).min(CHUNK as usize - within);
            match self.chunks.get(&chunk_idx) {
                Some(chunk) => buf[done..done + take].copy_from_slice(&chunk[within..within + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
            offset += take as u64;
        }
    }

    fn write_raw(&mut self, mut offset: u64, bytes: &[u8]) {
        let mut done = 0usize;
        while done < bytes.len() {
            let chunk_idx = offset / CHUNK;
            let within = (offset % CHUNK) as usize;
            let take = (bytes.len() - done).min(CHUNK as usize - within);
            let chunk = self
                .chunks
                .entry(chunk_idx)
                .or_insert_with(|| Box::new([0u8; CHUNK as usize]));
            chunk[within..within + take].copy_from_slice(&bytes[done..done + take]);
            done += take;
            offset += take as u64;
        }
    }

    /// Reads `buf.len()` bytes at `offset`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len() as u64)?;
        self.read_raw(offset, buf);
        Ok(())
    }

    /// Arms failure injection: after `stores` more successful writes,
    /// every further write fails with
    /// [`RuntimeError::PowerFailure`](crate::RuntimeError::PowerFailure)
    /// until [`PoolStorage::crash`] runs.
    pub fn inject_failure_after(&mut self, stores: u64) {
        self.fail_after = Some(stores);
    }

    /// Writes `bytes` at `offset`. The touched lines become unflushed.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds ranges or when armed failure injection fires.
    pub fn write(&mut self, offset: u64, bytes: &[u8]) -> Result<()> {
        self.check(offset, bytes.len() as u64)?;
        if bytes.is_empty() {
            return Ok(());
        }
        if let Some(remaining) = &mut self.fail_after {
            if *remaining == 0 {
                return Err(RuntimeError::PowerFailure);
            }
            *remaining -= 1;
        }
        // Capture the persisted image of each touched line before the first
        // modification since its last flush.
        let first_line = offset / LINE;
        let last_line = (offset + bytes.len() as u64 - 1) / LINE;
        for line in first_line..=last_line {
            if !self.unflushed.contains_key(&line) {
                let mut img = [0u8; LINE as usize];
                let base = line * LINE;
                let avail = (self.size - base).min(LINE) as usize;
                self.read_raw(base, &mut img[..avail]);
                self.unflushed.insert(line, img);
            }
        }
        self.write_raw(offset, bytes);
        self.stores += 1;
        Ok(())
    }

    /// Persists the line containing `offset` (a `clwb`).
    /// Returns whether the line had unflushed data.
    pub fn flush_line(&mut self, offset: u64) -> bool {
        self.flushes += 1;
        self.unflushed.remove(&(offset / LINE)).is_some()
    }

    /// Persists every line overlapping `[offset, offset + len)`.
    pub fn flush_range(&mut self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut flushed = 0;
        let first = offset / LINE;
        let last = (offset + len - 1) / LINE;
        for line in first..=last {
            if self.flush_line(line * LINE) {
                flushed += 1;
            }
        }
        flushed
    }

    /// Simulates a power loss: every unflushed line reverts to its
    /// persisted contents. Returns the number of lines lost.
    pub fn crash(&mut self) -> u64 {
        self.fail_after = None;
        let lost = self.unflushed.len() as u64;
        let reverts: Vec<(u64, [u8; LINE as usize])> = self.unflushed.drain().collect();
        for (line, img) in reverts {
            let base = line * LINE;
            let avail = (self.size - base).min(LINE) as usize;
            self.write_raw(base, &img[..avail]);
        }
        lost
    }

    /// Number of currently unflushed (volatile) lines.
    #[must_use]
    pub fn unflushed_lines(&self) -> usize {
        self.unflushed.len()
    }

    /// Total store operations performed.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Total flush operations performed.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = PoolStorage::new(4096);
        s.write(100, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        s.read(100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn sparse_chunks_materialize_lazily() {
        let mut s = PoolStorage::new(8 << 20); // 8MB pool
        assert_eq!(s.resident_chunks(), 0);
        s.write(5 << 20, &[9; 8]).unwrap();
        assert_eq!(s.resident_chunks(), 1, "only the touched chunk exists");
        let mut buf = [0u8; 8];
        s.read(1 << 20, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "untouched space reads as zero");
        s.read(5 << 20, &mut buf).unwrap();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn write_spanning_chunks() {
        let mut s = PoolStorage::new(16384);
        let data: Vec<u8> = (0..200).collect();
        s.write(4000, &data).unwrap(); // crosses the 4096 boundary
        let mut buf = vec![0u8; 200];
        s.read(4000, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(s.resident_chunks(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut s = PoolStorage::new(128);
        assert!(s.write(120, &[0; 16]).is_err());
        let mut buf = [0u8; 16];
        assert!(s.read(u64::MAX, &mut buf).is_err());
        assert!(s.read(128, &mut buf[..1]).is_err());
        // Exactly at the boundary is fine.
        assert!(s.write(112, &[0; 16]).is_ok());
    }

    #[test]
    fn crash_reverts_unflushed_lines() {
        let mut s = PoolStorage::new(256);
        s.write(0, &[0xAA; 8]).unwrap();
        s.flush_line(0);
        s.write(0, &[0xBB; 8]).unwrap(); // unflushed overwrite
        s.write(64, &[0xCC; 8]).unwrap(); // unflushed new line
        assert_eq!(s.unflushed_lines(), 2);
        let lost = s.crash();
        assert_eq!(lost, 2);
        let mut buf = [0u8; 8];
        s.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0xAA; 8], "flushed data survives");
        s.read(64, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "never-flushed line reverts to zero");
    }

    #[test]
    fn flush_makes_data_durable() {
        let mut s = PoolStorage::new(256);
        s.write(10, &[7; 4]).unwrap();
        assert_eq!(s.flush_range(10, 4), 1);
        s.crash();
        let mut buf = [0u8; 4];
        s.read(10, &mut buf).unwrap();
        assert_eq!(buf, [7; 4]);
    }

    #[test]
    fn write_spanning_lines_tracks_both() {
        let mut s = PoolStorage::new(256);
        s.write(60, &[1; 8]).unwrap(); // spans lines 0 and 1
        assert_eq!(s.unflushed_lines(), 2);
        assert_eq!(s.flush_range(60, 8), 2);
        assert_eq!(s.unflushed_lines(), 0);
    }

    #[test]
    fn flush_of_clean_line_is_noop() {
        let mut s = PoolStorage::new(256);
        assert!(!s.flush_line(0));
        assert_eq!(s.flush_range(0, 0), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = PoolStorage::new(256);
        s.write(0, &[1]).unwrap();
        s.write(1, &[2]).unwrap();
        s.flush_line(0);
        assert_eq!(s.stores(), 2);
        assert_eq!(s.flushes(), 1);
    }

    #[test]
    fn partial_tail_line_pool() {
        // A pool whose size is not a multiple of the line size still
        // crashes/flushes correctly on its tail.
        let mut s = PoolStorage::new(100);
        s.write(96, &[9; 4]).unwrap();
        s.crash();
        let mut buf = [0u8; 4];
        s.read(96, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }
}
