//! Virtual-address-space placement for attached PMOs.
//!
//! The paper constrains attachment placement (§IV.A): "A PMO can map only
//! to an aligned and contiguous range of virtual address that corresponds
//! to the granularity of the hierarchy level of the page table" — 4KB, 2MB,
//! 1GB, 512GB. This keeps every DTT/DRT entry a single page-table-granular
//! range. The allocator reserves the smallest granule covering the PMO and
//! recycles released granules.

use std::collections::BTreeMap;

use pmo_trace::Va;

/// Page-table-level granularities a PMO region may occupy.
pub const GRANULES: [u64; 4] = [
    4 << 10,      // 4KB   (PTE level)
    2 << 20,      // 2MB   (PMD level)
    1 << 30,      // 1GB   (PUD level)
    512u64 << 30, // 512GB (PGD level)
];

/// The smallest page-table granule that covers `size` bytes.
///
/// # Panics
///
/// Panics if `size` is zero or exceeds 512GB.
#[must_use]
pub fn granule_for(size: u64) -> u64 {
    assert!(size > 0, "PMO size must be positive");
    for g in GRANULES {
        if size <= g {
            return g;
        }
    }
    panic!("PMO of {size} bytes exceeds the largest supported granule");
}

/// Bump-with-free-list allocator over the PMO attachment arena, with
/// optional MERR-style placement randomization (the paper builds on
/// MERR's exposure reduction and randomization \[60\]; a randomized attach
/// address makes PMO locations unpredictable across sessions).
#[derive(Clone, Debug)]
pub struct AddressSpace {
    base: Va,
    limit: Va,
    cursor: Va,
    /// Released regions, keyed by granule size.
    free: BTreeMap<u64, Vec<Va>>,
    /// Live reservations (`base -> end`), for overlap checks under
    /// randomized placement.
    reserved: BTreeMap<Va, Va>,
    /// xorshift state for randomized placement (None = deterministic bump).
    aslr: Option<u64>,
}

impl AddressSpace {
    /// Default base of the PMO attachment arena.
    pub const PMO_ARENA_BASE: Va = 0x2000_0000_0000;
    /// Default arena size (half the canonical lower VA half).
    pub const PMO_ARENA_SIZE: u64 = 0x4000_0000_0000;

    /// Creates the default PMO arena.
    #[must_use]
    pub fn new() -> Self {
        Self::with_arena(Self::PMO_ARENA_BASE, Self::PMO_ARENA_SIZE)
    }

    /// Creates an arena over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4KB-aligned.
    #[must_use]
    pub fn with_arena(base: Va, size: u64) -> Self {
        assert_eq!(base % GRANULES[0], 0, "arena base must be page-aligned");
        AddressSpace {
            base,
            limit: base + size,
            cursor: base,
            free: BTreeMap::new(),
            reserved: BTreeMap::new(),
            aslr: None,
        }
    }

    /// Whether `[base, end)` intersects a live reservation.
    fn overlaps(&self, base: Va, end: Va) -> bool {
        // Reservations are disjoint: only the one starting closest below
        // `end` can intersect.
        self.reserved.range(..end).next_back().is_some_and(|(_, &e)| e > base)
    }

    /// Enables randomized placement seeded by `seed` (0 is mapped to a
    /// fixed non-zero constant). Randomization applies to fresh
    /// reservations; released regions are still recycled first.
    pub fn randomize(&mut self, seed: u64) {
        self.aslr = Some(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed });
    }

    fn next_random(&mut self) -> u64 {
        let state = self.aslr.as_mut().expect("randomization enabled");
        // xorshift64*.
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Reserves an aligned region for a PMO of `size` bytes; returns
    /// `(region_base, region_size)`, or `None` if the arena is exhausted.
    pub fn reserve(&mut self, size: u64) -> Option<(Va, u64)> {
        let granule = granule_for(size);
        if self.aslr.is_some() {
            // Randomized placement: probe random granule-aligned slots
            // across the whole arena, checking against live reservations.
            let slots = (self.limit - self.base) / granule;
            if slots == 0 {
                return None;
            }
            for _ in 0..64 {
                let pick = self.next_random() % slots;
                let base = self.base + pick * granule;
                if !self.overlaps(base, base + granule) {
                    self.reserved.insert(base, base + granule);
                    return Some((base, granule));
                }
            }
            // Arena too full for probing: linear scan from a random slot.
            let start = self.next_random() % slots;
            for i in 0..slots {
                let base = self.base + ((start + i) % slots) * granule;
                if !self.overlaps(base, base + granule) {
                    self.reserved.insert(base, base + granule);
                    return Some((base, granule));
                }
            }
            return None;
        }
        if let Some(list) = self.free.get_mut(&granule) {
            if let Some(base) = list.pop() {
                self.reserved.insert(base, base + granule);
                return Some((base, granule));
            }
        }
        let aligned = self.cursor.div_ceil(granule) * granule;
        let end = aligned.checked_add(granule)?;
        if end > self.limit {
            return None;
        }
        self.cursor = end;
        self.reserved.insert(aligned, end);
        Some((aligned, granule))
    }

    /// Returns a previously reserved region for reuse. Under randomized
    /// placement regions are *not* recycled deterministically —
    /// re-attachment at the same address would defeat the randomization —
    /// but the slot becomes available to future random probes.
    pub fn release(&mut self, base: Va, region_size: u64) {
        self.reserved.remove(&base);
        if self.aslr.is_none() {
            self.free.entry(region_size).or_default().push(base);
        }
    }

    /// Drops all reservations (process death / crash).
    pub fn reset(&mut self) {
        self.cursor = self.base;
        self.free.clear();
        self.reserved.clear();
    }

    /// Bytes of arena consumed by the bump cursor so far.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.cursor - self.base
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_rule_matches_paper() {
        assert_eq!(granule_for(1), 4 << 10);
        assert_eq!(granule_for(4 << 10), 4 << 10);
        assert_eq!(granule_for((4 << 10) + 1), 2 << 20);
        assert_eq!(granule_for(2 << 20), 2 << 20);
        // The multi-PMO benchmarks use 8MB PMOs -> 1GB regions.
        assert_eq!(granule_for(8 << 20), 1 << 30);
        assert_eq!(granule_for(1 << 30), 1 << 30);
        assert_eq!(granule_for((1 << 30) + 1), 512 << 30);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = granule_for(0);
    }

    #[test]
    fn reservations_are_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        let (b1, s1) = a.reserve(8 << 20).unwrap();
        let (b2, s2) = a.reserve(8 << 20).unwrap();
        assert_eq!(s1, 1 << 30);
        assert_eq!(b1 % s1, 0);
        assert_eq!(s2, 1 << 30);
        assert!(b2 >= b1 + s1, "regions must not overlap");
    }

    #[test]
    fn release_enables_reuse() {
        let mut a = AddressSpace::new();
        let (b1, s1) = a.reserve(4096).unwrap();
        a.release(b1, s1);
        let (b2, s2) = a.reserve(4096).unwrap();
        assert_eq!((b1, s1), (b2, s2), "released granule is recycled");
    }

    #[test]
    fn mixed_granules_do_not_cross_recycle() {
        let mut a = AddressSpace::new();
        let (small, sz_small) = a.reserve(4096).unwrap();
        a.release(small, sz_small);
        let (big, sz_big) = a.reserve(3 << 20).unwrap();
        assert_eq!(sz_big, 1 << 30);
        assert_ne!(small, big);
    }

    #[test]
    fn randomized_placement_is_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        a.randomize(42);
        let mut regions = Vec::new();
        for _ in 0..64 {
            let (base, size) = a.reserve(8 << 20).unwrap();
            assert_eq!(base % size, 0, "alignment");
            for &(b, s) in &regions {
                let _: (u64, u64) = (b, s);
                assert!(base + size <= b || b + s <= base, "overlap at {base:#x}");
            }
            regions.push((base, size));
        }
        // Different seeds give different layouts.
        let layout = |seed: u64| {
            let mut a = AddressSpace::new();
            a.randomize(seed);
            (0..8).map(|_| a.reserve(4096).unwrap().0).collect::<Vec<_>>()
        };
        assert_ne!(layout(1), layout(2));
        assert_eq!(layout(3), layout(3), "same seed, same layout");
    }

    #[test]
    fn arena_exhaustion() {
        let mut a = AddressSpace::with_arena(0x1000, 8192);
        assert!(a.reserve(4096).is_some());
        assert!(a.reserve(4096).is_some());
        assert!(a.reserve(4096).is_none());
        a.reset();
        assert!(a.reserve(4096).is_some());
        assert!(a.high_water() >= 4096);
    }
}
