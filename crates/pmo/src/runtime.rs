//! The per-process PMO runtime: Table I API, attach/detach, accessors.

use std::collections::BTreeMap;

use pmo_trace::{Perm, PmoId, TraceEvent, TraceSink, Va};

use crate::addrspace::AddressSpace;
use crate::error::{Result, RuntimeError};
use crate::layout::{
    hdr, heap_base_for, log_bytes_for, slot_size, ALLOC_HEADER, ALLOC_MAGIC, FREED_MAGIC,
    HEADER_SIZE, POOL_MAGIC,
};
use crate::namespace::{AttachIntent, Mode, Namespace, PoolHealth, Uid};
use crate::oid::Oid;
use crate::storage::{FaultPlan, LINE};

/// Description of one live attachment.
#[derive(Clone, Debug)]
pub struct Attachment {
    /// PMO / domain ID.
    pub id: PmoId,
    /// Pool name.
    pub name: String,
    /// Base virtual address of the reserved region.
    pub base: Va,
    /// Reserved region size (page-table granule covering the pool).
    pub region: u64,
    /// Actual pool size in bytes.
    pub size: u64,
    /// Declared intent.
    pub intent: AttachIntent,
}

/// Report of a redo-log recovery performed during attach.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log entries replayed to their home locations.
    pub entries_replayed: u64,
    /// Bytes of payload replayed.
    pub bytes_replayed: u64,
    /// Log entries discarded because the log's tail was torn (bounds or
    /// checksum check failed past the last valid record).
    pub truncated_entries: u64,
}

/// Report of a pool scrub (maintenance wipe + reformat).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Poisoned media lines the scrub remapped.
    pub poisoned_cleared: u64,
    /// The quarantine reason the scrub lifted, if the pool had been
    /// quarantined.
    pub quarantine_released: Option<&'static str>,
}

/// The runtime's open durable transaction: writes against its pool are
/// staged here instead of hitting storage, and applied atomically (via
/// the redo log) at commit.
#[derive(Debug)]
struct ActiveTxn {
    pool: PmoId,
    /// Staged writes: (pool offset, bytes), in program order.
    writes: Vec<(u32, Vec<u8>)>,
    /// Frees staged by [`PmRuntime::pfree`]: (alloc-header offset, slot
    /// size). Pushed onto the volatile free lists only at commit, so a
    /// discarded transaction never recycles memory it failed to unlink.
    frees: Vec<(u32, u64)>,
}

/// The per-process PMO runtime.
///
/// Owns the simulated OS namespace and the process address space, and
/// implements the pool API of Table I (`pool_create`, `pool_open`,
/// `pool_close`, `pool_root`, `pmalloc`, `pfree`, `oid_direct`) plus typed
/// accessors that perform *functional* reads/writes against the simulated
/// NVM while emitting trace events for the timing simulator.
///
/// # Example
///
/// ```
/// use pmo_runtime::{Mode, PmRuntime};
/// use pmo_trace::NullSink;
///
/// # fn main() -> Result<(), pmo_runtime::RuntimeError> {
/// let mut rt = PmRuntime::new();
/// let mut sink = NullSink::new();
/// let pool = rt.pool_create("accounts", 1 << 20, Mode::private(), &mut sink)?;
/// let obj = rt.pmalloc(pool, 64, &mut sink)?;
/// rt.write_u64(obj, 0, 42, &mut sink)?;
/// assert_eq!(rt.read_u64(obj, 0, &mut sink)?, 42);
/// rt.pool_close(pool, &mut sink)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PmRuntime {
    ns: Namespace,
    aspace: AddressSpace,
    attached: BTreeMap<PmoId, Attachment>,
    free_lists: BTreeMap<PmoId, BTreeMap<u64, Vec<u32>>>,
    uid: Uid,
    last_recovery: Option<RecoveryReport>,
    txn: Option<ActiveTxn>,
}

impl Default for PmRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl PmRuntime {
    /// Creates a runtime with an empty namespace, running as uid 0.
    #[must_use]
    pub fn new() -> Self {
        PmRuntime {
            ns: Namespace::new(),
            aspace: AddressSpace::new(),
            attached: BTreeMap::new(),
            free_lists: BTreeMap::new(),
            uid: 0,
            last_recovery: None,
            txn: None,
        }
    }

    /// Changes the calling user (for namespace permission tests).
    pub fn set_uid(&mut self, uid: Uid) {
        self.uid = uid;
    }

    /// Enables MERR-style randomized attach placement: subsequent
    /// attaches land at unpredictable granule-aligned addresses, making
    /// PMO locations differ across sessions. Relocatable OIDs keep
    /// resolving regardless of placement.
    pub fn enable_aslr(&mut self, seed: u64) {
        self.aspace.randomize(seed);
    }

    /// The calling user.
    #[must_use]
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The OS namespace (inspection / direct manipulation in tests).
    #[must_use]
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Mutable access to the namespace (e.g. to set attach keys).
    pub fn namespace_mut(&mut self) -> &mut Namespace {
        &mut self.ns
    }

    /// The recovery report of the most recent attach, if that attach
    /// replayed a committed redo log.
    #[must_use]
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        self.last_recovery
    }

    // ---------------------------------------------------------------
    // Table I API
    // ---------------------------------------------------------------

    /// `pool_create(name, size, mode)`: creates a pool and attaches it
    /// read-write. The calling user becomes the owner.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken, the size is zero, or the VA arena is
    /// exhausted.
    pub fn pool_create(
        &mut self,
        name: &str,
        size: u64,
        mode: Mode,
        sink: &mut dyn TraceSink,
    ) -> Result<PmoId> {
        let id = self.ns.create(name, size, mode, self.uid)?;
        // Initialize the persistent header.
        let entry = self.ns.entry_mut(id).expect("just created");
        format_header(&mut entry.storage, size);
        let id = self.attach_named(name, AttachIntent::ReadWrite, None, sink)?;
        // Re-emit the header formatting as valued stores, then trace the
        // header persist (clwb + fence), now that the attach event
        // established the pool's address range: a trace recorded from
        // pool birth thus carries the complete byte image of the pool,
        // which crash-image enumeration depends on, and analyzer
        // coverage matches what the fault model actually reverts.
        let base = self.attachment(id)?.base;
        // The formatting stores are sanctioned: open a write window around
        // them so raw (unguarded) traces still pass the permission audit.
        // Guarded sinks wrap each store in its own window too; SetPerm is
        // idempotent under the audit, so the nesting is harmless.
        sink.event(TraceEvent::SetPerm { pmo: id, perm: Perm::ReadWrite });
        for (field, value) in [
            (hdr::MAGIC, POOL_MAGIC),
            (hdr::HEAP_TOP, heap_base_for(size)),
            (hdr::ROOT_OID, 0),
            (hdr::ROOT_SIZE, 0),
            (hdr::COMMIT_FLAG, 0),
            (hdr::LOG_BASE, HEADER_SIZE),
            (hdr::LOG_SIZE, log_bytes_for(size)),
        ] {
            sink.store_valued(base + field, 8, value);
        }
        sink.event(TraceEvent::SetPerm { pmo: id, perm: Perm::None });
        self.persist_header(id, sink)?;
        Ok(id)
    }

    /// `pool_open(name, mode)`: attaches an existing pool with the given
    /// intent, running crash recovery if a committed redo log is pending.
    ///
    /// # Errors
    ///
    /// Fails if the pool does not exist, the mode/attach-key check fails,
    /// or the single-writer policy is violated.
    pub fn pool_open(
        &mut self,
        name: &str,
        intent: AttachIntent,
        sink: &mut dyn TraceSink,
    ) -> Result<PmoId> {
        self.attach_named(name, intent, None, sink)
    }

    /// Like [`PmRuntime::pool_open`], presenting an attach key.
    pub fn pool_open_with_key(
        &mut self,
        name: &str,
        intent: AttachIntent,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<PmoId> {
        self.attach_named(name, intent, Some(key), sink)
    }

    fn attach_named(
        &mut self,
        name: &str,
        intent: AttachIntent,
        key: Option<u64>,
        sink: &mut dyn TraceSink,
    ) -> Result<PmoId> {
        let id = self.ns.acquire(name, self.uid, intent, key)?;
        if self.attached.contains_key(&id) {
            self.ns.release(id, intent)?;
            return Err(RuntimeError::AlreadyAttached(id));
        }
        let size = self.ns.entry(id)?.storage.size();
        let Some((base, region)) = self.aspace.reserve(size) else {
            self.ns.release(id, intent)?;
            return Err(RuntimeError::OutOfMemory { pmo: id, requested: size });
        };
        self.attached
            .insert(id, Attachment { id, name: name.to_string(), base, region, size, intent });
        sink.event(TraceEvent::Attach { pmo: id, base, size, nvm: true });
        match self.recover(id, sink) {
            Ok(report) => {
                self.last_recovery = report;
                Ok(id)
            }
            Err(e) => {
                // Recovery refused the pool (quarantine, media damage, ...):
                // roll the attach back completely so no half-attached state
                // lingers — release the VA reservation and the namespace
                // lock, and undo the trace event.
                let att = self.attached.remove(&id).expect("inserted above");
                self.aspace.release(att.base, att.region);
                self.ns.release(id, intent)?;
                sink.event(TraceEvent::Detach { pmo: id });
                sink.event(TraceEvent::Shootdown { pmo: id });
                Err(e)
            }
        }
    }

    /// `pool_close(pool)`: detaches the pool from the address space.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached.
    pub fn pool_close(&mut self, id: PmoId, sink: &mut dyn TraceSink) -> Result<()> {
        let att = self.attached.remove(&id).ok_or(RuntimeError::NotAttached(id))?;
        self.aspace.release(att.base, att.region);
        self.free_lists.remove(&id);
        self.ns.release(id, att.intent)?;
        sink.event(TraceEvent::Detach { pmo: id });
        // The detach system call completes its ranged shootdown before
        // returning (§IV.B); record that ordering in the trace.
        sink.event(TraceEvent::Shootdown { pmo: id });
        Ok(())
    }

    /// `pool_delete(name)`: destroys a pool and its data. The pool must
    /// not be attached (detach it first) and the caller must own it.
    ///
    /// # Errors
    ///
    /// Fails if the pool does not exist, is attached, or is owned by
    /// another user.
    pub fn pool_delete(&mut self, name: &str) -> Result<()> {
        self.ns.destroy(name, self.uid)
    }

    /// `pool_scrub(name)`: wipes a pool's media back to zero, reformats
    /// a fresh header, and releases any sticky quarantine, making the
    /// pool attachable again. Contents are lost by design — this is the
    /// operator's recovery path for a quarantined pool, trading data for
    /// availability once forensics are done. A repeat media error after
    /// the scrub quarantines again exactly like the first: scrubbing
    /// clears the flag, never the mechanism.
    ///
    /// # Errors
    ///
    /// Fails if the pool does not exist, the caller does not own it, or
    /// anyone (including the caller) has it attached.
    pub fn pool_scrub(&mut self, name: &str) -> Result<ScrubReport> {
        let uid = self.uid;
        let entry = self.ns.entry_mut_by_name(name)?;
        if entry.owner != uid {
            return Err(RuntimeError::PermissionDenied {
                name: name.to_string(),
                reason: "only the owner may scrub a pool",
            });
        }
        if entry.readers > 0 || entry.writers > 0 {
            return Err(RuntimeError::ExclusivelyHeld(name.to_string()));
        }
        let poisoned_cleared = entry.storage.scrub();
        let size = entry.storage.size();
        format_header(&mut entry.storage, size);
        let quarantine_released = entry.release_quarantine()?;
        Ok(ScrubReport { poisoned_cleared, quarantine_released })
    }

    /// Materializes a pool from an enumerated crash image: registers a
    /// fresh, *unformatted* pool of `size` bytes and installs each
    /// `(line, bytes)` pair directly onto media as persisted state. No
    /// trace events are emitted (this is kernel context, like recovery
    /// itself). A subsequent [`PmRuntime::pool_open`] runs the real
    /// recovery path against exactly this image — which is the point:
    /// crash-image enumeration hands every image it derives from a trace
    /// to the same recovery code a genuine power failure would exercise.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken, the size is zero, or a line lies
    /// outside the pool.
    pub fn materialize_pool(
        &mut self,
        name: &str,
        size: u64,
        mode: Mode,
        lines: &[(u64, [u8; LINE as usize])],
    ) -> Result<PmoId> {
        for &(line, _) in lines {
            if line * LINE >= size {
                return Err(RuntimeError::InvalidOid {
                    oid: line * LINE,
                    reason: "crash-image line lies outside the pool",
                });
            }
        }
        let id = self.ns.create(name, size, mode, self.uid)?;
        let entry = self.ns.entry_mut(id).expect("just created");
        for (line, img) in lines {
            entry.storage.install_line(*line, img);
        }
        Ok(id)
    }

    /// `pool_root(pool, size)`: returns the root object, allocating it on
    /// first use. The root is the programmer-designed directory of the
    /// pool's contents.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached or the allocation fails.
    pub fn pool_root(&mut self, id: PmoId, size: u64, sink: &mut dyn TraceSink) -> Result<Oid> {
        let existing = self.header_u64(id, hdr::ROOT_OID, sink)?;
        if existing != 0 {
            return Ok(Oid::from_raw(existing));
        }
        if size == 0 {
            return Err(RuntimeError::InvalidSize(0));
        }
        let root = self.pmalloc(id, size, sink)?;
        self.write_header_u64(id, hdr::ROOT_OID, root.to_raw(), sink)?;
        self.write_header_u64(id, hdr::ROOT_SIZE, size, sink)?;
        self.persist_header(id, sink)?;
        Ok(root)
    }

    /// `pmalloc(pool, size)`: allocates persistent bytes; returns the OID
    /// of the first usable byte.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached (or attached read-only), the size
    /// is zero, or the heap is exhausted.
    pub fn pmalloc(&mut self, id: PmoId, size: u64, sink: &mut dyn TraceSink) -> Result<Oid> {
        if size == 0 {
            return Err(RuntimeError::InvalidSize(0));
        }
        let att = self.attachment(id)?;
        if !att.intent.writes() {
            return Err(RuntimeError::AccessViolation {
                pmo: id,
                offset: 0,
                reason: "pmalloc through a read-only attachment",
            });
        }
        let pool_size = att.size;
        let slot = slot_size(size);
        // First try the (volatile) free list for this slot size.
        if let Some(off) =
            self.free_lists.get_mut(&id).and_then(|lists| lists.get_mut(&slot)).and_then(Vec::pop)
        {
            self.write_alloc_header(id, off, size as u32, ALLOC_MAGIC, sink)?;
            sink.compute(10);
            return Ok(Oid::new(id, off + ALLOC_HEADER as u32));
        }
        // Bump allocation: heap_top lives in the persistent header.
        let top = self.header_u64(id, hdr::HEAP_TOP, sink)?;
        if top + slot > pool_size {
            return Err(RuntimeError::OutOfMemory { pmo: id, requested: size });
        }
        self.write_header_u64(id, hdr::HEAP_TOP, top + slot, sink)?;
        self.flush_header_line(id, hdr::HEAP_TOP, sink)?;
        self.write_alloc_header(id, top as u32, size as u32, ALLOC_MAGIC, sink)?;
        sink.compute(20);
        Ok(Oid::new(id, top as u32 + ALLOC_HEADER as u32))
    }

    /// `pfree(oid)`: frees a persistent allocation.
    ///
    /// Inside an open transaction the free is as failure-atomic as the
    /// caller's unlink writes: the allocation-header flip is staged with
    /// them and the (volatile) free-list push is deferred to commit. A
    /// discarded or crashed transaction therefore leaves the allocation
    /// live — it is still reachable from the structure the unlink never
    /// reached.
    ///
    /// # Errors
    ///
    /// Fails if the OID does not reference a live allocation.
    pub fn pfree(&mut self, oid: Oid, sink: &mut dyn TraceSink) -> Result<()> {
        let id = oid.pool();
        let hdr_off = oid
            .offset()
            .checked_sub(ALLOC_HEADER as u32)
            .ok_or(RuntimeError::InvalidOid { oid: oid.to_raw(), reason: "offset before heap" })?;
        let (size, magic) = self.read_alloc_header(id, hdr_off, sink)?;
        if magic != ALLOC_MAGIC {
            return Err(RuntimeError::InvalidOid {
                oid: oid.to_raw(),
                reason: "not a live allocation",
            });
        }
        let slot = slot_size(u64::from(size));
        if self.txn.as_ref().is_some_and(|t| t.pool == id) {
            let mut buf = [0u8; 8];
            buf[..4].copy_from_slice(&size.to_le_bytes());
            buf[4..].copy_from_slice(&FREED_MAGIC.to_le_bytes());
            self.write_bytes(Oid::new(id, hdr_off), 0, &buf, sink)?;
            if let Some(txn) = &mut self.txn {
                txn.frees.push((hdr_off, slot));
            }
            sink.compute(10);
            return Ok(());
        }
        self.write_alloc_header(id, hdr_off, size, FREED_MAGIC, sink)?;
        self.free_lists.entry(id).or_default().entry(slot).or_default().push(hdr_off);
        sink.compute(10);
        Ok(())
    }

    /// `oid_direct(oid)`: translates an OID to its current virtual address.
    ///
    /// # Errors
    ///
    /// Fails if the OID's pool is not attached or the offset is outside it.
    pub fn oid_direct(&self, oid: Oid) -> Result<Va> {
        let att = self.attachment(oid.pool())?;
        if u64::from(oid.offset()) >= att.size {
            return Err(RuntimeError::InvalidOid {
                oid: oid.to_raw(),
                reason: "offset beyond pool size",
            });
        }
        Ok(att.base + u64::from(oid.offset()))
    }

    // ---------------------------------------------------------------
    // Typed accessors (functional + trace emission)
    // ---------------------------------------------------------------

    /// Reads `buf.len()` bytes starting `delta` bytes past `oid`.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached or the range is out of bounds.
    pub fn read_bytes(
        &mut self,
        oid: Oid,
        delta: u32,
        buf: &mut [u8],
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let oid = oid.add(delta);
        let va = self.oid_direct(oid)?;
        let entry = self.ns.entry(oid.pool())?;
        entry.storage.read(u64::from(oid.offset()), buf)?;
        // Read-your-writes: overlay the open transaction's staged data,
        // newest staged write last.
        if let Some(txn) = &self.txn {
            if txn.pool == oid.pool() {
                let start = u64::from(oid.offset());
                let end = start + buf.len() as u64;
                for (w_off, data) in &txn.writes {
                    let w_start = u64::from(*w_off);
                    let w_end = w_start + data.len() as u64;
                    let lo = start.max(w_start);
                    let hi = end.min(w_end);
                    if lo < hi {
                        buf[(lo - start) as usize..(hi - start) as usize].copy_from_slice(
                            &data[(lo - w_start) as usize..(hi - w_start) as usize],
                        );
                    }
                }
            }
        }
        emit_chunked_load(sink, va, buf.len() as u64);
        Ok(())
    }

    /// Writes `bytes` starting `delta` bytes past `oid`.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached, attached read-only, or the range
    /// is out of bounds.
    pub fn write_bytes(
        &mut self,
        oid: Oid,
        delta: u32,
        bytes: &[u8],
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let oid = oid.add(delta);
        let va = self.oid_direct(oid)?;
        let att = self.attachment(oid.pool())?;
        if !att.intent.writes() {
            return Err(RuntimeError::AccessViolation {
                pmo: oid.pool(),
                offset: u64::from(oid.offset()),
                reason: "write through read-only attachment",
            });
        }
        let att_size = att.size;
        // An open transaction intercepts writes to its pool: they are
        // staged in volatile memory and reach storage atomically at
        // commit. Writes to any other pool are refused — atomicity
        // cannot span pools.
        if let Some(txn) = &mut self.txn {
            if txn.pool != oid.pool() {
                return Err(RuntimeError::InvalidOid {
                    oid: oid.to_raw(),
                    reason: "write outside the transaction's pool",
                });
            }
            if u64::from(oid.offset()) + bytes.len() as u64 > att_size {
                return Err(RuntimeError::InvalidOid {
                    oid: oid.to_raw(),
                    reason: "write beyond pool size",
                });
            }
            txn.writes.push((oid.offset(), bytes.to_vec()));
            // Staging costs a few instructions but no persistent traffic.
            sink.compute(4);
            return Ok(());
        }
        let entry = self.ns.entry_mut(oid.pool())?;
        entry.storage.write(u64::from(oid.offset()), bytes)?;
        emit_chunked_store(sink, va, bytes);
        Ok(())
    }

    /// Reads a `u64` at `oid + delta`.
    pub fn read_u64(&mut self, oid: Oid, delta: u32, sink: &mut dyn TraceSink) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read_bytes(oid, delta, &mut buf, sink)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a `u64` at `oid + delta`.
    pub fn write_u64(
        &mut self,
        oid: Oid,
        delta: u32,
        value: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.write_bytes(oid, delta, &value.to_le_bytes(), sink)
    }

    /// Reads a `u32` at `oid + delta`.
    pub fn read_u32(&mut self, oid: Oid, delta: u32, sink: &mut dyn TraceSink) -> Result<u32> {
        let mut buf = [0u8; 4];
        self.read_bytes(oid, delta, &mut buf, sink)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a `u32` at `oid + delta`.
    pub fn write_u32(
        &mut self,
        oid: Oid,
        delta: u32,
        value: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.write_bytes(oid, delta, &value.to_le_bytes(), sink)
    }

    /// Reads a persistent pointer (OID) at `oid + delta`.
    pub fn read_oid(&mut self, oid: Oid, delta: u32, sink: &mut dyn TraceSink) -> Result<Oid> {
        Ok(Oid::from_raw(self.read_u64(oid, delta, sink)?))
    }

    /// Writes a persistent pointer (OID) at `oid + delta`.
    pub fn write_oid(
        &mut self,
        oid: Oid,
        delta: u32,
        value: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.write_u64(oid, delta, value.to_raw(), sink)
    }

    /// Persists `[oid + delta, oid + delta + len)`: flushes each dirty line
    /// (`clwb`) and issues a fence.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached.
    pub fn persist(
        &mut self,
        oid: Oid,
        delta: u32,
        len: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let oid = oid.add(delta);
        let va = self.oid_direct(oid)?;
        let entry = self.ns.entry_mut(oid.pool())?;
        entry.storage.flush_range(u64::from(oid.offset()), len);
        let mut line = va & !(LINE - 1);
        while line < va + len.max(1) {
            sink.event(TraceEvent::Flush { va: line });
            line += LINE;
        }
        sink.event(TraceEvent::Fence);
        Ok(())
    }

    // ---------------------------------------------------------------
    // Durable transactions (runtime-scoped staging)
    // ---------------------------------------------------------------

    /// Opens a durable transaction on `pool`. Until [`PmRuntime::txn_commit`]
    /// (or [`PmRuntime::txn_discard`]), every `write_*` against the pool is
    /// staged in volatile memory instead of reaching storage, and reads
    /// overlay the staged data (read-your-writes). Whole data-structure
    /// operations driven through the runtime between begin and commit thus
    /// become failure-atomic as a unit.
    ///
    /// [`PmRuntime::begin_txn`](crate::Transaction) wraps this in an RAII
    /// guard that discards the staging on drop.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached, is attached read-only, or a
    /// transaction is already open (transactions do not nest).
    pub fn txn_begin(&mut self, pool: PmoId) -> Result<()> {
        if let Some(txn) = &self.txn {
            return Err(RuntimeError::TxnInProgress(txn.pool));
        }
        let att = self.attachment(pool)?;
        if !att.intent.writes() {
            return Err(RuntimeError::AccessViolation {
                pmo: pool,
                offset: 0,
                reason: "transaction on read-only attachment",
            });
        }
        self.txn = Some(ActiveTxn { pool, writes: Vec::new(), frees: Vec::new() });
        Ok(())
    }

    /// Pool of the currently open transaction, if any.
    #[must_use]
    pub fn txn_active(&self) -> Option<PmoId> {
        self.txn.as_ref().map(|t| t.pool)
    }

    /// Number of writes staged in the open transaction (0 when none).
    #[must_use]
    pub fn txn_staged(&self) -> usize {
        self.txn.as_ref().map_or(0, |t| t.writes.len())
    }

    /// Aborts the open transaction: every staged write is discarded and
    /// storage is untouched. A no-op when no transaction is open.
    pub fn txn_discard(&mut self) {
        self.txn = None;
    }

    /// Commits the open transaction: writes the redo log, sets the commit
    /// flag, applies the staged writes home, clears the flag — atomic with
    /// respect to crashes at any store. A no-op when no transaction is
    /// open or nothing was staged.
    ///
    /// # Errors
    ///
    /// Fails if the staged writes exceed the pool's log area, or with
    /// [`RuntimeError::PowerFailure`] when an armed fault fires mid-
    /// protocol (the staging is consumed either way; recover by crashing
    /// and re-attaching).
    pub fn txn_commit(&mut self, sink: &mut dyn TraceSink) -> Result<()> {
        let Some(ActiveTxn { pool, writes, frees }) = self.txn.take() else {
            return Ok(());
        };
        if writes.is_empty() {
            return Ok(());
        }
        let log_base = self.header_u64(pool, hdr::LOG_BASE, sink)?;
        let log_size = self.header_u64(pool, hdr::LOG_SIZE, sink)?;
        let needed: u64 = writes
            .iter()
            .map(|(_, d)| crate::txn::ENTRY_HEADER + crate::txn::padded(d.len() as u64))
            .sum::<u64>()
            + crate::txn::ENTRY_HEADER;
        if needed > log_size {
            return Err(RuntimeError::LogFull(pool));
        }
        // (1) Append entries + terminator.
        let mut cursor = log_base;
        for (target, data) in &writes {
            let mut head = [0u8; crate::txn::ENTRY_HEADER as usize];
            head[0..4].copy_from_slice(&target.to_le_bytes());
            head[4..8].copy_from_slice(&(data.len() as u32).to_le_bytes());
            head[8..12].copy_from_slice(&crate::txn::checksum(*target, data).to_le_bytes());
            let at = Oid::new(pool, cursor as u32);
            self.write_bytes(at, 0, &head, sink)?;
            self.write_bytes(at, crate::txn::ENTRY_HEADER as u32, data, sink)?;
            cursor += crate::txn::ENTRY_HEADER + crate::txn::padded(data.len() as u64);
        }
        let terminator = [0u8; crate::txn::ENTRY_HEADER as usize];
        self.write_bytes(Oid::new(pool, cursor as u32), 0, &terminator, sink)?;
        cursor += crate::txn::ENTRY_HEADER;
        // Flush the whole log span (persist issues the fence of step 2).
        self.persist(Oid::new(pool, log_base as u32), 0, cursor - log_base, sink)?;
        // (2) Commit point.
        self.write_header_u64(pool, hdr::COMMIT_FLAG, 1, sink)?;
        self.flush_header_line(pool, hdr::COMMIT_FLAG, sink)?;
        // (3) Apply home.
        for (target, data) in &writes {
            self.write_bytes(Oid::new(pool, *target), 0, data, sink)?;
            self.persist(Oid::new(pool, *target), 0, data.len() as u64, sink)?;
        }
        // (4) Clear the flag.
        self.write_header_u64(pool, hdr::COMMIT_FLAG, 0, sink)?;
        self.flush_header_line(pool, hdr::COMMIT_FLAG, sink)?;
        // The transaction is durable: its staged frees may now recycle.
        for (hdr_off, slot) in frees {
            self.free_lists.entry(pool).or_default().entry(slot).or_default().push(hdr_off);
        }
        Ok(())
    }

    /// Simulates machine power loss: unflushed lines revert (or tear, per
    /// any armed [`FaultPlan`]), every attachment disappears, staged
    /// transaction writes evaporate, the VA arena resets. Pools survive in
    /// the namespace and can be re-opened (running recovery).
    pub fn crash(&mut self) -> u64 {
        let lost = self.ns.crash_all();
        self.attached.clear();
        self.free_lists.clear();
        self.aspace.reset();
        self.last_recovery = None;
        self.txn = None;
        lost
    }

    /// Simulates a fatal fault confined to *one* attached pool — the
    /// fault-domain primitive the multi-tenant server builds on. The
    /// pool's unflushed lines revert (or tear / poison, per any armed
    /// [`FaultPlan`]), its attachment is torn down (emitting Detach +
    /// Shootdown trace events, like the detach system call), and a
    /// transaction staged against it evaporates. Every other pool,
    /// attachment, and open transaction is untouched. Returns the number
    /// of lines lost.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached.
    pub fn crash_pool(&mut self, id: PmoId, sink: &mut dyn TraceSink) -> Result<u64> {
        let att = self.attached.remove(&id).ok_or(RuntimeError::NotAttached(id))?;
        if self.txn.as_ref().is_some_and(|t| t.pool == id) {
            self.txn = None;
        }
        self.aspace.release(att.base, att.region);
        self.free_lists.remove(&id);
        self.ns.release(id, att.intent)?;
        let lost = self.ns.entry_mut(id)?.storage.crash();
        sink.event(TraceEvent::Detach { pmo: id });
        sink.event(TraceEvent::Shootdown { pmo: id });
        Ok(lost)
    }

    /// Info about one attachment.
    pub fn attachment(&self, id: PmoId) -> Result<&Attachment> {
        self.attached.get(&id).ok_or(RuntimeError::NotAttached(id))
    }

    /// Iterates over all current attachments.
    pub fn attachments(&self) -> impl Iterator<Item = &Attachment> {
        self.attached.values()
    }

    // ---------------------------------------------------------------
    // Header helpers and recovery (pub(crate) for the txn module)
    // ---------------------------------------------------------------

    pub(crate) fn header_u64(
        &mut self,
        id: PmoId,
        field: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<u64> {
        let base = self.attachment(id)?.base;
        let entry = self.ns.entry(id)?;
        let mut buf = [0u8; 8];
        entry.storage.read(field, &mut buf)?;
        sink.load(base + field, 8);
        Ok(u64::from_le_bytes(buf))
    }

    pub(crate) fn write_header_u64(
        &mut self,
        id: PmoId,
        field: u64,
        value: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let base = self.attachment(id)?.base;
        let entry = self.ns.entry_mut(id)?;
        entry.storage.write(field, &value.to_le_bytes())?;
        sink.store_valued(base + field, 8, value);
        Ok(())
    }

    pub(crate) fn flush_header_line(
        &mut self,
        id: PmoId,
        field: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let base = self.attachment(id)?.base;
        let entry = self.ns.entry_mut(id)?;
        entry.storage.flush_line(field);
        sink.event(TraceEvent::Flush { va: (base + field) & !(LINE - 1) });
        sink.event(TraceEvent::Fence);
        Ok(())
    }

    fn persist_header(&mut self, id: PmoId, sink: &mut dyn TraceSink) -> Result<()> {
        let base = self.attachment(id)?.base;
        let entry = self.ns.entry_mut(id)?;
        entry.storage.flush_range(0, HEADER_SIZE);
        sink.event(TraceEvent::Flush { va: base });
        sink.event(TraceEvent::Fence);
        Ok(())
    }

    fn write_alloc_header(
        &mut self,
        id: PmoId,
        off: u32,
        size: u32,
        magic: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let base = self.attachment(id)?.base;
        let entry = self.ns.entry_mut(id)?;
        let mut buf = [0u8; 8];
        buf[..4].copy_from_slice(&size.to_le_bytes());
        buf[4..].copy_from_slice(&magic.to_le_bytes());
        entry.storage.write(u64::from(off), &buf)?;
        sink.store_valued(base + u64::from(off), 8, u64::from_le_bytes(buf));
        Ok(())
    }

    fn read_alloc_header(
        &mut self,
        id: PmoId,
        off: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<(u32, u32)> {
        let base = self.attachment(id)?.base;
        let entry = self.ns.entry(id)?;
        let mut buf = [0u8; 8];
        entry.storage.read(u64::from(off), &mut buf)?;
        // Read-your-writes: a header flip staged by an in-transaction
        // pfree must be visible (it is how a double free inside the
        // same transaction is caught).
        if let Some(txn) = &self.txn {
            if txn.pool == id {
                let start = u64::from(off);
                for (w_off, data) in &txn.writes {
                    let w_start = u64::from(*w_off);
                    let w_end = w_start + data.len() as u64;
                    let lo = start.max(w_start);
                    let hi = (start + 8).min(w_end);
                    if lo < hi {
                        buf[(lo - start) as usize..(hi - start) as usize].copy_from_slice(
                            &data[(lo - w_start) as usize..(hi - w_start) as usize],
                        );
                    }
                }
            }
        }
        sink.load(base + u64::from(off), 8);
        Ok((
            u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(buf[4..].try_into().expect("4 bytes")),
        ))
    }

    /// Direct (uninstrumented) access to a pool's backing storage, for
    /// tests and tooling that inspect persistence state.
    pub fn storage(&self, id: PmoId) -> Result<&crate::storage::PoolStorage> {
        Ok(&self.ns.entry(id)?.storage)
    }

    /// Arms power-failure injection on one pool: after `stores` more
    /// successful persistent writes, writes fail with
    /// [`RuntimeError::PowerFailure`] until [`PmRuntime::crash`] runs —
    /// for testing failure atomicity at arbitrary points of the redo-log
    /// protocol.
    ///
    /// # Errors
    ///
    /// Fails with [`RuntimeError::NotAttached`] for a PMO ID that is
    /// unknown or not currently attached: arming a fault is an operation
    /// on the *live* attachment, so a stale or bogus ID is a caller bug
    /// surfaced as a typed error instead of silently arming a detached
    /// pool.
    pub fn inject_power_failure_after(&mut self, id: PmoId, stores: u64) -> Result<()> {
        self.inject_fault(id, FaultPlan::power_failure(stores))
    }

    /// Arms an arbitrary deterministic [`FaultPlan`] (power failure, torn
    /// write, or media error) on one attached pool.
    ///
    /// # Errors
    ///
    /// Fails with [`RuntimeError::NotAttached`] for unknown or detached
    /// PMO IDs, like [`PmRuntime::inject_power_failure_after`].
    pub fn inject_fault(&mut self, id: PmoId, plan: FaultPlan) -> Result<()> {
        self.attachment(id)?;
        self.ns.entry_mut(id)?.storage.inject_fault(plan);
        Ok(())
    }

    /// The health of a pool as judged by storage state and the last
    /// recovery: healthy, degraded (unreadable data lines), or
    /// quarantined (damaged recovery metadata; refuses attach).
    ///
    /// # Errors
    ///
    /// Fails if no pool with this name exists.
    pub fn pool_health(&self, name: &str) -> Result<PoolHealth> {
        self.ns.health(name)
    }

    /// Replays a committed redo log, if one is pending. Called on attach.
    /// Recovery runs in kernel context during the attach system call, so
    /// its storage traffic is *not* emitted as user-level trace events
    /// (domain checks do not apply to the kernel); its cost is part of the
    /// scheme's attach accounting.
    ///
    /// Hardened against damaged media: an unreadable or invalid pool
    /// header, commit flag, or redo log quarantines the pool (sticky;
    /// see [`PoolHealth::Quarantined`]) and fails the attach with
    /// [`RuntimeError::PoolQuarantined`] instead of panicking or applying
    /// garbage.
    fn recover(&mut self, id: PmoId, _sink: &mut dyn TraceSink) -> Result<Option<RecoveryReport>> {
        let entry = self.ns.entry_mut(id)?;
        let name = entry.name.clone();
        let quarantine =
            |entry: &mut crate::namespace::PoolEntry, name: String, reason: &'static str| {
                entry.quarantined = Some(reason);
                Err(RuntimeError::PoolQuarantined { name, reason })
            };
        let mut buf = [0u8; 8];
        match entry.storage.read(hdr::MAGIC, &mut buf) {
            Ok(()) if u64::from_le_bytes(buf) == POOL_MAGIC => {}
            Ok(()) => return quarantine(entry, name, "pool header magic is invalid"),
            Err(RuntimeError::MediaError { .. }) => {
                return quarantine(entry, name, "pool header is unreadable")
            }
            Err(e) => return Err(e),
        }
        // Header sanity: a crash during pool formatting (or a torn header
        // line) can persist the magic ahead of the rest of the header.
        // Accepting such a pool would hand the allocator and the redo
        // logger corrupt geometry — exhaustive crash-image enumeration
        // found exactly that — so anything inconsistent quarantines.
        let size = entry.storage.size();
        let mut fields = [0u64; 6];
        for (slot, off) in fields.iter_mut().zip([
            hdr::HEAP_TOP,
            hdr::ROOT_OID,
            hdr::ROOT_SIZE,
            hdr::COMMIT_FLAG,
            hdr::LOG_BASE,
            hdr::LOG_SIZE,
        ]) {
            match entry.storage.read(off, &mut buf) {
                Ok(()) => *slot = u64::from_le_bytes(buf),
                Err(RuntimeError::MediaError { .. }) => {
                    return quarantine(entry, name, "pool header is unreadable")
                }
                Err(e) => return Err(e),
            }
        }
        let [heap_top, root_oid, root_size, commit_flag, log_base, log_size] = fields;
        if log_base != HEADER_SIZE || log_size != log_bytes_for(size) {
            return quarantine(entry, name, "log geometry in the pool header is corrupt");
        }
        if heap_top < heap_base_for(size) || heap_top > size {
            return quarantine(entry, name, "heap bound in the pool header is corrupt");
        }
        if commit_flag > 1 {
            return quarantine(entry, name, "commit flag in the pool header is corrupt");
        }
        if root_oid != 0 {
            let root = crate::oid::Oid::from_raw(root_oid);
            let offset = u64::from(root.offset());
            if root.pool() != id
                || offset < heap_base_for(size)
                || offset.saturating_add(root_size) > size
            {
                return quarantine(entry, name, "root object in the pool header is corrupt");
            }
        }
        if commit_flag == 0 {
            return Ok(None);
        }
        let report = match crate::txn::replay_log_raw(&mut entry.storage) {
            Ok(report) => report,
            Err(RuntimeError::MediaError { .. }) => {
                return quarantine(entry, name, "redo log is unreadable")
            }
            Err(e) => return Err(e),
        };
        entry.storage.write(hdr::COMMIT_FLAG, &0u64.to_le_bytes())?;
        entry.storage.flush_line(hdr::COMMIT_FLAG);
        Ok(Some(report))
    }
}

/// Formats a pool's persistent header in place — magic, heap top, empty
/// root, clear commit flag, log geometry — then flushes the header.
/// Runs at pool creation and again when a scrub reformats a pool; the
/// caller re-emits the stores as trace events if an attachment exists.
fn format_header(storage: &mut crate::storage::PoolStorage, size: u64) {
    for (field, value) in [
        (hdr::MAGIC, POOL_MAGIC),
        (hdr::HEAP_TOP, heap_base_for(size)),
        (hdr::ROOT_OID, 0),
        (hdr::ROOT_SIZE, 0),
        (hdr::COMMIT_FLAG, 0),
        (hdr::LOG_BASE, HEADER_SIZE),
        (hdr::LOG_SIZE, log_bytes_for(size)),
    ] {
        storage.write(field, &value.to_le_bytes()).expect("header fits");
    }
    storage.flush_range(0, HEADER_SIZE);
}

/// Emits Load events in <=8-byte chunks (modelling word-sized moves).
fn emit_chunked_load(sink: &mut dyn TraceSink, va: Va, len: u64) {
    let mut done = 0;
    while done < len {
        let chunk = (len - done).min(8) as u8;
        sink.load(va + done, chunk);
        done += u64::from(chunk);
    }
}

/// Emits valued Store events in <=8-byte chunks (modelling word-sized
/// moves). Each chunk carries its written bytes, so a recorded trace is
/// sufficient to reconstruct the exact memory image any crash would
/// leave behind (the crash-image enumeration pass depends on this).
fn emit_chunked_store(sink: &mut dyn TraceSink, va: Va, bytes: &[u8]) {
    let mut done = 0;
    while done < bytes.len() {
        let chunk = (bytes.len() - done).min(8);
        let mut word = [0u8; 8];
        word[..chunk].copy_from_slice(&bytes[done..done + chunk]);
        sink.store_valued(va + done as u64, chunk as u8, u64::from_le_bytes(word));
        done += chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::{CountingSink, NullSink, RecordedTrace};

    fn rt_with_pool(size: u64) -> (PmRuntime, PmoId) {
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        let id = rt.pool_create("p", size, Mode::private(), &mut sink).unwrap();
        (rt, id)
    }

    #[test]
    fn materialized_pool_recovers_like_the_original() {
        // Build a real pool, capture its persisted line image, and
        // materialize that image into a second runtime: pool_open must
        // run recovery and hand back the same data.
        let mut sink = NullSink::new();
        let (mut rt, id) = rt_with_pool(1 << 20);
        let oid = rt.pmalloc(id, 64, &mut sink).unwrap();
        rt.write_bytes(oid, 0, &[0x5a; 64], &mut sink).unwrap();
        rt.persist(oid, 0, 64, &mut sink).unwrap();
        let image = rt.storage(id).unwrap().line_image();
        rt.pool_close(id, &mut sink).unwrap();

        let mut rt2 = PmRuntime::new();
        rt2.materialize_pool("copy", 1 << 20, Mode::private(), &image).unwrap();
        let id2 = rt2.pool_open("copy", AttachIntent::ReadWrite, &mut sink).unwrap();
        assert_eq!(rt2.pool_health("copy").unwrap(), PoolHealth::Healthy);
        let oid2 = Oid::new(id2, oid.offset()); // same layout, same slot
        let mut buf = [0u8; 64];
        rt2.read_bytes(oid2, 0, &mut buf, &mut sink).unwrap();
        assert_eq!(buf, [0x5a; 64]);
        rt2.pool_close(id2, &mut sink).unwrap();
    }

    #[test]
    fn materialized_garbage_is_quarantined() {
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        rt.materialize_pool("junk", 4096, Mode::private(), &[(0, [0xff; 64])]).unwrap();
        assert!(matches!(
            rt.pool_open("junk", AttachIntent::ReadWrite, &mut sink),
            Err(RuntimeError::PoolQuarantined { .. })
        ));
        assert_eq!(rt.pool_health("junk").unwrap(), PoolHealth::Quarantined);
    }

    #[test]
    fn materialize_rejects_out_of_range_lines() {
        let mut rt = PmRuntime::new();
        assert!(rt.materialize_pool("far", 4096, Mode::private(), &[(64, [0; 64])]).is_err());
        assert!(!rt.namespace().contains("far"), "failed materialization registers nothing");
    }

    #[test]
    fn create_attach_emits_event() {
        let mut rt = PmRuntime::new();
        let mut trace = RecordedTrace::new();
        let id = rt.pool_create("p", 1 << 20, Mode::private(), &mut trace).unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Attach { pmo, nvm: true, .. } if *pmo == id)));
        let att = rt.attachment(id).unwrap();
        assert_eq!(att.size, 1 << 20);
        assert_eq!(att.region, 2 << 20, "1MB pool reserves a 2MB granule");
        assert_eq!(att.base % att.region, 0);
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let a = rt.pmalloc(id, 64, &mut sink).unwrap();
        let b = rt.pmalloc(id, 64, &mut sink).unwrap();
        assert_ne!(a, b);
        rt.write_u64(a, 0, 0xdead, &mut sink).unwrap();
        rt.write_u64(b, 0, 0xbeef, &mut sink).unwrap();
        assert_eq!(rt.read_u64(a, 0, &mut sink).unwrap(), 0xdead);
        assert_eq!(rt.read_u64(b, 0, &mut sink).unwrap(), 0xbeef);
        // u32 and OID accessors.
        rt.write_u32(a, 8, 7, &mut sink).unwrap();
        assert_eq!(rt.read_u32(a, 8, &mut sink).unwrap(), 7);
        rt.write_oid(a, 16, b, &mut sink).unwrap();
        assert_eq!(rt.read_oid(a, 16, &mut sink).unwrap(), b);
    }

    #[test]
    fn accessors_emit_chunked_events() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let a = rt.pmalloc(id, 64, &mut sink).unwrap();
        let mut counter = CountingSink::new();
        rt.write_bytes(a, 0, &[0u8; 64], &mut counter).unwrap();
        assert_eq!(counter.counts().stores, 8, "64B write = 8 word stores");
        let mut buf = [0u8; 20];
        rt.read_bytes(a, 0, &mut buf, &mut counter).unwrap();
        assert_eq!(counter.counts().loads, 3, "20B read = 8+8+4");
    }

    #[test]
    fn pfree_recycles_slots() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let a = rt.pmalloc(id, 48, &mut sink).unwrap();
        rt.pfree(a, &mut sink).unwrap();
        let b = rt.pmalloc(id, 48, &mut sink).unwrap();
        assert_eq!(a, b, "same slot reused");
        // Double free is rejected.
        rt.pfree(b, &mut sink).unwrap();
        assert!(matches!(rt.pfree(b, &mut sink), Err(RuntimeError::InvalidOid { .. })));
    }

    #[test]
    fn pfree_in_txn_is_failure_atomic() {
        // A pfree staged inside a transaction must die with a discard:
        // the allocation stays live (its unlink writes never reached
        // storage either) and the slot must not be recycled. Found by
        // the multi-tenant server's chaos interleavings: an eagerly
        // freed node whose remove transaction was aborted stayed linked
        // in the structure while durably marked dead.
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let a = rt.pmalloc(id, 48, &mut sink).unwrap();
        rt.write_u64(a, 0, 42, &mut sink).unwrap();
        rt.persist(a, 0, 8, &mut sink).unwrap();
        rt.txn_begin(id).unwrap();
        rt.pfree(a, &mut sink).unwrap();
        // A double free inside the same transaction sees the staged
        // header flip and is rejected.
        assert!(matches!(rt.pfree(a, &mut sink), Err(RuntimeError::InvalidOid { .. })));
        rt.txn_discard();
        // Still live after the abort: data intact, not recycled, and
        // freeable again.
        assert_eq!(rt.read_u64(a, 0, &mut sink).unwrap(), 42);
        let b = rt.pmalloc(id, 48, &mut sink).unwrap();
        assert_ne!(a, b, "aborted free must not recycle the slot");
        // A committed transactional free recycles as usual.
        rt.txn_begin(id).unwrap();
        rt.pfree(a, &mut sink).unwrap();
        rt.txn_commit(&mut sink).unwrap();
        let c = rt.pmalloc(id, 48, &mut sink).unwrap();
        assert_eq!(a, c, "committed free recycles the slot");
    }

    #[test]
    fn heap_exhaustion() {
        let (mut rt, id) = rt_with_pool(4096);
        let mut sink = NullSink::new();
        // Heap is 4096 - 64 - 256 = 3776 bytes.
        let a = rt.pmalloc(id, 3000, &mut sink);
        assert!(a.is_ok());
        assert!(matches!(rt.pmalloc(id, 3000, &mut sink), Err(RuntimeError::OutOfMemory { .. })));
        assert!(matches!(rt.pmalloc(id, 0, &mut sink), Err(RuntimeError::InvalidSize(0))));
    }

    #[test]
    fn root_is_stable() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let r1 = rt.pool_root(id, 256, &mut sink).unwrap();
        let r2 = rt.pool_root(id, 256, &mut sink).unwrap();
        assert_eq!(r1, r2);
        // Survives close/open.
        rt.pool_close(id, &mut sink).unwrap();
        let id2 = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
        assert_eq!(id, id2, "PMO id is stable across attachments");
        let r3 = rt.pool_root(id2, 256, &mut sink).unwrap();
        assert_eq!(r1, r3);
    }

    #[test]
    fn read_only_attachment_rejects_writes() {
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        let id = rt.pool_create("p", 1 << 20, Mode::shared_read(), &mut sink).unwrap();
        let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
        rt.write_u64(obj, 0, 5, &mut sink).unwrap();
        rt.pool_close(id, &mut sink).unwrap();
        let id = rt.pool_open("p", AttachIntent::Read, &mut sink).unwrap();
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 5);
        assert!(matches!(
            rt.write_u64(obj, 0, 6, &mut sink),
            Err(RuntimeError::AccessViolation { .. })
        ));
        assert!(rt.pmalloc(id, 8, &mut sink).is_err());
    }

    #[test]
    fn oid_direct_checks_bounds() {
        let (mut rt, id) = rt_with_pool(4096);
        let mut sink = NullSink::new();
        let obj = rt.pmalloc(id, 16, &mut sink).unwrap();
        let va = rt.oid_direct(obj).unwrap();
        let att = rt.attachment(id).unwrap();
        assert_eq!(va, att.base + u64::from(obj.offset()));
        assert!(rt.oid_direct(Oid::new(id, 4096)).is_err());
        assert!(rt.oid_direct(Oid::new(PmoId::new(42), 0)).is_err());
    }

    #[test]
    fn detach_then_access_fails() {
        let (mut rt, id) = rt_with_pool(4096);
        let mut sink = NullSink::new();
        let obj = rt.pmalloc(id, 16, &mut sink).unwrap();
        rt.pool_close(id, &mut sink).unwrap();
        assert!(matches!(rt.read_u64(obj, 0, &mut sink), Err(RuntimeError::NotAttached(_))));
        assert!(rt.pool_close(id, &mut sink).is_err());
    }

    #[test]
    fn data_survives_detach_attach() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
        rt.write_u64(obj, 0, 99, &mut sink).unwrap();
        rt.pool_close(id, &mut sink).unwrap();
        let id = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 99);
        let _ = id;
    }

    #[test]
    fn crash_loses_unflushed_data() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
        rt.write_u64(obj, 0, 1, &mut sink).unwrap();
        rt.persist(obj, 0, 8, &mut sink).unwrap();
        rt.write_u64(obj, 8, 2, &mut sink).unwrap(); // never persisted
        rt.crash();
        let id = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
        let _ = id;
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 1, "persisted survives");
        assert_eq!(rt.read_u64(obj, 8, &mut sink).unwrap(), 0, "unflushed lost");
    }

    #[test]
    fn persist_emits_flush_and_fence() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        let obj = rt.pmalloc(id, 200, &mut sink).unwrap();
        rt.write_bytes(obj, 0, &[1u8; 200], &mut sink).unwrap();
        let mut counter = CountingSink::new();
        rt.persist(obj, 0, 200, &mut counter).unwrap();
        assert!(counter.counts().flushes >= 4, "200B spans at least 4 lines");
        assert_eq!(counter.counts().fences, 1);
    }

    #[test]
    fn relocation_with_aslr_preserves_oids() {
        // The paper's relocatability requirement: a PMO may re-attach at a
        // different VA in a later session; OIDs (pool + offset) must keep
        // resolving. With ASLR every session gets a fresh placement.
        let mut rt = PmRuntime::new();
        rt.enable_aslr(7);
        let mut sink = NullSink::new();
        let id = rt.pool_create("p", 1 << 20, Mode::private(), &mut sink).unwrap();
        let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
        rt.write_u64(obj, 0, 0xfeed, &mut sink).unwrap();
        let va1 = rt.oid_direct(obj).unwrap();
        rt.pool_close(id, &mut sink).unwrap();
        let id = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
        let va2 = rt.oid_direct(obj).unwrap();
        assert_ne!(va1, va2, "ASLR relocated the PMO");
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 0xfeed, "OID still resolves");
        let _ = id;
    }

    #[test]
    fn second_attach_while_attached_fails() {
        let (mut rt, _id) = rt_with_pool(4096);
        let mut sink = NullSink::new();
        assert!(matches!(
            rt.pool_open("p", AttachIntent::ReadWrite, &mut sink),
            Err(RuntimeError::ExclusivelyHeld(_) | RuntimeError::AlreadyAttached(_))
        ));
    }

    #[test]
    fn fault_injection_requires_attachment() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        // Unknown PMO: never attached by this runtime.
        let bogus = PmoId::new(999);
        assert_eq!(
            rt.inject_power_failure_after(bogus, 1),
            Err(RuntimeError::NotAttached(bogus)),
            "unknown id gets a typed error, not a panic or silent no-op"
        );
        assert_eq!(
            rt.inject_fault(bogus, FaultPlan::torn_write(1, 42)),
            Err(RuntimeError::NotAttached(bogus))
        );
        // Detached PMO: the pool exists in the namespace but is no longer
        // mapped, so arming a fault on it must also be refused.
        rt.pool_close(id, &mut sink).unwrap();
        assert_eq!(rt.inject_power_failure_after(id, 1), Err(RuntimeError::NotAttached(id)));
        assert_eq!(
            rt.inject_fault(id, FaultPlan::media_error(1, 7)),
            Err(RuntimeError::NotAttached(id))
        );
        // Re-attaching makes injection legal again.
        let id = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
        rt.inject_power_failure_after(id, 1_000_000).unwrap();
    }

    #[test]
    fn media_fault_during_commit_recovers_or_quarantines() {
        // A media fault that strikes mid-commit may leave the header or
        // redo log unreadable. Recovery must never panic: each seed either
        // replays cleanly or surfaces a typed quarantine that is sticky
        // until the pool is recreated. Sweep seeds so both paths execute.
        let mut quarantined = 0u32;
        let mut recovered = 0u32;
        for seed in 0..48u64 {
            let mut rt = PmRuntime::new();
            let mut sink = NullSink::new();
            let id = rt.pool_create("p", 1 << 20, Mode::private(), &mut sink).unwrap();
            let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
            // Fail the 5th store: log entry header, payload, terminator and
            // commit flag succeed, the home write does not, so the log and
            // header lines are all touched (poison candidates).
            rt.inject_fault(id, FaultPlan::media_error(4, seed)).unwrap();
            let mut tx = rt.begin_txn(id, &mut sink).unwrap();
            tx.write_u64(obj, 0, 0xabcd).unwrap();
            assert_eq!(tx.commit(), Err(RuntimeError::PowerFailure));
            rt.crash();
            match rt.pool_open("p", AttachIntent::ReadWrite, &mut sink) {
                Ok(id) => {
                    recovered += 1;
                    assert_eq!(
                        rt.read_u64(obj, 0, &mut sink).unwrap(),
                        0xabcd,
                        "committed log replayed (seed {seed})"
                    );
                    let _ = id;
                }
                Err(RuntimeError::PoolQuarantined { name, .. }) => {
                    quarantined += 1;
                    assert_eq!(name, "p");
                    // Quarantine is sticky: retry fails the same way and
                    // health reports it without attaching.
                    assert!(matches!(
                        rt.pool_open("p", AttachIntent::ReadWrite, &mut sink),
                        Err(RuntimeError::PoolQuarantined { .. })
                    ));
                    assert_eq!(rt.pool_health("p").unwrap(), PoolHealth::Quarantined);
                    // The runtime itself stays usable: other pools are fine.
                    let other = rt.pool_create("q", 4096, Mode::private(), &mut sink).unwrap();
                    let o = rt.pmalloc(other, 32, &mut sink).unwrap();
                    rt.write_u64(o, 0, 5, &mut sink).unwrap();
                    assert_eq!(rt.read_u64(o, 0, &mut sink).unwrap(), 5);
                }
                Err(other) => panic!("unexpected error for seed {seed}: {other}"),
            }
        }
        assert!(quarantined > 0, "some seed must poison header or log");
        assert!(recovered > 0, "some seed must leave recovery metadata intact");
    }

    /// Drives "p" into quarantine by poisoning recovery metadata mid-
    /// commit (sweeping seeds until one sticks) and returns the runtime.
    fn quarantined_fixture() -> PmRuntime {
        for seed in 0..64u64 {
            let mut rt = PmRuntime::new();
            let mut sink = NullSink::new();
            let id = rt.pool_create("p", 1 << 20, Mode::private(), &mut sink).unwrap();
            let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
            rt.inject_fault(id, FaultPlan::media_error(4, seed)).unwrap();
            let mut tx = rt.begin_txn(id, &mut sink).unwrap();
            tx.write_u64(obj, 0, 0xabcd).unwrap();
            let _ = tx.commit();
            rt.crash();
            if matches!(
                rt.pool_open("p", AttachIntent::ReadWrite, &mut sink),
                Err(RuntimeError::PoolQuarantined { .. })
            ) {
                return rt;
            }
        }
        panic!("no seed in 0..64 quarantined the pool");
    }

    #[test]
    fn scrub_releases_quarantine_and_pool_readmits() {
        let mut rt = quarantined_fixture();
        let mut sink = NullSink::new();
        assert_eq!(rt.pool_health("p").unwrap(), PoolHealth::Quarantined);
        let report = rt.pool_scrub("p").unwrap();
        assert!(report.quarantine_released.is_some(), "scrub lifts the quarantine");
        // The pool re-admits through the normal attach path, factory
        // fresh: healthy, recovery clean, old contents gone by design.
        let id = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
        assert_eq!(rt.pool_health("p").unwrap(), PoolHealth::Healthy);
        assert_eq!(rt.last_recovery(), None);
        let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
        rt.write_u64(obj, 0, 7, &mut sink).unwrap();
        assert_eq!(rt.read_u64(obj, 0, &mut sink).unwrap(), 7);
        rt.pool_close(id, &mut sink).unwrap();
    }

    #[test]
    fn requarantine_after_scrub_still_sticks() {
        // Scrubbing releases the flag, never the mechanism: a repeat
        // media error after re-admission must quarantine again.
        let mut rt = quarantined_fixture();
        let mut sink = NullSink::new();
        rt.pool_scrub("p").unwrap();
        for seed in 0..64u64 {
            let id = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
            let obj = rt.pmalloc(id, 64, &mut sink).unwrap();
            rt.inject_fault(id, FaultPlan::media_error(4, seed)).unwrap();
            let mut tx = rt.begin_txn(id, &mut sink).unwrap();
            tx.write_u64(obj, 0, 0xbeef).unwrap();
            let _ = tx.commit();
            rt.crash();
            match rt.pool_open("p", AttachIntent::ReadWrite, &mut sink) {
                Err(RuntimeError::PoolQuarantined { .. }) => {
                    assert_eq!(rt.pool_health("p").unwrap(), PoolHealth::Quarantined);
                    // Sticky until the next explicit scrub.
                    assert!(matches!(
                        rt.pool_open("p", AttachIntent::ReadWrite, &mut sink),
                        Err(RuntimeError::PoolQuarantined { .. })
                    ));
                    return;
                }
                Ok(id) => rt.pool_close(id, &mut sink).unwrap(),
                Err(other) => panic!("unexpected error for seed {seed}: {other}"),
            }
            // This seed recovered cleanly; wipe and try the next one.
            rt.pool_scrub("p").unwrap();
        }
        panic!("no seed in 0..64 re-quarantined the scrubbed pool");
    }

    #[test]
    fn scrub_refused_while_attached_or_for_non_owner() {
        let (mut rt, id) = rt_with_pool(1 << 20);
        let mut sink = NullSink::new();
        assert!(matches!(rt.pool_scrub("p"), Err(RuntimeError::ExclusivelyHeld(_))));
        rt.pool_close(id, &mut sink).unwrap();
        rt.set_uid(9);
        assert!(matches!(rt.pool_scrub("p"), Err(RuntimeError::PermissionDenied { .. })));
        rt.set_uid(0);
        assert!(rt.pool_scrub("p").is_ok());
        assert!(matches!(rt.pool_scrub("ghost"), Err(RuntimeError::NoSuchPool(_))));
    }

    #[test]
    fn crash_pool_is_a_fault_domain() {
        // Two tenants, two pools. Crashing one pool must lose only its
        // unflushed lines, tear down only its attachment, and leave the
        // other tenant's pool fully live — the isolation property the
        // multi-tenant server builds on.
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        let a = rt.pool_create("a", 1 << 20, Mode::private(), &mut sink).unwrap();
        let b = rt.pool_create("b", 1 << 20, Mode::private(), &mut sink).unwrap();
        let oa = rt.pmalloc(a, 64, &mut sink).unwrap();
        let ob = rt.pmalloc(b, 64, &mut sink).unwrap();
        rt.write_u64(oa, 0, 1, &mut sink).unwrap();
        rt.persist(oa, 0, 8, &mut sink).unwrap();
        rt.write_u64(oa, 8, 2, &mut sink).unwrap(); // unflushed: dies with a
        rt.write_u64(ob, 0, 3, &mut sink).unwrap(); // unflushed: must survive
        let mut trace = RecordedTrace::new();
        let lost = rt.crash_pool(a, &mut trace).unwrap();
        assert!(lost > 0, "pool a had unflushed lines");
        // Only pool a detached; the events landed in the trace.
        assert!(rt.attachment(a).is_err());
        assert!(rt.attachment(b).is_ok());
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Detach { pmo } if *pmo == a)));
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Shootdown { pmo } if *pmo == a)));
        // Pool b is untouched: even its unflushed write is still visible.
        assert_eq!(rt.read_u64(ob, 0, &mut sink).unwrap(), 3);
        // Pool a re-opens through recovery; persisted data survived,
        // unflushed data did not.
        let a = rt.pool_open("a", AttachIntent::ReadWrite, &mut sink).unwrap();
        assert_eq!(rt.read_u64(oa, 0, &mut sink).unwrap(), 1);
        assert_eq!(rt.read_u64(oa, 8, &mut sink).unwrap(), 0);
        let _ = a;
        // Crashing a detached pool is refused.
        assert!(matches!(
            rt.crash_pool(PmoId::new(99), &mut sink),
            Err(RuntimeError::NotAttached(_))
        ));
    }

    #[test]
    fn crash_pool_discards_only_its_transaction() {
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        let a = rt.pool_create("a", 1 << 20, Mode::private(), &mut sink).unwrap();
        let b = rt.pool_create("b", 1 << 20, Mode::private(), &mut sink).unwrap();
        let ob = rt.pmalloc(b, 64, &mut sink).unwrap();
        // Txn open on b: crashing a must leave it staged.
        rt.txn_begin(b).unwrap();
        rt.write_u64(ob, 0, 5, &mut sink).unwrap();
        rt.crash_pool(a, &mut sink).unwrap();
        assert_eq!(rt.txn_active(), Some(b));
        rt.txn_commit(&mut sink).unwrap();
        assert_eq!(rt.read_u64(ob, 0, &mut sink).unwrap(), 5);
        // Txn open on b: crashing b evaporates the staging.
        rt.txn_begin(b).unwrap();
        rt.write_u64(ob, 0, 6, &mut sink).unwrap();
        rt.crash_pool(b, &mut sink).unwrap();
        assert_eq!(rt.txn_active(), None);
        let b = rt.pool_open("b", AttachIntent::ReadWrite, &mut sink).unwrap();
        assert_eq!(rt.read_u64(ob, 0, &mut sink).unwrap(), 5, "staged write never landed");
        let _ = b;
    }

    #[test]
    fn media_fault_on_data_degrades_and_overwrite_repairs() {
        // Poisoned *data* lines do not quarantine the pool: it re-attaches
        // as Degraded, reads of damaged lines fail with a typed MediaError,
        // and a full-line overwrite repairs the line.
        for seed in 0..64u64 {
            let mut rt = PmRuntime::new();
            let mut sink = NullSink::new();
            let id = rt.pool_create("p", 1 << 20, Mode::private(), &mut sink).unwrap();
            let obj = rt.pmalloc(id, 256, &mut sink).unwrap();
            // The allocation header skews objects off cache-line boundaries;
            // repair needs full-line overwrites, so work on the first two
            // line-aligned offsets inside the object.
            let align = (64 - obj.offset() % 64) % 64;
            rt.write_u64(obj, align, 1, &mut sink).unwrap();
            rt.persist(obj, align, 8, &mut sink).unwrap();
            // Arm, then touch only the object's data lines before crashing.
            rt.inject_fault(id, FaultPlan::media_error(2, seed)).unwrap();
            rt.write_u64(obj, align, 2, &mut sink).unwrap();
            rt.write_u64(obj, align + 64, 3, &mut sink).unwrap();
            assert_eq!(
                rt.write_u64(obj, align + 64, 4, &mut sink),
                Err(RuntimeError::PowerFailure)
            );
            rt.crash();
            let id = rt.pool_open("p", AttachIntent::ReadWrite, &mut sink).unwrap();
            if rt.pool_health("p").unwrap() != PoolHealth::Degraded {
                continue; // this seed poisoned nothing; try the next
            }
            // At least one of the two touched lines is unreadable.
            let r0 = rt.read_u64(obj, align, &mut sink);
            let r1 = rt.read_u64(obj, align + 64, &mut sink);
            assert!(
                matches!(r0, Err(RuntimeError::MediaError { .. }))
                    || matches!(r1, Err(RuntimeError::MediaError { .. })),
                "degraded pool must have an unreadable line (seed {seed})"
            );
            // Full-line overwrites repair every damaged line.
            rt.write_bytes(obj, align, &[0u8; 128], &mut sink).unwrap();
            rt.read_u64(obj, align, &mut sink).unwrap();
            rt.read_u64(obj, align + 64, &mut sink).unwrap();
            assert_eq!(rt.pool_health("p").unwrap(), PoolHealth::Healthy);
            let _ = id;
            return;
        }
        panic!("no seed in 0..64 degraded the pool; media fault model is broken");
    }
}
