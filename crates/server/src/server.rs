//! The sharded multi-tenant pool server.
//!
//! A [`PoolServer`] is one *shard*: a single-threaded manager owning one
//! [`PmRuntime`], one [`KeyAllocator`], and N tenants, each with its own
//! pool (= fault domain) and persistent structure. Tenant operations are
//! interleaved by the caller (the soak campaign's deterministic
//! scheduler); the server emits a [`TraceEvent::ThreadSwitch`] whenever
//! the serving tenant changes, so one shard trace audits like a
//! multi-threaded execution.
//!
//! Robustness machinery, per tenant:
//!
//! * **fault domains** — chaos fired against one tenant's pool crashes
//!   only that pool ([`PmRuntime::crash_pool`]); other tenants never
//!   observe it;
//! * **retry policy** — transient faults re-admit and retry with bounded
//!   attempts and seeded backoff ([`RetryPolicy`]);
//! * **degradation ladder** — media damage degrades the tenant to
//!   read-only; writes (and quarantine) escalate through the
//!   scrub/release path ([`PmRuntime::pool_scrub`]) back to healthy;
//! * **admission control** — pools hold protection keys while attached;
//!   past the 16-key cliff the PLRU allocator evicts a victim tenant,
//!   which transparently re-admits on its next operation.

use std::collections::BTreeMap;

use pmo_protect::KeyAllocator;
use pmo_runtime::{AttachIntent, FaultPlan, Mode, PmRuntime, PoolHealth, RuntimeError};
use pmo_trace::{FaultKind, Perm, PmoId, ThreadId, TraceEvent, TraceSink};
use pmo_workloads::structs::{
    AvlTree, BplusTree, KeyedStructure, LinkedList, PersistentHashmap, RbTree,
};

use crate::clock::LogicalClock;
use crate::health::{HealthCounters, HealthSlot, TenantHealth};
use crate::policy::{classify, FaultClass, RetryDecision, RetryPolicy};

/// Tenant identifier within a shard (also the tenant's [`ThreadId`]).
pub type TenantId = u32;

/// Latency samples kept per tenant; beyond the cap samples are counted
/// but dropped (counted truncation, never silent).
pub const LATENCY_SAMPLE_CAP: usize = 4096;

/// The persistent structure a tenant runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// AVL tree.
    Avl,
    /// Red-black tree.
    Rbt,
    /// B+tree.
    Bplus,
    /// Sorted linked list.
    List,
    /// Chained hashmap.
    Hashmap,
}

impl WorkloadKind {
    /// Every workload, in canonical order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Avl,
        WorkloadKind::Rbt,
        WorkloadKind::Bplus,
        WorkloadKind::List,
        WorkloadKind::Hashmap,
    ];

    /// Short label for reports and repro lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Avl => "avl",
            WorkloadKind::Rbt => "rbtree",
            WorkloadKind::Bplus => "bplus",
            WorkloadKind::List => "list",
            WorkloadKind::Hashmap => "hashmap",
        }
    }

    /// Parses a label back into a workload.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        WorkloadKind::ALL.into_iter().find(|w| w.label() == label)
    }
}

/// Type-erased handle over the tenant's structure.
#[derive(Debug)]
enum Handle {
    Avl(AvlTree),
    Rbt(RbTree),
    Bplus(BplusTree),
    List(LinkedList),
    Hashmap(PersistentHashmap),
}

impl Handle {
    fn create(
        kind: WorkloadKind,
        rt: &mut PmRuntime,
        pool: PmoId,
        value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Handle, RuntimeError> {
        Ok(match kind {
            WorkloadKind::Avl => Handle::Avl(AvlTree::create(rt, pool, value_bytes, sink)?),
            WorkloadKind::Rbt => Handle::Rbt(RbTree::create(rt, pool, value_bytes, sink)?),
            WorkloadKind::Bplus => Handle::Bplus(BplusTree::create(rt, pool, value_bytes, sink)?),
            WorkloadKind::List => Handle::List(LinkedList::create(rt, pool, value_bytes, sink)?),
            WorkloadKind::Hashmap => {
                Handle::Hashmap(PersistentHashmap::create(rt, pool, value_bytes, sink)?)
            }
        })
    }

    fn insert(
        &mut self,
        rt: &mut PmRuntime,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<(), RuntimeError> {
        match self {
            Handle::Avl(s) => s.insert(rt, key, sink),
            Handle::Rbt(s) => s.insert(rt, key, sink),
            Handle::Bplus(s) => s.insert(rt, key, sink),
            Handle::List(s) => s.insert(rt, key, sink),
            Handle::Hashmap(s) => s.insert(rt, key, sink),
        }
    }

    fn remove(
        &mut self,
        rt: &mut PmRuntime,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<bool, RuntimeError> {
        match self {
            Handle::Avl(s) => s.remove(rt, key, sink),
            Handle::Rbt(s) => s.remove(rt, key, sink),
            Handle::Bplus(s) => s.remove(rt, key, sink),
            Handle::List(s) => s.remove(rt, key, sink),
            Handle::Hashmap(s) => s.remove(rt, key, sink),
        }
    }

    fn contains(
        &mut self,
        rt: &mut PmRuntime,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<bool, RuntimeError> {
        match self {
            Handle::Avl(s) => s.contains(rt, key, sink),
            Handle::Rbt(s) => s.contains(rt, key, sink),
            Handle::Bplus(s) => s.contains(rt, key, sink),
            Handle::List(s) => s.contains(rt, key, sink),
            Handle::Hashmap(s) => s.contains(rt, key, sink),
        }
    }
}

/// One tenant operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert `key` (transactional).
    Insert(u64),
    /// Remove `key` (transactional); reports whether it was present.
    Remove(u64),
    /// Membership probe (read-only).
    Contains(u64),
}

impl Op {
    /// Whether the operation mutates the structure.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, Op::Insert(_) | Op::Remove(_))
    }

    /// The key the operation targets.
    #[must_use]
    pub fn key(self) -> u64 {
        match self {
            Op::Insert(k) | Op::Remove(k) | Op::Contains(k) => k,
        }
    }
}

/// How one operation concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation executed; for remove/contains, whether the key was
    /// present.
    Applied {
        /// Membership result (always `true` for inserts).
        present: bool,
    },
    /// A read hit a typed media error on a degraded pool (bounded,
    /// reported loss — never silent damage).
    MediaFault,
    /// The transient-retry budget ran out; the tenant remains registered
    /// and later operations start fresh.
    GaveUp,
}

/// Everything one [`PoolServer::op`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpReport {
    /// How the operation concluded.
    pub outcome: OpOutcome,
    /// Logical ticks the operation took, including recovery and backoff.
    pub latency: u64,
    /// Transient retries performed within this operation.
    pub retries: u64,
    /// Whether recovery scrubbed the tenant's pool (all prior contents
    /// gone; callers must reset their expectations for this tenant).
    pub wiped: bool,
    /// Tenants evicted by admission control while serving this
    /// operation.
    pub evictions: u64,
}

/// Per-tenant robustness counters (the soak campaign aggregates these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Operations served (every [`PoolServer::op`] call).
    pub ops: u64,
    /// Operations that concluded [`OpOutcome::Applied`].
    pub applied: u64,
    /// Transient retries across all operations.
    pub retries: u64,
    /// Operations that exhausted the retry budget.
    pub exhausted: u64,
    /// Chaos faults that fired against this tenant's pool.
    pub faults: u64,
    /// Typed media errors observed (reads of poisoned lines).
    pub media_errors: u64,
    /// Writes that escalated a degraded pool into the scrub path.
    pub media_escalations: u64,
    /// Scrub recoveries (each wipes the tenant's pool).
    pub wipes: u64,
    /// Latency samples dropped beyond [`LATENCY_SAMPLE_CAP`].
    pub latency_dropped: u64,
}

/// Deterministic latency percentiles over a tenant's recorded samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded (excluding dropped ones).
    pub samples: u64,
    /// Samples dropped by the cap.
    pub dropped: u64,
    /// Median latency in logical ticks.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed latency.
    pub max: u64,
}

/// Nearest-rank percentile (`numer/denom`, e.g. 999/1000) over an
/// ascending-sorted slice. Returns 0 for an empty slice.
#[must_use]
pub fn nearest_rank(sorted: &[u64], numer: u64, denom: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (n * numer).div_ceil(denom).max(1);
    sorted[(rank - 1) as usize]
}

/// One registered tenant.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    workload: WorkloadKind,
    pool: Option<PmoId>,
    handle: Option<Handle>,
    health: HealthSlot,
    counters: TenantCounters,
    armed: Option<FaultKind>,
    latencies: Vec<u64>,
}

impl Tenant {
    /// The tenant's pool name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structure this tenant runs.
    #[must_use]
    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// Current ladder position.
    #[must_use]
    pub fn health(&self) -> TenantHealth {
        self.health.state()
    }

    /// Ladder transition counters.
    #[must_use]
    pub fn health_counters(&self) -> HealthCounters {
        self.health.counters()
    }

    /// Robustness counters.
    #[must_use]
    pub fn counters(&self) -> TenantCounters {
        self.counters
    }

    /// Whether the tenant currently holds an attachment (and a key).
    #[must_use]
    pub fn attached(&self) -> bool {
        self.pool.is_some()
    }

    /// Raw latency samples, in operation order (capped at
    /// [`LATENCY_SAMPLE_CAP`]; the overflow count is in
    /// [`TenantCounters::latency_dropped`]).
    #[must_use]
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }

    /// Deterministic latency percentiles over this tenant's operations.
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        LatencySummary {
            samples: sorted.len() as u64,
            dropped: self.counters.latency_dropped,
            p50: nearest_rank(&sorted, 50, 100),
            p99: nearest_rank(&sorted, 99, 100),
            p999: nearest_rank(&sorted, 999, 1000),
            max: sorted.last().copied().unwrap_or(0),
        }
    }
}

/// Shard configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Architected protection keys (16 for MPK; key 0 is reserved, so
    /// `keys - 1` tenants attach concurrently before eviction starts).
    pub keys: u32,
    /// Pool size per tenant.
    pub pool_bytes: u64,
    /// Value payload bytes for tenant structures.
    pub value_bytes: u32,
    /// Retry/backoff policy for transient faults.
    pub policy: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            keys: 16,
            pool_bytes: 1 << 20,
            value_bytes: 32,
            policy: RetryPolicy::default(),
        }
    }
}

/// A sink adapter that counts events flowing through it, so the server
/// can advance its logical clock by the work an operation performed.
struct CountingTee<'a> {
    inner: &'a mut dyn TraceSink,
    events: u64,
}

impl TraceSink for CountingTee<'_> {
    fn event(&mut self, ev: TraceEvent) {
        self.events += 1;
        self.inner.event(ev);
    }
}

/// One shard of the multi-tenant pool service.
#[derive(Debug)]
pub struct PoolServer {
    rt: PmRuntime,
    keys: KeyAllocator,
    clock: LogicalClock,
    cfg: ServerConfig,
    tenants: BTreeMap<TenantId, Tenant>,
    current: Option<TenantId>,
}

impl PoolServer {
    /// Creates an empty shard.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.keys` is outside `2..=64` (the [`KeyAllocator`]
    /// contract).
    #[must_use]
    pub fn new(cfg: ServerConfig) -> Self {
        PoolServer {
            rt: PmRuntime::new(),
            keys: KeyAllocator::new(cfg.keys),
            clock: LogicalClock::new(),
            cfg,
            tenants: BTreeMap::new(),
            current: None,
        }
    }

    /// Registers a tenant. Its pool is created lazily on first use.
    ///
    /// # Panics
    ///
    /// Panics if the tenant id is already registered.
    pub fn register(&mut self, t: TenantId, workload: WorkloadKind) {
        let prev = self.tenants.insert(
            t,
            Tenant {
                name: format!("tenant-{t:05}"),
                workload,
                pool: None,
                handle: None,
                health: HealthSlot::default(),
                counters: TenantCounters::default(),
                armed: None,
                latencies: Vec::new(),
            },
        );
        assert!(prev.is_none(), "tenant {t} registered twice");
    }

    /// The shard's logical clock.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock.now()
    }

    /// Protection keys currently assigned.
    #[must_use]
    pub fn keys_in_use(&self) -> u32 {
        self.keys.in_use()
    }

    /// Looks up a tenant.
    #[must_use]
    pub fn tenant(&self, t: TenantId) -> Option<&Tenant> {
        self.tenants.get(&t)
    }

    /// Iterates over `(id, tenant)` in id order.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, &Tenant)> {
        self.tenants.iter().map(|(id, ten)| (*id, ten))
    }

    /// Arms a chaos fault against `t`'s pool (attaching it first if
    /// needed, which may evict a victim; the count is returned). The
    /// fault fires on a later store, from where the server runs its
    /// normal fault-domain recovery.
    ///
    /// # Errors
    ///
    /// Fails if the tenant cannot be admitted (e.g. currently
    /// quarantined: recovery happens on its next operation, after which
    /// chaos can be re-armed).
    pub fn inject_chaos(
        &mut self,
        t: TenantId,
        plan: FaultPlan,
        sink: &mut dyn TraceSink,
    ) -> Result<u64, RuntimeError> {
        assert!(self.tenants.contains_key(&t), "tenant {t} not registered");
        self.switch_thread(t, sink);
        let mut evictions = 0;
        if self.tenants[&t].pool.is_none() {
            evictions = self.attach_tenant(t, sink)?;
        }
        let pool = self.tenants[&t].pool.expect("attached above");
        self.rt.inject_fault(pool, plan)?;
        self.tenants.get_mut(&t).expect("registered").armed = Some(plan.kind);
        Ok(evictions)
    }

    /// Serves one tenant operation, running the full robustness ladder
    /// (re-admission, transient retry with backoff, media escalation,
    /// scrub recovery) as needed.
    ///
    /// # Errors
    ///
    /// Only hard errors (programming bugs, resource exhaustion)
    /// propagate; every chaos outcome is absorbed into the returned
    /// [`OpReport`].
    ///
    /// # Panics
    ///
    /// Panics if the tenant is not registered, or on an illegal health
    /// ladder transition (a server bug).
    pub fn op(
        &mut self,
        t: TenantId,
        op: Op,
        sink: &mut dyn TraceSink,
    ) -> Result<OpReport, RuntimeError> {
        assert!(self.tenants.contains_key(&t), "tenant {t} not registered");
        self.switch_thread(t, sink);
        let start = self.clock.now();
        let mut report = OpReport {
            outcome: OpOutcome::GaveUp,
            latency: 0,
            retries: 0,
            wiped: false,
            evictions: 0,
        };
        self.tenants.get_mut(&t).expect("registered").counters.ops += 1;
        let mut attempt: u32 = 0;
        let max_steps = self.cfg.policy.max_attempts as usize + 8;
        for _ in 0..max_steps {
            // Ladder-driven recovery work, before the measured attempt.
            let state = self.tenants[&t].health.state();
            if state == TenantHealth::Quarantined {
                match self.wipe(t, sink) {
                    Ok(evictions) => {
                        report.wiped = true;
                        report.evictions += evictions;
                        continue;
                    }
                    Err(e) => {
                        self.note_recovery_failure(t, &e)?;
                        continue;
                    }
                }
            }
            if op.is_write() && state == TenantHealth::Degraded {
                // Deterministic media damage never heals by retrying the
                // same reads: escalate the write through the scrub path.
                self.tenants.get_mut(&t).expect("registered").counters.media_escalations += 1;
                self.step_health(t, TenantHealth::Quarantined);
                continue;
            }
            if self.tenants[&t].pool.is_none() {
                match self.attach_tenant(t, sink) {
                    Ok(evictions) => report.evictions += evictions,
                    Err(e) => {
                        self.note_recovery_failure(t, &e)?;
                        continue;
                    }
                }
            }
            // The measured attempt: one tick per trace event emitted.
            let mut tee = CountingTee { inner: sink, events: 0 };
            let result = self.run_attached_op(t, op, &mut tee);
            let events = tee.events;
            self.clock.advance(events.max(1));
            match result {
                Ok(present) => {
                    report.outcome = OpOutcome::Applied { present };
                    let ten = self.tenants.get_mut(&t).expect("registered");
                    ten.counters.applied += 1;
                    break;
                }
                Err(RuntimeError::PowerFailure) => {
                    attempt += 1;
                    self.on_chaos_fired(t, sink)?;
                    match self.cfg.policy.decide(FaultClass::Transient, attempt, u64::from(t)) {
                        RetryDecision::RetryAfter(ticks) => {
                            self.clock.advance(ticks);
                            report.retries += 1;
                            self.tenants.get_mut(&t).expect("registered").counters.retries += 1;
                        }
                        RetryDecision::Escalate | RetryDecision::GiveUp => {
                            self.tenants.get_mut(&t).expect("registered").counters.exhausted += 1;
                            report.outcome = OpOutcome::GaveUp;
                            break;
                        }
                    }
                }
                Err(RuntimeError::MediaError { .. }) => {
                    let ten = self.tenants.get_mut(&t).expect("registered");
                    ten.counters.media_errors += 1;
                    if ten.health.state() == TenantHealth::Healthy {
                        ten.health.step(TenantHealth::Degraded);
                    }
                    if !op.is_write() {
                        report.outcome = OpOutcome::MediaFault;
                        break;
                    }
                    // A write: loop back; the Degraded branch escalates.
                }
                Err(other) => return Err(other),
            }
        }
        let latency = self.clock.now() - start;
        report.latency = latency;
        let ten = self.tenants.get_mut(&t).expect("registered");
        if ten.latencies.len() < LATENCY_SAMPLE_CAP {
            ten.latencies.push(latency);
        } else {
            ten.counters.latency_dropped += 1;
        }
        Ok(report)
    }

    /// Verifies the key-allocation invariants the admission controller
    /// must maintain: every assigned key maps to exactly one attached
    /// tenant pool, no tenant holds two keys, and every attached tenant
    /// holds exactly one key.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_key_invariants(&self) -> Result<(), String> {
        let mut seen_pools = std::collections::BTreeSet::new();
        for (key, pool) in self.keys.assignments() {
            if !seen_pools.insert(pool) {
                return Err(format!("pool {pool} holds more than one key"));
            }
            let holders: Vec<TenantId> = self
                .tenants
                .iter()
                .filter(|(_, ten)| ten.pool == Some(pool))
                .map(|(id, _)| *id)
                .collect();
            if holders.len() != 1 {
                return Err(format!(
                    "key {key} -> pool {pool} is held by {} tenants (want exactly 1)",
                    holders.len()
                ));
            }
            if self.rt.attachment(pool).is_err() {
                return Err(format!("key {key} assigned to detached pool {pool}"));
            }
        }
        for (id, ten) in &self.tenants {
            if let Some(pool) = ten.pool {
                if self.keys.key_of(pool).is_none() {
                    return Err(format!("attached tenant {id} (pool {pool}) holds no key"));
                }
            }
        }
        if self.keys.in_use() > self.keys.usable() {
            return Err(format!(
                "{} keys in use exceeds {} usable",
                self.keys.in_use(),
                self.keys.usable()
            ));
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    fn switch_thread(&mut self, t: TenantId, sink: &mut dyn TraceSink) {
        if self.current != Some(t) {
            sink.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(t) });
            self.current = Some(t);
            self.clock.advance(1);
        }
    }

    fn step_health(&mut self, t: TenantId, next: TenantHealth) {
        self.tenants.get_mut(&t).expect("registered").health.step(next);
    }

    /// Classifies a failure of a recovery step (attach or scrub). A
    /// quarantine steps the ladder and lets the caller loop; anything
    /// else is a hard error.
    fn note_recovery_failure(&mut self, t: TenantId, e: &RuntimeError) -> Result<(), RuntimeError> {
        match classify(e) {
            FaultClass::Quarantine => {
                let state = self.tenants[&t].health.state();
                if state != TenantHealth::Quarantined {
                    self.step_health(t, TenantHealth::Quarantined);
                }
                Ok(())
            }
            _ => Err(e.clone()),
        }
    }

    /// Attaches a registered-but-detached tenant: opens (or creates) its
    /// pool, takes a protection key (evicting a PLRU victim past the
    /// cliff), and rebuilds the structure handle. Returns the number of
    /// victims evicted.
    fn attach_tenant(
        &mut self,
        t: TenantId,
        sink: &mut dyn TraceSink,
    ) -> Result<u64, RuntimeError> {
        let (name, workload) = {
            let ten = &self.tenants[&t];
            debug_assert!(ten.pool.is_none(), "attach_tenant on an attached tenant");
            (ten.name.clone(), ten.workload)
        };
        let pool = if self.rt.namespace().contains(&name) {
            self.rt.pool_open(&name, AttachIntent::ReadWrite, sink)?
        } else {
            self.rt.pool_create(&name, self.cfg.pool_bytes, Mode::private(), sink)?
        };
        let mut evictions = 0;
        if self.keys.alloc(pool).is_none() {
            let (_key, victim_pool) = self.keys.evict_and_assign(pool);
            self.evict_tenant_of(victim_pool, sink)?;
            self.switch_thread(t, sink);
            evictions = 1;
        }
        // The tenant's write window spans its attachment (the server
        // plays the application's permission protocol, as faultsim
        // does); every detach path below revokes it first.
        sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
        match Handle::create(workload, &mut self.rt, pool, self.cfg.value_bytes, sink) {
            Ok(handle) => {
                let ten = self.tenants.get_mut(&t).expect("registered");
                ten.pool = Some(pool);
                ten.handle = Some(handle);
                match ten.health.state() {
                    TenantHealth::Evicted | TenantHealth::Recovering => {
                        ten.health.step(TenantHealth::Healthy);
                    }
                    _ => {}
                }
                // Chaos may have poisoned data lines during the crash
                // that detached us; surface that on the ladder.
                if self.rt.pool_health(&name)? == PoolHealth::Degraded
                    && self.tenants[&t].health.state() == TenantHealth::Healthy
                {
                    self.step_health(t, TenantHealth::Degraded);
                }
                Ok(evictions)
            }
            Err(e) => {
                // Roll the admission back fully so the key map and the
                // runtime agree the tenant is detached.
                sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
                self.keys.free(pool);
                self.rt.pool_close(pool, sink)?;
                Err(e)
            }
        }
    }

    /// Detaches the tenant owning `victim_pool` because admission
    /// control reassigned its key.
    fn evict_tenant_of(
        &mut self,
        victim_pool: PmoId,
        sink: &mut dyn TraceSink,
    ) -> Result<(), RuntimeError> {
        let victim = self
            .tenants
            .iter()
            .find(|(_, ten)| ten.pool == Some(victim_pool))
            .map(|(id, _)| *id)
            .expect("every assigned key belongs to an attached tenant");
        let ten = self.tenants.get_mut(&victim).expect("found above");
        ten.pool = None;
        ten.handle = None;
        ten.health.step(TenantHealth::Evicted);
        // The victim's window was granted on its own thread; revoke it
        // there so the detach finds no grant outstanding.
        self.switch_thread(victim, sink);
        sink.event(TraceEvent::SetPerm { pmo: victim_pool, perm: Perm::None });
        self.rt.pool_close(victim_pool, sink)?;
        Ok(())
    }

    /// The scrub/release recovery ladder: detach (if needed), scrub the
    /// pool (wiping it), re-admit, and climb back to healthy. Returns
    /// victims evicted during re-admission.
    fn wipe(&mut self, t: TenantId, sink: &mut dyn TraceSink) -> Result<u64, RuntimeError> {
        let name = self.tenants[&t].name.clone();
        if let Some(pool) = self.tenants.get_mut(&t).expect("registered").pool.take() {
            self.tenants.get_mut(&t).expect("registered").handle = None;
            self.keys.free(pool);
            self.rt.txn_discard();
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
            self.rt.pool_close(pool, sink)?;
        }
        self.step_health(t, TenantHealth::Recovering);
        self.rt.pool_scrub(&name)?;
        self.tenants.get_mut(&t).expect("registered").counters.wipes += 1;
        self.attach_tenant(t, sink)
    }

    /// Bookkeeping when an armed chaos fault fires: record the
    /// [`TraceEvent::Fault`], crash the tenant's pool (fault domain:
    /// nothing else is touched), and release its key.
    fn on_chaos_fired(
        &mut self,
        t: TenantId,
        sink: &mut dyn TraceSink,
    ) -> Result<(), RuntimeError> {
        let ten = self.tenants.get_mut(&t).expect("registered");
        ten.counters.faults += 1;
        let kind = ten.armed.take().unwrap_or(FaultKind::PowerFailure);
        let Some(pool) = ten.pool.take() else {
            return Ok(());
        };
        ten.handle = None;
        sink.event(TraceEvent::Fault { pmo: pool, kind });
        // Permission state is volatile: the crash ends the window.
        sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
        self.keys.free(pool);
        self.rt.crash_pool(pool, sink)?;
        Ok(())
    }

    /// One measured attempt against an attached tenant, inside the
    /// attachment-lifetime permission window [`attach_tenant`] opened.
    /// A failed attempt discards its staged transaction so nothing of
    /// it survives into the retry.
    fn run_attached_op(
        &mut self,
        t: TenantId,
        op: Op,
        sink: &mut dyn TraceSink,
    ) -> Result<bool, RuntimeError> {
        let pool = self.tenants[&t].pool.expect("caller attached the tenant");
        // Mark the tenant's key used so PLRU eviction prefers idle
        // tenants over active ones.
        if let Some(key) = self.keys.key_of(pool) {
            self.keys.touch(key);
        }
        let mut handle = self
            .tenants
            .get_mut(&t)
            .expect("registered")
            .handle
            .take()
            .expect("attached tenant has a handle");
        let result = run_txn_op(&mut self.rt, &mut handle, pool, op, sink);
        if result.is_err() {
            // A fault mid-transaction leaves staged writes behind;
            // nothing of the failed attempt may survive.
            self.rt.txn_discard();
        }
        self.tenants.get_mut(&t).expect("registered").handle = Some(handle);
        result
    }
}

/// Runs one operation; writes are wrapped in a durable transaction so a
/// chaos fault can never tear a structure operation in half.
fn run_txn_op(
    rt: &mut PmRuntime,
    handle: &mut Handle,
    pool: PmoId,
    op: Op,
    sink: &mut dyn TraceSink,
) -> Result<bool, RuntimeError> {
    match op {
        Op::Contains(key) => handle.contains(rt, key, sink),
        Op::Insert(key) => {
            rt.txn_begin(pool)?;
            handle.insert(rt, key, sink)?;
            rt.txn_commit(sink)?;
            Ok(true)
        }
        Op::Remove(key) => {
            rt.txn_begin(pool)?;
            let present = handle.remove(rt, key, sink)?;
            rt.txn_commit(sink)?;
            Ok(present)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_analyzer::{Analyzer, GatePass, PermWindowPass};
    use pmo_trace::NullSink;

    fn server() -> PoolServer {
        PoolServer::new(ServerConfig { pool_bytes: 1 << 20, ..ServerConfig::default() })
    }

    #[test]
    fn healthy_tenants_serve_ops_and_record_latency() {
        let mut srv = server();
        let mut sink = NullSink::new();
        srv.register(1, WorkloadKind::Avl);
        srv.register(2, WorkloadKind::Hashmap);
        for k in 0..20u64 {
            let r = srv.op(1, Op::Insert(k), &mut sink).unwrap();
            assert_eq!(r.outcome, OpOutcome::Applied { present: true });
            assert!(r.latency > 0);
            let r = srv.op(2, Op::Insert(k * 7), &mut sink).unwrap();
            assert_eq!(r.outcome, OpOutcome::Applied { present: true });
        }
        let r = srv.op(1, Op::Contains(5), &mut sink).unwrap();
        assert_eq!(r.outcome, OpOutcome::Applied { present: true });
        let r = srv.op(1, Op::Remove(5), &mut sink).unwrap();
        assert_eq!(r.outcome, OpOutcome::Applied { present: true });
        let r = srv.op(1, Op::Contains(5), &mut sink).unwrap();
        assert_eq!(r.outcome, OpOutcome::Applied { present: false });
        let ten = srv.tenant(1).unwrap();
        assert_eq!(ten.health(), TenantHealth::Healthy);
        assert_eq!(ten.counters().ops, 23);
        assert_eq!(ten.counters().applied, 23);
        let lat = ten.latency_summary();
        assert_eq!(lat.samples, 23);
        assert!(lat.p50 > 0 && lat.p50 <= lat.p99 && lat.p99 <= lat.p999);
        assert!(lat.p999 <= lat.max);
        srv.check_key_invariants().unwrap();
    }

    #[test]
    fn power_failure_chaos_retries_and_isolates() {
        let mut srv = server();
        let mut sink = NullSink::new();
        srv.register(1, WorkloadKind::List);
        srv.register(2, WorkloadKind::Rbt);
        for k in 0..8u64 {
            srv.op(1, Op::Insert(k), &mut sink).unwrap();
            srv.op(2, Op::Insert(k), &mut sink).unwrap();
        }
        srv.inject_chaos(1, FaultPlan::power_failure(3), &mut sink).unwrap();
        // Drive tenant 1 until the fault fires; the op must recover and
        // apply within its retry budget.
        let mut fired = false;
        for k in 8..24u64 {
            let r = srv.op(1, Op::Insert(k), &mut sink).unwrap();
            assert_eq!(r.outcome, OpOutcome::Applied { present: true }, "k={k}");
            if r.retries > 0 {
                fired = true;
                break;
            }
        }
        assert!(fired, "chaos must fire within the driven ops");
        let c = srv.tenant(1).unwrap().counters();
        assert_eq!(c.faults, 1);
        assert!(c.retries > 0);
        assert_eq!(c.exhausted, 0);
        // Tenant 2 never noticed: still healthy, data intact.
        assert_eq!(srv.tenant(2).unwrap().health(), TenantHealth::Healthy);
        let r = srv.op(2, Op::Contains(3), &mut sink).unwrap();
        assert_eq!(r.outcome, OpOutcome::Applied { present: true });
        // Tenant 1's committed data survived the power failure.
        let r = srv.op(1, Op::Contains(0), &mut sink).unwrap();
        assert_eq!(r.outcome, OpOutcome::Applied { present: true });
        srv.check_key_invariants().unwrap();
    }

    #[test]
    fn media_chaos_walks_the_ladder_and_recovers() {
        // Sweep seeds until media chaos leaves damage, then verify the
        // ladder: degraded/quarantined -> scrub -> healthy again, with
        // the other tenant untouched throughout.
        for seed in 0..32u64 {
            let mut srv = server();
            let mut sink = NullSink::new();
            srv.register(1, WorkloadKind::Hashmap);
            srv.register(2, WorkloadKind::Avl);
            for k in 0..6u64 {
                srv.op(1, Op::Insert(k), &mut sink).unwrap();
                srv.op(2, Op::Insert(k), &mut sink).unwrap();
            }
            srv.inject_chaos(1, FaultPlan::media_error(2, seed), &mut sink).unwrap();
            let mut wiped = false;
            for k in 6..40u64 {
                let r = srv.op(1, Op::Insert(k), &mut sink).unwrap();
                srv.check_key_invariants().unwrap();
                if r.wiped {
                    wiped = true;
                    break;
                }
            }
            let h = srv.tenant(1).unwrap().health();
            assert!(
                h == TenantHealth::Healthy || h == TenantHealth::Degraded,
                "tenant 1 must keep serving (health {h})"
            );
            // Isolation: tenant 2 is pristine.
            assert_eq!(srv.tenant(2).unwrap().health(), TenantHealth::Healthy);
            let r = srv.op(2, Op::Contains(2), &mut sink).unwrap();
            assert_eq!(r.outcome, OpOutcome::Applied { present: true });
            if wiped {
                let hc = srv.tenant(1).unwrap().health_counters();
                assert!(hc.quarantines > 0);
                assert!(hc.recoveries > 0);
                assert!(srv.tenant(1).unwrap().counters().wipes > 0);
                return; // exercised the full ladder
            }
        }
        panic!("no seed in 0..32 drove the scrub ladder");
    }

    #[test]
    fn key_pressure_evicts_and_readmits() {
        // 4 architected keys = 3 usable: the 4th tenant forces a PLRU
        // eviction; evicted tenants transparently re-admit with their
        // durable state intact.
        let mut srv = PoolServer::new(ServerConfig { keys: 4, ..ServerConfig::default() });
        let mut sink = NullSink::new();
        for t in 1..=6u32 {
            srv.register(t, WorkloadKind::List);
        }
        let mut evictions = 0;
        for round in 0..4u64 {
            for t in 1..=6u32 {
                let r = srv.op(t, Op::Insert(round * 10 + u64::from(t)), &mut sink).unwrap();
                assert_eq!(r.outcome, OpOutcome::Applied { present: true });
                evictions += r.evictions;
                srv.check_key_invariants().unwrap();
                assert!(srv.keys_in_use() <= 3);
            }
        }
        assert!(evictions > 0, "6 tenants over 3 keys must evict");
        // Every tenant's data survived its evictions.
        for t in 1..=6u32 {
            let r = srv.op(t, Op::Contains(u64::from(t)), &mut sink).unwrap();
            assert_eq!(r.outcome, OpOutcome::Applied { present: true }, "tenant {t}");
            assert!(srv.tenant(t).unwrap().health_counters().readmissions > 0 || t > 3);
        }
    }

    #[test]
    fn chaos_trace_passes_the_permission_audit() {
        // The server's window discipline must hold even when chaos fires
        // mid-operation and tenants interleave: record everything and
        // run the permission + gate audits.
        let mut analyzer = Analyzer::new("server-chaos")
            .with_pass(PermWindowPass::baseline())
            .with_pass(GatePass::new());
        let mut srv = server();
        srv.register(1, WorkloadKind::Avl);
        srv.register(2, WorkloadKind::Bplus);
        for k in 0..6u64 {
            srv.op(1, Op::Insert(k), &mut analyzer).unwrap();
            srv.op(2, Op::Insert(k), &mut analyzer).unwrap();
        }
        srv.inject_chaos(1, FaultPlan::power_failure(2), &mut analyzer).unwrap();
        for k in 6..16u64 {
            srv.op(1, Op::Insert(k), &mut analyzer).unwrap();
            srv.op(2, Op::Contains(k % 6), &mut analyzer).unwrap();
        }
        let report = analyzer.finish();
        assert!(report.complete(), "audit log truncated");
        assert!(
            report.passed(),
            "audit errors: {:?}",
            report.errors().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeded_interleavings_race_attach_detach_and_chaos() {
        // Concurrent attach/detach racing fault injection: each seed
        // drives a different interleaving of tenant ops (attach on
        // demand, PLRU detach under 3-usable-key pressure) with chaos
        // armed mid-stream against arbitrary tenants. At every step the
        // key allocator must hold its bijection (never double-assign a
        // domain key), and the whole interleaved trace must pass the
        // permission-window and switch-gate audits.
        for seed in 0..8u64 {
            let mut analyzer = Analyzer::new("server-interleave")
                .with_pass(PermWindowPass::baseline())
                .with_pass(GatePass::new());
            let mut srv = PoolServer::new(ServerConfig { keys: 4, ..ServerConfig::default() });
            for t in 0..6u32 {
                srv.register(t, WorkloadKind::ALL[t as usize % WorkloadKind::ALL.len()]);
            }
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut next = move || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                state >> 16
            };
            for step in 0..96u64 {
                let t = (next() % 6) as u32;
                match next() % 8 {
                    0 => {
                        // Arm chaos against a (possibly detached) tenant:
                        // the arm itself may force an eviction race.
                        let after = next() % 4 + 1;
                        let plan = match next() % 3 {
                            0 => FaultPlan::power_failure(after),
                            1 => FaultPlan::torn_write(after, next()),
                            _ => FaultPlan::media_error(after, next()),
                        };
                        srv.inject_chaos(t, plan, &mut analyzer).unwrap();
                    }
                    1 => {
                        srv.op(t, Op::Remove(next() % 16), &mut analyzer).unwrap();
                    }
                    2 => {
                        srv.op(t, Op::Contains(next() % 16), &mut analyzer).unwrap();
                    }
                    _ => {
                        srv.op(t, Op::Insert(next() % 16), &mut analyzer).unwrap();
                    }
                }
                srv.check_key_invariants()
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                assert!(srv.keys_in_use() <= 3, "seed {seed} step {step}: key over-commit");
            }
            let report = analyzer.finish();
            assert!(report.complete(), "seed {seed}: audit log truncated");
            assert!(
                report.passed(),
                "seed {seed} audit errors: {:?}",
                report.errors().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn retry_budget_exhausts_to_gave_up() {
        // Arm chaos that fires instantly on every re-admission attempt:
        // impossible here because a plan is consumed by its crash — so
        // instead verify exhaustion by re-arming between retries via a
        // tiny budget of 1 attempt (no retry allowed).
        let mut srv = PoolServer::new(ServerConfig {
            policy: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
            ..ServerConfig::default()
        });
        let mut sink = NullSink::new();
        srv.register(1, WorkloadKind::List);
        srv.op(1, Op::Insert(1), &mut sink).unwrap();
        srv.inject_chaos(1, FaultPlan::power_failure(1), &mut sink).unwrap();
        let mut gave_up = false;
        for k in 2..12u64 {
            let r = srv.op(1, Op::Insert(k), &mut sink).unwrap();
            if r.outcome == OpOutcome::GaveUp {
                gave_up = true;
                break;
            }
        }
        assert!(gave_up, "budget of 1 must give up when chaos fires");
        assert_eq!(srv.tenant(1).unwrap().counters().exhausted, 1);
        // The tenant is not dead: the next op re-admits and applies.
        let r = srv.op(1, Op::Insert(99), &mut sink).unwrap();
        assert_eq!(r.outcome, OpOutcome::Applied { present: true });
        srv.check_key_invariants().unwrap();
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&sorted, 50, 100), 50);
        assert_eq!(nearest_rank(&sorted, 99, 100), 99);
        assert_eq!(nearest_rank(&sorted, 999, 1000), 100);
        assert_eq!(nearest_rank(&[], 50, 100), 0);
        assert_eq!(nearest_rank(&[7], 999, 1000), 7);
    }

    #[test]
    fn workload_labels_roundtrip() {
        for w in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_label(w.label()), Some(w));
        }
        assert_eq!(WorkloadKind::from_label("nope"), None);
    }
}
