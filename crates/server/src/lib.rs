//! `pmo-server`: a sharded multi-tenant pool service over `pmo-runtime`.
//!
//! The ISCA 2020 design isolates persistent-memory objects inside one
//! process with per-domain protection keys; this crate layers the
//! *operational* half of that story on top: many tenants sharing one
//! runtime, where any tenant's pool can fail — power loss, torn writes,
//! media damage — without perturbing its neighbours.
//!
//! The crate is built from four pieces:
//!
//! * [`LogicalClock`] — injected deterministic time; the crate's clippy
//!   wall bans `Instant::now`/`SystemTime`, so chaos campaigns replay
//!   byte-identically from seeds;
//! * [`RetryPolicy`] — classifies faults ([`classify`]) and maps them to
//!   bounded retries with seeded exponential backoff, escalation, or
//!   give-up;
//! * [`TenantHealth`] / [`HealthSlot`] — the per-tenant degradation
//!   ladder (healthy → degraded/read-only → quarantined → recovering →
//!   healthy, with eviction as the key-pressure branch);
//! * [`PoolServer`] — one shard: a single-threaded manager owning a
//!   [`pmo_runtime::PmRuntime`] and a [`pmo_protect::KeyAllocator`],
//!   serving interleaved tenant operations with fault-domain recovery
//!   and admission control at the 16-key cliff.
//!
//! The soak campaign in `pmo-experiments` drives many shards in parallel
//! and audits every shard trace through `pmo-analyzer`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod health;
pub mod policy;
pub mod server;

pub use clock::LogicalClock;
pub use health::{HealthCounters, HealthSlot, TenantHealth};
pub use policy::{classify, FaultClass, RetryDecision, RetryPolicy};
pub use server::{
    nearest_rank, LatencySummary, Op, OpOutcome, OpReport, PoolServer, ServerConfig, Tenant,
    TenantCounters, TenantId, WorkloadKind, LATENCY_SAMPLE_CAP,
};
