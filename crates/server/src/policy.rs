//! The retry/timeout/backoff policy engine.
//!
//! Every error a tenant operation can surface is classified into a
//! [`FaultClass`], and the policy maps `(class, attempt)` to a
//! [`RetryDecision`]: transient faults retry with bounded attempts and
//! exponential backoff (deterministic seeded jitter — no wall clock),
//! media damage escalates to the scrub/quarantine recovery path, and
//! anything unexpected propagates as a hard error.

use pmo_runtime::RuntimeError;

/// SplitMix64-style finalizer used for jitter derivation. Pure, so every
/// backoff schedule is replayable from `(seed, lane, attempt)`.
fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What kind of failure an error represents, policy-wise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Power-failure-style loss of volatile state: the pool's durable
    /// contents are intact (modulo the last transaction), so the
    /// operation is retryable after fault-domain recovery.
    Transient,
    /// Typed media damage: deterministic, so retrying the same reads
    /// hits the same poison — escalate to scrub instead of retrying.
    Media,
    /// The pool's recovery metadata is damaged; only the scrub/release
    /// path can bring the tenant back.
    Quarantine,
    /// Anything else (programming errors, resource exhaustion): not a
    /// chaos outcome, propagate to the caller.
    Hard,
}

/// Classifies a runtime error for the policy engine.
#[must_use]
pub fn classify(error: &RuntimeError) -> FaultClass {
    match error {
        RuntimeError::PowerFailure => FaultClass::Transient,
        RuntimeError::MediaError { .. } => FaultClass::Media,
        RuntimeError::PoolQuarantined { .. } => FaultClass::Quarantine,
        _ => FaultClass::Hard,
    }
}

/// What the policy tells the server to do about one failed attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retry the operation after backing off this many logical ticks.
    RetryAfter(u64),
    /// Stop retrying in place and run the scrub/quarantine recovery
    /// ladder (data loss is accepted in exchange for availability).
    Escalate,
    /// The retry budget is exhausted; give up on this operation (the
    /// tenant stays admitted and later operations start fresh).
    GiveUp,
}

/// Bounded-retry policy with exponential backoff and seeded jitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (1 = no retry).
    pub max_attempts: u32,
    /// Backoff after the first failure, in logical ticks.
    pub base_backoff: u64,
    /// Backoff ceiling, in logical ticks.
    pub max_backoff: u64,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff: 16, max_backoff: 1024, jitter_seed: 0x5eed }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based) on behalf of
    /// `lane` (a tenant-unique stream id): exponential growth capped at
    /// [`RetryPolicy::max_backoff`], plus up to 50% deterministic jitter
    /// so colliding tenants deterministically de-synchronize.
    #[must_use]
    pub fn backoff_ticks(&self, attempt: u32, lane: u64) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let base = self.base_backoff.saturating_mul(1u64 << exp).min(self.max_backoff);
        let jitter_span = base / 2 + 1;
        base + mix(self.jitter_seed, lane ^ (u64::from(attempt) << 48)) % jitter_span
    }

    /// Maps one failed attempt to a decision. `attempt` counts the
    /// failures so far, 1-based.
    #[must_use]
    pub fn decide(&self, class: FaultClass, attempt: u32, lane: u64) -> RetryDecision {
        match class {
            FaultClass::Transient => {
                if attempt < self.max_attempts {
                    RetryDecision::RetryAfter(self.backoff_ticks(attempt, lane))
                } else {
                    RetryDecision::GiveUp
                }
            }
            FaultClass::Media | FaultClass::Quarantine => RetryDecision::Escalate,
            FaultClass::Hard => RetryDecision::GiveUp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_chaos_vocabulary() {
        assert_eq!(classify(&RuntimeError::PowerFailure), FaultClass::Transient);
        assert_eq!(
            classify(&RuntimeError::MediaError { pmo: pmo_trace::PmoId::new(1), offset: 64 }),
            FaultClass::Media
        );
        assert_eq!(
            classify(&RuntimeError::PoolQuarantined { name: "t".into(), reason: "x" }),
            FaultClass::Quarantine
        );
        assert_eq!(classify(&RuntimeError::InvalidSize(0)), FaultClass::Hard);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy { max_attempts: 8, base_backoff: 16, max_backoff: 128, jitter_seed: 1 };
        let b1 = p.backoff_ticks(1, 0);
        let b2 = p.backoff_ticks(2, 0);
        let b4 = p.backoff_ticks(4, 0);
        assert!((16..=24).contains(&b1), "{b1}");
        assert!((32..=48).contains(&b2), "{b2}");
        // Attempt 4 wants 128 (capped); jitter adds at most 50%.
        assert!((128..=192).contains(&b4), "{b4}");
        // Far-out attempts do not overflow.
        let _ = p.backoff_ticks(u32::MAX, u64::MAX);
    }

    #[test]
    fn jitter_is_deterministic_and_lane_separated() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ticks(2, 7), p.backoff_ticks(2, 7));
        let spread: std::collections::BTreeSet<u64> =
            (0..16).map(|lane| p.backoff_ticks(2, lane)).collect();
        assert!(spread.len() > 1, "lanes must de-synchronize: {spread:?}");
    }

    #[test]
    fn decisions_follow_the_ladder() {
        let p = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        assert!(matches!(p.decide(FaultClass::Transient, 1, 0), RetryDecision::RetryAfter(_)));
        assert!(matches!(p.decide(FaultClass::Transient, 2, 0), RetryDecision::RetryAfter(_)));
        assert_eq!(p.decide(FaultClass::Transient, 3, 0), RetryDecision::GiveUp);
        assert_eq!(p.decide(FaultClass::Media, 1, 0), RetryDecision::Escalate);
        assert_eq!(p.decide(FaultClass::Quarantine, 1, 0), RetryDecision::Escalate);
        assert_eq!(p.decide(FaultClass::Hard, 1, 0), RetryDecision::GiveUp);
    }
}
