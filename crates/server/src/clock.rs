//! Injected logical time.
//!
//! The server never reads wall-clock time (the crate's clippy wall bans
//! `Instant::now`): every latency, timeout, and backoff is measured in
//! *logical ticks* advanced by the server itself — one tick per trace
//! event an operation emits, plus the ticks a backoff sleeps. Two runs
//! with the same seeds therefore observe byte-identical timelines, which
//! is what makes chaos campaigns replayable and `--jobs`-invariant.

/// A deterministic, monotonically advancing tick counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogicalClock {
    now: u64,
}

impl LogicalClock {
    /// A clock at tick zero.
    #[must_use]
    pub fn new() -> Self {
        LogicalClock::default()
    }

    /// The current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `ticks` (saturating; the clock never wraps
    /// backwards).
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut clock = LogicalClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance(5);
        clock.advance(0);
        clock.advance(3);
        assert_eq!(clock.now(), 8);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut clock = LogicalClock::new();
        clock.advance(u64::MAX);
        clock.advance(10);
        assert_eq!(clock.now(), u64::MAX);
    }
}
