//! The per-tenant degradation ladder.
//!
//! Tenant health is a small state machine the server drives as chaos
//! lands: `Healthy → Degraded (read-only) → Quarantined → Recovering →
//! Healthy`, with `Evicted` as the key-pressure branch (`Healthy/Degraded
//! → Evicted → Healthy`). Transitions outside the ladder are server
//! bugs and panic loudly (chaos campaigns classify panics as failures).

use std::fmt;

/// One tenant's position on the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TenantHealth {
    /// Serving reads and writes normally.
    Healthy,
    /// Pool has unreadable data lines: reads are served (and may surface
    /// typed media errors); the next write escalates to recovery.
    Degraded,
    /// The pool's recovery metadata is damaged; the tenant is detached
    /// and must pass through the scrub path.
    Quarantined,
    /// Scrub in progress: media wiped, header reformatted, re-admission
    /// pending.
    Recovering,
    /// Detached by admission control under key pressure; durable state
    /// is intact and re-admission is a plain re-attach.
    Evicted,
}

impl TenantHealth {
    /// Whether the ladder allows a `self → next` step.
    #[must_use]
    pub fn can_step(self, next: TenantHealth) -> bool {
        use TenantHealth::{Degraded, Evicted, Healthy, Quarantined, Recovering};
        matches!(
            (self, next),
            (Healthy, Degraded | Quarantined | Evicted)
                | (Degraded, Healthy | Quarantined | Evicted)
                | (Quarantined, Recovering)
                | (Recovering, Healthy | Quarantined)
                | (Evicted, Healthy | Degraded)
        )
    }
}

impl fmt::Display for TenantHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TenantHealth::Healthy => "healthy",
            TenantHealth::Degraded => "degraded",
            TenantHealth::Quarantined => "quarantined",
            TenantHealth::Recovering => "recovering",
            TenantHealth::Evicted => "evicted",
        })
    }
}

/// Ladder transition counters (one slot per tenant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Steps into [`TenantHealth::Degraded`].
    pub degradations: u64,
    /// Steps into [`TenantHealth::Quarantined`].
    pub quarantines: u64,
    /// Steps into [`TenantHealth::Recovering`] (scrubs started).
    pub recoveries: u64,
    /// Steps into [`TenantHealth::Evicted`].
    pub evictions: u64,
    /// Steps back into [`TenantHealth::Healthy`] from anywhere.
    pub readmissions: u64,
}

/// One tenant's health state plus its transition history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthSlot {
    state: TenantHealth,
    counters: HealthCounters,
}

impl Default for HealthSlot {
    fn default() -> Self {
        HealthSlot { state: TenantHealth::Healthy, counters: HealthCounters::default() }
    }
}

impl HealthSlot {
    /// Current ladder position.
    #[must_use]
    pub fn state(&self) -> TenantHealth {
        self.state
    }

    /// Accumulated transition counters.
    #[must_use]
    pub fn counters(&self) -> HealthCounters {
        self.counters
    }

    /// Steps the ladder to `next`, counting the transition.
    ///
    /// # Panics
    ///
    /// Panics when the ladder forbids `current → next` — a server bug,
    /// surfaced loudly so chaos campaigns classify it as a failure.
    pub fn step(&mut self, next: TenantHealth) {
        assert!(self.state.can_step(next), "illegal health transition {} -> {next}", self.state);
        match next {
            TenantHealth::Healthy => self.counters.readmissions += 1,
            TenantHealth::Degraded => self.counters.degradations += 1,
            TenantHealth::Quarantined => self.counters.quarantines += 1,
            TenantHealth::Recovering => self.counters.recoveries += 1,
            TenantHealth::Evicted => self.counters.evictions += 1,
        }
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TenantHealth::{Degraded, Evicted, Healthy, Quarantined, Recovering};

    #[test]
    fn the_full_ladder_walks() {
        let mut slot = HealthSlot::default();
        for step in [Degraded, Quarantined, Recovering, Healthy, Evicted, Healthy] {
            slot.step(step);
        }
        let c = slot.counters();
        assert_eq!(c.degradations, 1);
        assert_eq!(c.quarantines, 1);
        assert_eq!(c.recoveries, 1);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.readmissions, 2);
        assert_eq!(slot.state(), Healthy);
    }

    #[test]
    fn degraded_can_heal_in_place() {
        // Full-line overwrites repair poisoned lines, so Degraded may
        // step straight back to Healthy without a scrub.
        let mut slot = HealthSlot::default();
        slot.step(Degraded);
        slot.step(Healthy);
        assert_eq!(slot.state(), Healthy);
    }

    #[test]
    fn quarantine_only_exits_through_recovering() {
        assert!(!Quarantined.can_step(Healthy));
        assert!(!Quarantined.can_step(Degraded));
        assert!(!Quarantined.can_step(Evicted));
        assert!(Quarantined.can_step(Recovering));
        // A scrub interrupted by fresh damage may re-quarantine.
        assert!(Recovering.can_step(Quarantined));
    }

    #[test]
    #[should_panic(expected = "illegal health transition")]
    fn illegal_step_panics() {
        let mut slot = HealthSlot::default();
        slot.step(Recovering); // Healthy -> Recovering skips quarantine
    }
}
