//! The trace-replay engine: one protection scheme + the memory hierarchy,
//! driven by a stream of trace events.

use pmo_protect::{ProtectionFault, ProtectionScheme, SchemeKind};
use pmo_simarch::{CacheHierarchy, MemKind, SimConfig};
use pmo_trace::{AccessKind, EventCounts, OpKind, TraceEvent, TraceSink, TraceSource};

use crate::report::{ReplayReport, ReplaySnapshot};

/// What to do when a trace access violates the protection policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Record the fault and continue (the access is suppressed).
    #[default]
    Record,
    /// Panic immediately — for debugging workloads that are expected to be
    /// permission-clean.
    Panic,
}

/// Maximum number of individual faults retained in the report.
const FAULT_LOG_CAP: usize = 32;

/// A replay in progress. Implements [`TraceSink`], so workload generators
/// can stream events straight into it; call [`Replay::finish`] for the
/// report.
///
/// # Example
///
/// ```
/// use pmo_protect::SchemeKind;
/// use pmo_sim::Replay;
/// use pmo_simarch::SimConfig;
/// use pmo_trace::{Perm, PmoId, TraceEvent, TraceSink};
///
/// let config = SimConfig::isca2020();
/// let mut replay = Replay::new(SchemeKind::DomainVirt, &config);
/// let base = 0x40_0000_0000;
/// replay.event(TraceEvent::Attach { pmo: PmoId::new(1), base, size: 1 << 20, nvm: true });
/// replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
/// replay.store(base, 8);
/// let report = replay.finish();
/// assert!(report.cycles > 0);
/// assert!(!report.faulted());
/// ```
pub struct Replay {
    cfg: SimConfig,
    scheme: Box<dyn ProtectionScheme>,
    caches: CacheHierarchy,
    cycles: u64,
    cpi_carry: f64,
    counts: EventCounts,
    faults: Vec<ProtectionFault>,
    policy: FaultPolicy,
    ops: u64,
}

impl Replay {
    /// Creates a replay for one scheme.
    #[must_use]
    pub fn new(kind: SchemeKind, config: &SimConfig) -> Self {
        Replay {
            cfg: config.clone(),
            scheme: kind.build(config),
            caches: CacheHierarchy::new(config),
            cycles: 0,
            cpi_carry: 0.0,
            counts: EventCounts::default(),
            faults: Vec::new(),
            policy: FaultPolicy::Record,
            ops: 0,
        }
    }

    /// Creates a replay that panics on the first protection fault.
    #[must_use]
    pub fn strict(kind: SchemeKind, config: &SimConfig) -> Self {
        let mut replay = Self::new(kind, config);
        replay.policy = FaultPolicy::Panic;
        replay
    }

    /// Cycles simulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The scheme being driven (for inspection in tests).
    #[must_use]
    pub fn scheme(&self) -> &dyn ProtectionScheme {
        self.scheme.as_ref()
    }

    /// Drains protocol-level events the scheme emitted internally since
    /// the last drain (ranged shootdowns on the key-eviction path), so
    /// audit sinks can fold them into the analyzed stream.
    pub fn drain_protocol_events(&mut self) -> Vec<TraceEvent> {
        self.scheme.drain_events()
    }

    fn charge_compute(&mut self, instructions: u32) {
        let exact = f64::from(instructions) * self.cfg.base_cpi + self.cpi_carry;
        let whole = exact.floor();
        self.cpi_carry = exact - whole;
        self.cycles += whole as u64;
    }

    fn memory_access(&mut self, va: u64, size: u8, kind: AccessKind) {
        debug_assert!(size > 0 && size <= 64, "access size {size} out of range");
        let result = self.scheme.access(va, kind);
        self.cycles += result.cycles;
        match result.fault {
            None => {
                self.cycles += self.caches.access(va, result.mem, kind.is_write());
            }
            Some(fault) => {
                if self.policy == FaultPolicy::Panic {
                    panic!("protection fault during strict replay: {fault}");
                }
                if self.faults.len() < FAULT_LOG_CAP {
                    self.faults.push(fault);
                }
            }
        }
    }

    /// Captures the cumulative state at a phase boundary, so the report
    /// can later be windowed to just the measured phase (e.g. excluding
    /// population) via [`ReplayReport::since`].
    #[must_use]
    pub fn snapshot(&self) -> ReplaySnapshot {
        ReplaySnapshot {
            cycles: self.cycles,
            breakdown: self.scheme.breakdown(),
            set_perms: self.counts.set_perms,
            ops: self.ops,
        }
    }

    /// Consumes the replay, producing the report.
    #[must_use]
    pub fn finish(self) -> ReplayReport {
        let tlb = self.scheme.tlb_stats();
        ReplayReport {
            scheme: self.scheme.kind(),
            cycles: self.cycles,
            instructions: self.counts.instructions(),
            counts: self.counts,
            breakdown: self.scheme.breakdown(),
            scheme_stats: self.scheme.stats(),
            tlb,
            l1d: *self.caches.l1_stats(),
            l2: *self.caches.l2_stats(),
            nvm_reads: self.caches.memory().nvm_reads(),
            nvm_writes: self.caches.memory().nvm_writes(),
            faults: self.faults,
            ops: self.ops,
        }
    }
}

impl TraceSink for Replay {
    fn event(&mut self, ev: TraceEvent) {
        self.counts.observe(&ev);
        match ev {
            TraceEvent::Compute { count } => self.charge_compute(count),
            TraceEvent::Load { va, size } => self.memory_access(va, size, AccessKind::Read),
            TraceEvent::Store { va, size } => self.memory_access(va, size, AccessKind::Write),
            TraceEvent::SetPerm { pmo, perm } => {
                self.cycles += self.scheme.set_perm(pmo, perm);
            }
            TraceEvent::Attach { pmo, base, size, nvm } => {
                self.cycles += self.scheme.attach(pmo, base, size, nvm);
            }
            TraceEvent::Detach { pmo } => {
                self.cycles += self.scheme.detach(pmo);
            }
            TraceEvent::ThreadSwitch { thread } => {
                self.cycles += self.scheme.context_switch(thread);
            }
            TraceEvent::Flush { va } => {
                // clwb issue cost; the drain is asynchronous. PMO flushes
                // target NVM lines.
                self.cycles += self.cfg.clwb_cycles;
                self.caches.flush_line(va, MemKind::Nvm);
            }
            TraceEvent::Fence => {
                self.cycles += self.cfg.fence_cycles;
            }
            TraceEvent::Op { kind: OpKind::End } => self.ops += 1,
            TraceEvent::Op { kind: OpKind::Begin } => {}
            // Injected-fault markers carry no timing cost; they exist so
            // fault-injection campaigns can replay the exact crash point.
            TraceEvent::Fault { .. } => {}
            // Shootdown completion markers are free: each scheme already
            // charges its shootdown IPIs inside the detach/evict cost model.
            TraceEvent::Shootdown { .. } => {}
        }
    }
}

/// Replays a recorded trace under one scheme.
#[must_use]
pub fn replay_source(
    source: &dyn TraceSource,
    kind: SchemeKind,
    config: &SimConfig,
) -> ReplayReport {
    let mut replay = Replay::new(kind, config);
    source.replay(&mut replay);
    replay.finish()
}

/// Replays a recorded trace under several schemes (the paper's single-
/// trace, many-schemes methodology).
#[must_use]
pub fn replay_source_all(
    source: &dyn TraceSource,
    kinds: &[SchemeKind],
    config: &SimConfig,
) -> Vec<ReplayReport> {
    kinds.iter().map(|kind| replay_source(source, *kind, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::{Perm, PmoId, RecordedTrace};

    const BASE: u64 = 0x40_0000_0000;

    fn legit_trace() -> RecordedTrace {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 8 << 20, nvm: true });
        for i in 0..32u64 {
            t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
            t.store(BASE + i * 256, 8);
            t.load(BASE + i * 256, 8);
            t.compute(20);
            t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
            t.event(TraceEvent::Op { kind: OpKind::End });
        }
        t
    }

    #[test]
    fn all_schemes_replay_cleanly() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        for kind in SchemeKind::ALL {
            let report = replay_source(&trace, kind, &cfg);
            assert!(!report.faulted(), "{kind} must not fault on a legit trace");
            assert!(report.cycles > 0);
            assert_eq!(report.ops, 32);
            assert_eq!(report.counts.stores, 32);
        }
    }

    #[test]
    fn scheme_ordering_on_protected_trace() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        let reports = replay_source_all(&trace, &SchemeKind::ALL, &cfg);
        let cycles = |k: SchemeKind| reports.iter().find(|r| r.scheme == k).unwrap().cycles;
        // Baseline is fastest; lowerbound adds only WRPKRU cost.
        assert!(cycles(SchemeKind::Unprotected) < cycles(SchemeKind::Lowerbound));
        assert_eq!(
            cycles(SchemeKind::Lowerbound) - cycles(SchemeKind::Unprotected),
            64 * 27,
            "lowerbound adds exactly one WRPKRU per switch"
        );
        // With a single PMO, both hardware designs stay close to lowerbound.
        for k in [SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
            let over = cycles(k) as f64 / cycles(SchemeKind::Lowerbound) as f64;
            assert!(over < 1.10, "{k} within 10% of lowerbound, got {over}");
        }
    }

    #[test]
    fn faults_are_recorded_not_fatal() {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 1 << 20, nvm: true });
        t.store(BASE, 8); // no permission granted
        let report = replay_source(&t, SchemeKind::DomainVirt, &SimConfig::isca2020());
        assert!(report.faulted());
        assert_eq!(report.faults.len(), 1);
        assert!(report.faults[0].is_domain_violation());
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn strict_mode_panics() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::strict(SchemeKind::DomainVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.store(BASE, 8);
    }

    #[test]
    fn fractional_cpi_accumulates() {
        let cfg = SimConfig::isca2020(); // base CPI 0.25
        let mut replay = Replay::new(SchemeKind::Unprotected, &cfg);
        for _ in 0..4 {
            replay.compute(1);
        }
        assert_eq!(replay.cycles(), 1, "4 instructions at CPI 0.25 = 1 cycle");
        let report = replay.finish();
        assert_eq!(report.instructions, 4);
    }

    #[test]
    fn flush_and_fence_costs() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::Unprotected, &cfg);
        replay.event(TraceEvent::Flush { va: 0x1000 });
        replay.event(TraceEvent::Fence);
        assert_eq!(replay.cycles(), cfg.clwb_cycles + cfg.fence_cycles);
    }

    #[test]
    fn snapshot_windows_cycles_and_counters() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::Lowerbound, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        replay.store(BASE, 8);
        let snap = replay.snapshot();
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        replay.load(BASE, 8);
        replay.event(TraceEvent::Op { kind: OpKind::End });
        let windowed = replay.finish().since(&snap);
        assert_eq!(windowed.counts.set_perms, 1, "only the post-snapshot switch");
        assert_eq!(windowed.ops, 1);
        assert!(windowed.cycles > 0 && windowed.cycles < 100);
        assert_eq!(windowed.breakdown.permission_change, 27);
    }

    #[test]
    fn context_switches_cost_more_under_virtualization() {
        // Thread switches flush per-thread structures in both designs but
        // cost nothing extra in the baseline.
        let cfg = SimConfig::isca2020();
        let run = |kind: SchemeKind| {
            let mut replay = Replay::new(kind, &cfg);
            replay.event(TraceEvent::Attach {
                pmo: PmoId::new(1),
                base: BASE,
                size: 1 << 20,
                nvm: true,
            });
            for t in 0..64u32 {
                replay.event(TraceEvent::ThreadSwitch { thread: pmo_trace::ThreadId::new(t % 2) });
                replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
                replay.load(BASE, 8);
            }
            replay.finish().cycles
        };
        let baseline = run(SchemeKind::Unprotected);
        let mpk_virt = run(SchemeKind::MpkVirt);
        let domain_virt = run(SchemeKind::DomainVirt);
        assert!(mpk_virt > baseline);
        assert!(domain_virt > baseline);
        // The paper: "the impact of flushing [the PTLB] on context switch
        // on performance is small" — per-switch cost stays bounded (tens
        // of cycles) in both designs.
        for (name, cycles) in [("mpk-virt", mpk_virt), ("domain-virt", domain_virt)] {
            let per_switch = (cycles - baseline) as f64 / 64.0;
            assert!(per_switch < 200.0, "{name}: {per_switch:.0} cycles per switch is not 'small'");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        let a = replay_source(&trace, SchemeKind::MpkVirt, &cfg);
        let b = replay_source(&trace, SchemeKind::MpkVirt, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.breakdown, b.breakdown);
    }
}
