//! The trace-replay engine: one protection scheme + the memory hierarchy,
//! driven by a stream of trace events.
//!
//! The engine dispatches to the scheme through the closed [`AnyScheme`]
//! enum (no vtable on the hot path) and memoizes consecutive same-page
//! accesses through a one-entry [`FastHint`] cache: translation and
//! permission verdict are reused, so repeated hits skip the TLB/DTT/PT
//! machinery while charging exactly the modeled cycles the slow path
//! would. The fast path memoizes the *simulator's* work, never the
//! *simulated* costs.

use std::io;

use pmo_protect::{AnyScheme, FastHint, ProtectionFault, ProtectionScheme, SchemeKind};
use pmo_simarch::{vpn, CacheHierarchy, MemKind, SimConfig};
use pmo_trace::{
    block::tag, AccessKind, BlockReader, BlockTrace, EventBlock, EventCounts, OpKind, ThreadId,
    TraceEvent, TraceSink, TraceSource,
};

use crate::report::{ReplayReport, ReplaySnapshot};

/// What to do when a trace access violates the protection policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Record the fault and continue (the access is suppressed).
    #[default]
    Record,
    /// Panic immediately — for debugging workloads that are expected to be
    /// permission-clean.
    Panic,
}

/// Maximum number of individual faults retained in the report; faults
/// beyond the cap are counted in [`ReplayReport::faults_dropped`].
const FAULT_LOG_CAP: usize = 32;

/// Sentinel for [`LineMemo::line`] marking an empty memo slot.
const NO_LINE: u64 = u64::MAX;

/// Slots in the direct-mapped permission-summary table (power of two).
const SUMMARY_SLOTS: usize = 512;

/// One row of the permission-summary table: the memoized [`FastHint`] for
/// a `(thread, page)` pair, valid only while `gen` matches the replay's
/// current summary generation.
///
/// The table outlives the one-entry [`FastEntry`] memo: where the fast
/// entry dies on every page change, a summary row survives until either a
/// scheme-mutating event (SetPerm/Attach/Detach/ThreadSwitch/Shootdown)
/// bumps the generation, wholesale-invalidating the table, or the row is
/// displaced by another page hashing to the same slot. A row may also go
/// stale because the page's L1 TLB entry was evicted by intervening
/// traffic — that is caught per-hit by `fast_revalidate`, which re-checks
/// L1 residency (and PTLB residency under domain virtualization) before
/// the memoized verdict is served.
#[derive(Clone, Copy)]
struct SummarySlot {
    thread: ThreadId,
    page: u64,
    hint: FastHint,
    gen: u64,
}

/// The armed fast-path entry: a memoized verdict for one page, plus the
/// accounting (hits served, hits denied) still owed to the scheme.
struct FastEntry {
    page: u64,
    hint: FastHint,
    hits: u64,
    denied: u64,
}

/// One slot of the replay-level line memo, a direct-mapped table that
/// mirrors L1 geometry (one slot per L1 set): `line` is the last line
/// accessed in that set, with `reads`/`writes` repeat hits batched and
/// still owed to the L1 stats. Memoized same-line accesses skip the cache
/// walk entirely and charge the (constant) L1 hit latency.
///
/// ## Exactness
///
/// The memoized line is guaranteed L1-resident: a slot is (re)armed only
/// immediately after an access to its line — which leaves the line filled
/// and MRU — and every later access that could disturb its set indexes
/// the *same* slot, so it either batches onto the memo (touching no cache
/// state) or misses the memo and settles the slot's pending hits *before*
/// performing the fill (there is no L2→L1 back-invalidation in this
/// model, so accesses to other sets can never displace the line, and
/// `clwb` retains lines). Settlement order is exact per set — one line's
/// idempotent Tree-PLRU touches collapse to one — and sets don't share
/// replacement or dirty state, so cross-set settle order is free.
#[derive(Clone, Copy)]
struct LineMemo {
    line: u64,
    reads: u64,
    writes: u64,
}

impl LineMemo {
    const EMPTY: LineMemo = LineMemo { line: NO_LINE, reads: 0, writes: 0 };
}

/// A replay in progress. Implements [`TraceSink`], so workload generators
/// can stream events straight into it; call [`Replay::finish`] for the
/// report.
///
/// # Example
///
/// ```
/// use pmo_protect::SchemeKind;
/// use pmo_sim::Replay;
/// use pmo_simarch::SimConfig;
/// use pmo_trace::{Perm, PmoId, TraceEvent, TraceSink};
///
/// let config = SimConfig::isca2020();
/// let mut replay = Replay::new(SchemeKind::DomainVirt, &config);
/// let base = 0x40_0000_0000;
/// replay.event(TraceEvent::Attach { pmo: PmoId::new(1), base, size: 1 << 20, nvm: true });
/// replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
/// replay.store(base, 8);
/// let report = replay.finish();
/// assert!(report.cycles > 0);
/// assert!(!report.faulted());
/// ```
pub struct Replay {
    cfg: SimConfig,
    scheme: AnyScheme,
    caches: CacheHierarchy,
    cycles: u64,
    cpi_carry: f64,
    counts: EventCounts,
    faults: Vec<ProtectionFault>,
    faults_dropped: u64,
    policy: FaultPolicy,
    ops: u64,
    fast_enabled: bool,
    fast: Option<FastEntry>,
    fast_hits_total: u64,
    /// Per-L1-set line memo (see [`LineMemo`]); indexed by the L1 set of
    /// the accessed line.
    lines: Vec<LineMemo>,
    /// Direct-mapped `(thread, page)` → [`FastHint`] summaries; rows are
    /// valid while their `gen` matches [`Replay::summary_gen`].
    summary: Vec<Option<SummarySlot>>,
    summary_gen: u64,
    summary_hits_total: u64,
    current_thread: ThreadId,
    /// `log2(line_bytes)` and the L1 hit latency, copied out of the
    /// config so the hot path doesn't chase through the hierarchy.
    line_shift: u32,
    l1_hit_cycles: u64,
}

impl Replay {
    /// Creates a replay for one scheme.
    #[must_use]
    pub fn new(kind: SchemeKind, config: &SimConfig) -> Self {
        let caches = CacheHierarchy::new(config);
        let lines = vec![LineMemo::EMPTY; caches.l1_sets()];
        Replay {
            cfg: config.clone(),
            scheme: kind.build_any(config),
            caches,
            cycles: 0,
            cpi_carry: 0.0,
            counts: EventCounts::default(),
            faults: Vec::new(),
            faults_dropped: 0,
            policy: FaultPolicy::Record,
            ops: 0,
            fast_enabled: true,
            fast: None,
            fast_hits_total: 0,
            lines,
            summary: vec![None; SUMMARY_SLOTS],
            summary_gen: 1,
            summary_hits_total: 0,
            current_thread: ThreadId::MAIN,
            line_shift: config.line_bytes.trailing_zeros(),
            l1_hit_cycles: config.l1d_latency,
        }
    }

    /// Creates a replay that panics on the first protection fault.
    #[must_use]
    pub fn strict(kind: SchemeKind, config: &SimConfig) -> Self {
        let mut replay = Self::new(kind, config);
        replay.policy = FaultPolicy::Panic;
        replay
    }

    /// Enables or disables the same-page fast path (on by default). The
    /// modeled results are identical either way — this exists so the
    /// equivalence can be asserted and the speedup measured.
    pub fn set_fast_path(&mut self, enabled: bool) {
        if !enabled {
            self.flush_fast();
            self.settle_lines();
            // Walk-mode accesses mutate the caches behind the memo's back,
            // so residency can no longer be assumed if it is re-enabled.
            self.lines.fill(LineMemo::EMPTY);
        }
        self.fast_enabled = enabled;
    }

    /// Accesses served by the memoized fast path so far (observability for
    /// benchmarks and invalidation tests; not part of the report).
    #[must_use]
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_hits_total
    }

    /// Page-change accesses whose walk was skipped because a still-valid
    /// permission-summary row re-armed the fast entry (observability; not
    /// part of the report).
    #[must_use]
    pub fn summary_hits(&self) -> u64 {
        self.summary_hits_total
    }

    #[inline]
    fn summary_index(&self, page: u64) -> usize {
        // Fibonacci hashing over the page number mixed with the thread:
        // PMO bases are GB-aligned, so low page bits alone collide badly.
        let key = page ^ (u64::from(self.current_thread.raw()) << 52);
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 55) as usize & (SUMMARY_SLOTS - 1)
    }

    /// Looks up a still-valid summary row for `(current thread, page)`.
    #[inline]
    fn summary_probe(&self, page: u64) -> Option<FastHint> {
        let slot = self.summary[self.summary_index(page)]?;
        (slot.gen == self.summary_gen && slot.page == page && slot.thread == self.current_thread)
            .then_some(slot.hint)
    }

    #[inline]
    fn summary_fill(&mut self, page: u64, hint: FastHint) {
        let idx = self.summary_index(page);
        self.summary[idx] =
            Some(SummarySlot { thread: self.current_thread, page, hint, gen: self.summary_gen });
    }

    /// Invalidates every summary row. Runs on exactly the events that may
    /// change a memoized verdict without evicting the page from the L1
    /// TLB: SetPerm, Attach, Detach, ThreadSwitch, and Shootdown. All
    /// other scheme-state mutation happens on the access path and always
    /// shoots the affected pages out of the TLB, which `fast_revalidate`
    /// catches row by row.
    #[inline]
    fn summary_invalidate_all(&mut self) {
        self.summary_gen += 1;
    }

    /// Cycles simulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The scheme being driven (for inspection in tests). Scheme-side
    /// counters are settled at [`Replay::snapshot`]/[`Replay::finish`];
    /// between accesses they may lag by the currently batched fast hits.
    #[must_use]
    pub fn scheme(&self) -> &dyn ProtectionScheme {
        &self.scheme
    }

    /// Drains protocol-level events the scheme emitted internally since
    /// the last drain (ranged shootdowns on the key-eviction path), so
    /// audit sinks can fold them into the analyzed stream.
    pub fn drain_protocol_events(&mut self) -> Vec<TraceEvent> {
        self.scheme.drain_events()
    }

    fn charge_compute(&mut self, instructions: u32) {
        let exact = f64::from(instructions) * self.cfg.base_cpi + self.cpi_carry;
        let whole = exact.floor();
        self.cpi_carry = exact - whole;
        self.cycles += whole as u64;
    }

    /// Settles the batched scheme-side fast-path accounting (hit counts
    /// owed to the scheme's TLB stats) and disarms the entry. Must run
    /// before any scheme-state mutation and before reading scheme
    /// counters (snapshot/finish). The line memo is independent — cache
    /// residency does not change when a verdict does — and stays armed.
    fn flush_fast(&mut self) {
        if let Some(entry) = self.fast.take() {
            if entry.hits > 0 {
                self.scheme.note_fast_hits(&entry.hint, entry.hits, entry.denied);
            }
        }
    }

    /// Settles one memo slot's batched L1 hits, keeping it armed. Sets are
    /// independent (own replacement node, own ways), so settling one slot
    /// never affects another's exactness.
    #[inline]
    fn settle_line_slot(&mut self, set: usize) {
        let m = self.lines[set];
        if m.line != NO_LINE && m.reads + m.writes > 0 {
            self.caches.note_line_hits(m.line << self.line_shift, m.reads, m.writes);
            self.lines[set].reads = 0;
            self.lines[set].writes = 0;
        }
    }

    /// Settles the whole line memo's batched L1 hits, keeping the slots
    /// armed. Must run before the cache counters are read (the final
    /// report) or the memo is torn down.
    fn settle_lines(&mut self) {
        for set in 0..self.lines.len() {
            self.settle_line_slot(set);
        }
    }

    /// Charges one *allowed* data access against the cache hierarchy,
    /// serving it from the line memo when the line is known L1-resident.
    #[inline]
    fn charge_data_access(&mut self, va: u64, mem: MemKind, kind: AccessKind) {
        let is_write = kind.is_write();
        if !self.fast_enabled {
            self.cycles += self.caches.access(va, mem, is_write);
            return;
        }
        let line = va >> self.line_shift;
        let set = self.caches.l1_set_of_line(line);
        let m = &mut self.lines[set];
        if m.line == line {
            if is_write {
                m.writes += 1;
            } else {
                m.reads += 1;
            }
            self.cycles += self.l1_hit_cycles;
            return;
        }
        // New line in this set: land the slot's deferred touches first (so
        // a fill's victim choice sees the true recency, and a pending
        // dirty bit lands before any eviction writes the line back), then
        // access, then re-arm the slot with this line — which the access
        // just left resident and MRU.
        self.settle_line_slot(set);
        self.cycles += self.caches.access(va, mem, is_write);
        self.lines[set] = LineMemo { line, reads: 0, writes: 0 };
    }

    /// One `clwb`: issue cost only; the drain is asynchronous. PMO flushes
    /// target NVM lines. Touches only the caches, so the fast entry stays
    /// armed — but if the flushed line is memoized, its batched hits (a
    /// pending dirty bit in particular) must land before the writeback;
    /// `clwb` *retains* the line, so the memo itself stays valid. Pending
    /// hits on *other* lines don't interact with the writeback (different
    /// dirty bits, and the writeback does not touch replacement state).
    fn flush_line(&mut self, va: u64) {
        let line = va >> self.line_shift;
        let set = self.caches.l1_set_of_line(line);
        if self.lines[set].line == line {
            self.settle_line_slot(set);
        }
        self.cycles += self.cfg.clwb_cycles;
        self.caches.flush_line(va, MemKind::Nvm);
    }

    fn record_fault(&mut self, fault: ProtectionFault) {
        if self.faults.len() < FAULT_LOG_CAP {
            self.faults.push(fault);
        } else {
            self.faults_dropped += 1;
        }
    }

    fn memory_access(&mut self, va: u64, size: u8, kind: AccessKind) {
        debug_assert!(size > 0 && size <= 64, "access size {size} out of range");
        if let Some(entry) = &mut self.fast {
            if entry.page == vpn(va) {
                let hint = entry.hint;
                entry.hits += 1;
                self.fast_hits_total += 1;
                self.cycles += hint.cycles;
                if hint.effective.allows(kind) {
                    self.charge_data_access(va, hint.mem, kind);
                } else {
                    entry.denied += 1;
                    let fault = hint.fault(va, kind);
                    if self.policy == FaultPolicy::Panic {
                        panic!("protection fault during strict replay: {fault}");
                    }
                    self.record_fault(fault);
                }
                return;
            }
        }
        self.flush_fast();
        let page = vpn(va);
        if self.fast_enabled {
            if let Some(hint) = self.summary_probe(page) {
                // The row's verdict is only as good as the structures it
                // summarizes: re-check (and touch, as the memoized hit
                // would) L1 TLB residency — plus PTLB residency under
                // domain virtualization — before serving it.
                if self.scheme.fast_revalidate(va) {
                    self.summary_hits_total += 1;
                    self.fast_hits_total += 1;
                    self.cycles += hint.cycles;
                    let mut denied = 0;
                    if hint.effective.allows(kind) {
                        self.charge_data_access(va, hint.mem, kind);
                    } else {
                        denied = 1;
                        let fault = hint.fault(va, kind);
                        if self.policy == FaultPolicy::Panic {
                            panic!("protection fault during strict replay: {fault}");
                        }
                        self.record_fault(fault);
                    }
                    // Re-arm with this access's scheme-side accounting
                    // (one L1 TLB stats hit, one fault if denied) still
                    // owed: `hits: 1` settles it at the next flush.
                    self.fast = Some(FastEntry { page, hint, hits: 1, denied });
                    return;
                }
            }
        }
        let result = self.scheme.access(va, kind);
        self.cycles += result.cycles;
        match result.fault {
            None => self.charge_data_access(va, result.mem, kind),
            Some(fault) => {
                if self.policy == FaultPolicy::Panic {
                    panic!("protection fault during strict replay: {fault}");
                }
                self.record_fault(fault);
            }
        }
        if self.fast_enabled {
            self.fast = match self.scheme.fast_hint(va) {
                Some(hint) => {
                    self.summary_fill(page, hint);
                    Some(FastEntry { page, hint, hits: 0, denied: 0 })
                }
                None => None,
            };
        }
    }

    /// Captures the cumulative state at a phase boundary, so the report
    /// can later be windowed to just the measured phase (e.g. excluding
    /// population) via [`ReplayReport::since`].
    #[must_use]
    pub fn snapshot(&mut self) -> ReplaySnapshot {
        self.flush_fast();
        ReplaySnapshot {
            cycles: self.cycles,
            breakdown: self.scheme.breakdown(),
            set_perms: self.counts.set_perms,
            ops: self.ops,
        }
    }

    /// Consumes the replay, producing the report.
    #[must_use]
    pub fn finish(mut self) -> ReplayReport {
        self.flush_fast();
        self.settle_lines();
        let tlb = self.scheme.tlb_stats();
        ReplayReport {
            scheme: self.scheme.kind(),
            cycles: self.cycles,
            instructions: self.counts.instructions(),
            counts: self.counts,
            breakdown: self.scheme.breakdown(),
            scheme_stats: self.scheme.stats(),
            tlb,
            l1d: *self.caches.l1_stats(),
            l2: *self.caches.l2_stats(),
            nvm_reads: self.caches.memory().nvm_reads(),
            nvm_writes: self.caches.memory().nvm_writes(),
            faults: self.faults,
            faults_dropped: self.faults_dropped,
            ops: self.ops,
            wall_nanos: 0,
        }
    }
}

impl Replay {
    /// Applies one event's simulation effects. Event counting is the
    /// caller's job: the streaming sink observes events one by one, the
    /// batched block driver merges whole-block counts up front.
    fn handle(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Compute { count } => self.charge_compute(count),
            TraceEvent::Load { va, size } => self.memory_access(va, size, AccessKind::Read),
            TraceEvent::Store { va, size } => self.memory_access(va, size, AccessKind::Write),
            // Valued stores cost exactly what plain stores cost; the data
            // payload only matters to persistency-model analyses.
            TraceEvent::StoreData { va, size, .. } => {
                self.memory_access(va, size, AccessKind::Write);
            }
            TraceEvent::SetPerm { pmo, perm } => {
                self.flush_fast();
                self.summary_invalidate_all();
                self.cycles += self.scheme.set_perm(pmo, perm);
            }
            TraceEvent::Attach { pmo, base, size, nvm } => {
                self.flush_fast();
                self.summary_invalidate_all();
                self.cycles += self.scheme.attach(pmo, base, size, nvm);
            }
            TraceEvent::Detach { pmo } => {
                self.flush_fast();
                self.summary_invalidate_all();
                self.cycles += self.scheme.detach(pmo);
            }
            TraceEvent::ThreadSwitch { thread } => {
                self.flush_fast();
                self.summary_invalidate_all();
                self.current_thread = thread;
                self.cycles += self.scheme.context_switch(thread);
            }
            TraceEvent::Flush { va } => self.flush_line(va),
            TraceEvent::Fence => {
                self.cycles += self.cfg.fence_cycles;
            }
            TraceEvent::Op { kind: OpKind::End } => self.ops += 1,
            TraceEvent::Op { kind: OpKind::Begin } => {}
            // Injected-fault markers carry no timing cost; they exist so
            // fault-injection campaigns can replay the exact crash point.
            TraceEvent::Fault { .. } => {}
            // Shootdown completion markers are free: each scheme already
            // charges its shootdown IPIs inside the detach/evict cost
            // model. Conservatively drop the memoized verdict anyway.
            TraceEvent::Shootdown { .. } => {
                self.flush_fast();
                self.summary_invalidate_all();
            }
        }
    }

    /// Replays one decoded event block through the batched engine.
    ///
    /// Counts are merged per block instead of per event, and runs of
    /// same-line allowed accesses — interleaved with any scheme-neutral
    /// events (computes, fences, op/fault markers, clwbs) — are settled
    /// straight into the armed fast entry in one pass over the
    /// struct-of-arrays lanes.
    /// Denied accesses and page/line changes never batch — they fall back
    /// to [`Replay::memory_access`], so fault logging (including the
    /// [`FAULT_LOG_CAP`] truncation discipline) and strict-mode panics
    /// are byte-identical to the streamed path.
    pub fn replay_block(&mut self, block: &EventBlock) {
        self.counts.merge(block.counts());
        let tags = block.tags();
        let vas = block.va();
        let sizes = block.size();
        let n = block.len();
        let mut i = 0;
        while i < n {
            let t = tags[i];
            match t {
                tag::LOAD | tag::STORE | tag::STORE_DATA => {
                    let kind = if t == tag::LOAD { AccessKind::Read } else { AccessKind::Write };
                    self.memory_access(vas[i], sizes[i], kind);
                    i += 1;
                    // Window settlement: while the following accesses stay
                    // on the armed page and are allowed, serve them from
                    // the armed hint + line memo without re-entering the
                    // per-event path (this is the streamed same-page fast
                    // path, inlined). Events that touch neither scheme nor
                    // summary state (computes, fences, op markers, fault
                    // markers, clwbs) are absorbed inline so they don't
                    // break the window — the armed hint stays valid across
                    // them by construction.
                    let Some(entry) = &self.fast else { continue };
                    let page = entry.page;
                    let hint = entry.hint;
                    let mut run = 0u64;
                    'window: while i < n {
                        let is_write = match tags[i] {
                            tag::LOAD => false,
                            tag::STORE | tag::STORE_DATA => true,
                            tag::COMPUTE => {
                                // Compute count rides in the VA lane.
                                self.charge_compute(vas[i] as u32);
                                i += 1;
                                continue 'window;
                            }
                            tag::FENCE => {
                                self.cycles += self.cfg.fence_cycles;
                                i += 1;
                                continue 'window;
                            }
                            tag::OP => {
                                // Size lane is 1 for End, 0 for Begin.
                                self.ops += u64::from(sizes[i]);
                                i += 1;
                                continue 'window;
                            }
                            tag::FAULT => {
                                i += 1;
                                continue 'window;
                            }
                            tag::FLUSH => {
                                self.flush_line(vas[i]);
                                i += 1;
                                continue 'window;
                            }
                            _ => break 'window,
                        };
                        let va = vas[i];
                        if vpn(va) != page {
                            break;
                        }
                        let k = if is_write { AccessKind::Write } else { AccessKind::Read };
                        if !hint.effective.allows(k) {
                            break;
                        }
                        debug_assert!(
                            sizes[i] > 0 && sizes[i] <= 64,
                            "access size {} out of range",
                            sizes[i]
                        );
                        self.cycles += hint.cycles;
                        self.charge_data_access(va, hint.mem, k);
                        run += 1;
                        i += 1;
                    }
                    if run > 0 {
                        if let Some(entry) = &mut self.fast {
                            entry.hits += run;
                        }
                        self.fast_hits_total += run;
                    }
                }
                _ => {
                    self.handle(block.event(i));
                    i += 1;
                }
            }
        }
    }

    /// Replays a decoded block trace through the batched engine.
    pub fn replay_blocks(&mut self, trace: &BlockTrace) {
        for block in trace.blocks() {
            self.replay_block(block);
        }
    }

    /// Replays an encoded block-trace image zero-copy: lanes are borrowed
    /// straight from `bytes` and decoded block-at-a-time into one scratch
    /// [`EventBlock`] that is reused across the whole trace.
    ///
    /// # Errors
    ///
    /// Fails if the image's header, framing, or any record is invalid.
    pub fn replay_encoded(&mut self, bytes: &[u8]) -> io::Result<()> {
        let reader = BlockReader::new(bytes)?;
        let mut scratch = EventBlock::with_capacity(reader.block_events());
        for lanes in reader.blocks() {
            lanes.read_into(&mut scratch)?;
            self.replay_block(&scratch);
        }
        Ok(())
    }
}

impl TraceSink for Replay {
    fn event(&mut self, ev: TraceEvent) {
        self.counts.observe(&ev);
        self.handle(ev);
    }
}

/// Replays a recorded trace under one scheme.
#[must_use]
pub fn replay_source(
    source: &dyn TraceSource,
    kind: SchemeKind,
    config: &SimConfig,
) -> ReplayReport {
    let mut replay = Replay::new(kind, config);
    source.replay(&mut replay);
    replay.finish()
}

/// Replays a recorded trace under several schemes (the paper's single-
/// trace, many-schemes methodology).
#[must_use]
pub fn replay_source_all(
    source: &dyn TraceSource,
    kinds: &[SchemeKind],
    config: &SimConfig,
) -> Vec<ReplayReport> {
    kinds.iter().map(|kind| replay_source(source, *kind, config)).collect()
}

/// Replays a block trace under one scheme through the batched engine.
/// Produces a report byte-identical to [`replay_source`] over the same
/// events.
#[must_use]
pub fn replay_block_trace(
    trace: &BlockTrace,
    kind: SchemeKind,
    config: &SimConfig,
) -> ReplayReport {
    let mut replay = Replay::new(kind, config);
    replay.replay_blocks(trace);
    replay.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::{Perm, PmoId, RecordedTrace, ThreadId};

    const BASE: u64 = 0x40_0000_0000;

    fn legit_trace() -> RecordedTrace {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 8 << 20, nvm: true });
        for i in 0..32u64 {
            t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
            t.store(BASE + i * 256, 8);
            t.load(BASE + i * 256, 8);
            t.compute(20);
            t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
            t.event(TraceEvent::Op { kind: OpKind::End });
        }
        t
    }

    /// A trace designed to stress the fast path: many PMOs, long runs of
    /// same-page accesses, denied accesses, thread switches, shootdown
    /// markers, flushes, and page-crossing strides.
    fn stress_trace() -> RecordedTrace {
        let mut t = RecordedTrace::new();
        for i in 1..=20u64 {
            t.event(TraceEvent::Attach {
                pmo: PmoId::new(i as u32),
                base: i * (1 << 30),
                size: 8 << 20,
                nvm: true,
            });
        }
        for round in 0..4u64 {
            for i in 1..=20u64 {
                let base = i * (1 << 30) + round * 4096;
                t.event(TraceEvent::SetPerm { pmo: PmoId::new(i as u32), perm: Perm::ReadWrite });
                // Long same-page run.
                for k in 0..16u64 {
                    t.store(base + k * 64, 8);
                    t.load(base + k * 64, 8);
                }
                t.event(TraceEvent::Flush { va: base });
                t.event(TraceEvent::Fence);
                // Read-only: same-page writes now deny.
                t.event(TraceEvent::SetPerm { pmo: PmoId::new(i as u32), perm: Perm::ReadOnly });
                t.load(base, 8);
                t.store(base + 8, 8); // denied
                t.store(base + 16, 8); // denied, same page (fast-path deny)
                t.event(TraceEvent::SetPerm { pmo: PmoId::new(i as u32), perm: Perm::None });
                t.event(TraceEvent::ThreadSwitch { thread: ThreadId::new((round % 2) as u32) });
                t.event(TraceEvent::Op { kind: OpKind::End });
            }
            t.event(TraceEvent::Shootdown { pmo: PmoId::new(1) });
        }
        t
    }

    fn replay_with_fast(trace: &RecordedTrace, kind: SchemeKind, fast: bool) -> ReplayReport {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(kind, &cfg);
        replay.set_fast_path(fast);
        trace.replay(&mut replay);
        replay.finish()
    }

    #[test]
    fn all_schemes_replay_cleanly() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        for kind in SchemeKind::ALL {
            let report = replay_source(&trace, kind, &cfg);
            assert!(!report.faulted(), "{kind} must not fault on a legit trace");
            assert!(report.cycles > 0);
            assert_eq!(report.ops, 32);
            assert_eq!(report.counts.stores, 32);
        }
    }

    #[test]
    fn scheme_ordering_on_protected_trace() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        let reports = replay_source_all(&trace, &SchemeKind::ALL, &cfg);
        let cycles = |k: SchemeKind| reports.iter().find(|r| r.scheme == k).unwrap().cycles;
        // Baseline is fastest; lowerbound adds only WRPKRU cost.
        assert!(cycles(SchemeKind::Unprotected) < cycles(SchemeKind::Lowerbound));
        assert_eq!(
            cycles(SchemeKind::Lowerbound) - cycles(SchemeKind::Unprotected),
            64 * 27,
            "lowerbound adds exactly one WRPKRU per switch"
        );
        // With a single PMO, both hardware designs stay close to lowerbound.
        for k in [SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
            let over = cycles(k) as f64 / cycles(SchemeKind::Lowerbound) as f64;
            assert!(over < 1.10, "{k} within 10% of lowerbound, got {over}");
        }
    }

    #[test]
    fn fast_path_is_equivalent_across_schemes() {
        // The acceptance bar of the fast lane: every modeled number —
        // cycles, breakdown buckets, scheme stats, TLB stats, cache stats,
        // recorded faults — is byte-identical with the fast path on or
        // off, for every scheme, on a trace that exercises allowed runs,
        // denied runs, invalidation events, and page crossings.
        for trace in [legit_trace(), stress_trace()] {
            for kind in SchemeKind::ALL {
                let slow = replay_with_fast(&trace, kind, false);
                let fast = replay_with_fast(&trace, kind, true);
                assert_eq!(slow, fast, "{kind}: fast path diverged from slow path");
            }
        }
    }

    #[test]
    fn fast_path_actually_engages() {
        let trace = stress_trace();
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::DomainVirt, &cfg);
        trace.replay(&mut replay);
        let hits = replay.fast_path_hits();
        assert!(hits > 1000, "same-page runs must be served fast, got {hits}");
    }

    #[test]
    fn line_memo_settles_dirty_bit_before_clwb() {
        // Batched same-line stores carry a pending dirty bit; a clwb
        // between them must see it (and count the memory write) exactly
        // as the unmemoized replay would. The persist idiom — store run,
        // clwb, fence, store run on the same line — is the worst case.
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 8 << 20, nvm: true });
        t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        for round in 0..8u64 {
            for word in 0..8u64 {
                t.store(BASE + round * 64 + word * 8, 8);
            }
            t.event(TraceEvent::Flush { va: BASE + round * 64 });
            t.event(TraceEvent::Fence);
            // Re-dirty the just-cleaned line, then read it back.
            t.store(BASE + round * 64, 8);
            t.load(BASE + round * 64, 8);
        }
        for kind in SchemeKind::ALL {
            let slow = replay_with_fast(&t, kind, false);
            let fast = replay_with_fast(&t, kind, true);
            assert_eq!(slow, fast, "{kind}: line memo diverged around clwb");
            assert!(fast.nvm_writes >= 8, "{kind}: clwb of dirty lines must reach NVM");
        }
    }

    #[test]
    fn fast_path_invalidated_by_setperm() {
        // Regression: a SetPerm between two same-page accesses must change
        // the verdict — the memoized entry may not outlive the event.
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::DomainVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        replay.store(BASE, 8);
        replay.store(BASE + 8, 8); // fast hit, allowed
        assert_eq!(replay.fast_path_hits(), 1);
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
        replay.store(BASE + 16, 8); // slow again: must now be denied
        let report = replay.finish();
        assert_eq!(report.scheme_stats.faults, 1, "revoked permission must deny");
        assert_eq!(report.faults.len(), 1);
        assert!(report.faults[0].is_domain_violation());
    }

    #[test]
    fn fast_path_invalidated_by_shootdown_marker() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::MpkVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        replay.store(BASE, 8);
        replay.event(TraceEvent::Shootdown { pmo: PmoId::new(1) });
        // The entry was dropped: this access re-walks instead of hitting.
        replay.store(BASE + 8, 8);
        assert_eq!(replay.fast_path_hits(), 0, "shootdown must disarm the fast entry");
        replay.store(BASE + 16, 8);
        assert_eq!(replay.fast_path_hits(), 1, "re-armed after the slow access");
        assert!(!replay.finish().faulted());
    }

    #[test]
    fn faults_beyond_cap_are_counted_not_lost() {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 1 << 20, nvm: true });
        for i in 0..40u64 {
            t.store(BASE + i * 8, 8); // no permission granted: all denied
        }
        for fast in [false, true] {
            let report = replay_with_fast(&t, SchemeKind::DomainVirt, fast);
            assert_eq!(report.faults.len(), 32, "log capped at FAULT_LOG_CAP");
            assert_eq!(report.faults_dropped, 8, "overflow is counted (fast={fast})");
            assert_eq!(report.scheme_stats.faults, 40);
        }
    }

    #[test]
    fn faults_are_recorded_not_fatal() {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 1 << 20, nvm: true });
        t.store(BASE, 8); // no permission granted
        let report = replay_source(&t, SchemeKind::DomainVirt, &SimConfig::isca2020());
        assert!(report.faulted());
        assert_eq!(report.faults.len(), 1);
        assert!(report.faults[0].is_domain_violation());
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn strict_mode_panics() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::strict(SchemeKind::DomainVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.store(BASE, 8);
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn strict_mode_panics_on_fast_path_denial() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::strict(SchemeKind::DomainVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        replay.load(BASE, 8); // arms the fast entry
        replay.store(BASE + 8, 8); // fast-path deny must still panic
    }

    #[test]
    fn fractional_cpi_accumulates() {
        let cfg = SimConfig::isca2020(); // base CPI 0.25
        let mut replay = Replay::new(SchemeKind::Unprotected, &cfg);
        for _ in 0..4 {
            replay.compute(1);
        }
        assert_eq!(replay.cycles(), 1, "4 instructions at CPI 0.25 = 1 cycle");
        let report = replay.finish();
        assert_eq!(report.instructions, 4);
    }

    #[test]
    fn flush_and_fence_costs() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::Unprotected, &cfg);
        replay.event(TraceEvent::Flush { va: 0x1000 });
        replay.event(TraceEvent::Fence);
        assert_eq!(replay.cycles(), cfg.clwb_cycles + cfg.fence_cycles);
    }

    #[test]
    fn snapshot_windows_cycles_and_counters() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::Lowerbound, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        replay.store(BASE, 8);
        let snap = replay.snapshot();
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        replay.load(BASE, 8);
        replay.event(TraceEvent::Op { kind: OpKind::End });
        let windowed = replay.finish().since(&snap);
        assert_eq!(windowed.counts.set_perms, 1, "only the post-snapshot switch");
        assert_eq!(windowed.ops, 1);
        assert!(windowed.cycles > 0 && windowed.cycles < 100);
        assert_eq!(windowed.breakdown.permission_change, 27);
    }

    #[test]
    fn context_switches_cost_more_under_virtualization() {
        // Thread switches flush per-thread structures in both designs but
        // cost nothing extra in the baseline.
        let cfg = SimConfig::isca2020();
        let run = |kind: SchemeKind| {
            let mut replay = Replay::new(kind, &cfg);
            replay.event(TraceEvent::Attach {
                pmo: PmoId::new(1),
                base: BASE,
                size: 1 << 20,
                nvm: true,
            });
            for t in 0..64u32 {
                replay.event(TraceEvent::ThreadSwitch { thread: pmo_trace::ThreadId::new(t % 2) });
                replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
                replay.load(BASE, 8);
            }
            replay.finish().cycles
        };
        let baseline = run(SchemeKind::Unprotected);
        let mpk_virt = run(SchemeKind::MpkVirt);
        let domain_virt = run(SchemeKind::DomainVirt);
        assert!(mpk_virt > baseline);
        assert!(domain_virt > baseline);
        // The paper: "the impact of flushing [the PTLB] on context switch
        // on performance is small" — per-switch cost stays bounded (tens
        // of cycles) in both designs.
        for (name, cycles) in [("mpk-virt", mpk_virt), ("domain-virt", domain_virt)] {
            let per_switch = (cycles - baseline) as f64 / 64.0;
            assert!(per_switch < 200.0, "{name}: {per_switch:.0} cycles per switch is not 'small'");
        }
    }

    #[test]
    fn batched_block_replay_matches_streamed_replay() {
        // The batched engine's acceptance bar: per-block count merging,
        // run-length settlement, and the summary table must leave every
        // modeled number byte-identical to the streamed sink, for every
        // scheme, on both traces — and the zero-copy encoded path must
        // agree too.
        for trace in [legit_trace(), stress_trace()] {
            let cfg = SimConfig::isca2020();
            let blocks = pmo_trace::block::block_trace_of(&trace);
            let encoded = blocks.encode();
            for kind in SchemeKind::ALL {
                let streamed = replay_source(&trace, kind, &cfg);
                let batched = replay_block_trace(&blocks, kind, &cfg);
                assert_eq!(streamed, batched, "{kind}: batched replay diverged");
                let mut replay = Replay::new(kind, &cfg);
                replay.replay_encoded(&encoded).unwrap();
                assert_eq!(streamed, replay.finish(), "{kind}: encoded replay diverged");
            }
        }
    }

    #[test]
    fn batched_replay_respects_small_blocks() {
        // Runs that span block boundaries must settle per block and
        // re-engage in the next one.
        let trace = stress_trace();
        let cfg = SimConfig::isca2020();
        let blocks = pmo_trace::BlockTrace::with_block_events(7);
        let blocks = {
            let mut b = blocks;
            trace.replay(&mut b);
            b
        };
        for kind in SchemeKind::ALL {
            let streamed = replay_source(&trace, kind, &cfg);
            let batched = replay_block_trace(&blocks, kind, &cfg);
            assert_eq!(streamed, batched, "{kind}: 7-event blocks diverged");
        }
    }

    #[test]
    fn fault_cap_crossed_inside_one_batch() {
        // 40 same-line denied stores land in a single block; the cap is
        // crossed mid-run. Denied accesses never batch, so truncation
        // must match the streamed path exactly: 32 logged, 8 counted.
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 1 << 20, nvm: true });
        for i in 0..40u64 {
            t.store(BASE + (i % 8) * 8, 8); // no permission granted
        }
        let cfg = SimConfig::isca2020();
        let blocks = pmo_trace::block::block_trace_of(&t);
        assert_eq!(blocks.blocks().len(), 1, "test premise: one block");
        for kind in SchemeKind::ALL {
            let streamed = replay_source(&t, kind, &cfg);
            let batched = replay_block_trace(&blocks, kind, &cfg);
            assert_eq!(streamed, batched, "{kind}: mid-batch fault cap diverged");
        }
        let report = replay_block_trace(&blocks, SchemeKind::DomainVirt, &cfg);
        assert_eq!(report.faults.len(), 32, "log capped at FAULT_LOG_CAP");
        assert_eq!(report.faults_dropped, 8, "overflow counted, not lost");
        assert_eq!(report.scheme_stats.faults, 40);
    }

    #[test]
    fn summary_serves_page_revisits() {
        // Alternating between two pages defeats the one-entry fast memo
        // but not the summary table: revisits revalidate and skip the
        // scheme walk.
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::DomainVirt, &cfg);
        for pmo in [1u32, 2] {
            replay.event(TraceEvent::Attach {
                pmo: PmoId::new(pmo),
                base: u64::from(pmo) * (1 << 30),
                size: 1 << 20,
                nvm: true,
            });
            replay.event(TraceEvent::SetPerm { pmo: PmoId::new(pmo), perm: Perm::ReadWrite });
        }
        for round in 0..8u64 {
            replay.store(1 << 30, 8);
            replay.store(2 << 30, 8);
            if round == 0 {
                assert_eq!(replay.summary_hits(), 0, "first visits must walk");
            }
        }
        assert_eq!(replay.summary_hits(), 14, "every revisit must be summary-served");
        assert!(!replay.finish().faulted());
    }

    /// Builds the two-PMO preamble and a first visit to both pages, so
    /// each has a live summary row, then lets the caller inject the
    /// invalidating event and probe the revisit.
    fn summary_armed_replay(kind: SchemeKind) -> Replay {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(kind, &cfg);
        for pmo in [1u32, 2] {
            replay.event(TraceEvent::Attach {
                pmo: PmoId::new(pmo),
                base: u64::from(pmo) * (1 << 30),
                size: 1 << 20,
                nvm: true,
            });
            replay.event(TraceEvent::SetPerm { pmo: PmoId::new(pmo), perm: Perm::ReadWrite });
        }
        replay.store(1 << 30, 8);
        replay.store(2 << 30, 8);
        replay
    }

    #[test]
    fn summary_invalidated_by_setperm_revokes_verdict() {
        // The critical edge: a stale RW summary row served after SetPerm
        // would let a revoked access through.
        let mut replay = summary_armed_replay(SchemeKind::DomainVirt);
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
        replay.store(1 << 30, 8);
        assert_eq!(replay.summary_hits(), 0, "post-SetPerm revisit must walk");
        let report = replay.finish();
        assert_eq!(report.scheme_stats.faults, 1, "revoked permission must deny");
    }

    #[test]
    fn summary_invalidated_by_attach() {
        let mut replay = summary_armed_replay(SchemeKind::DomainVirt);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(3),
            base: 3 << 30,
            size: 1 << 20,
            nvm: true,
        });
        replay.store(1 << 30, 8);
        assert_eq!(replay.summary_hits(), 0, "post-Attach revisit must walk");
        assert!(!replay.finish().faulted());
    }

    #[test]
    fn summary_invalidated_by_detach() {
        let mut replay = summary_armed_replay(SchemeKind::DomainVirt);
        replay.event(TraceEvent::Detach { pmo: PmoId::new(2) });
        replay.store(1 << 30, 8);
        assert_eq!(replay.summary_hits(), 0, "post-Detach revisit must walk");
        assert!(!replay.finish().faulted());
    }

    #[test]
    fn summary_invalidated_by_thread_switch() {
        // Thread 1 never got a grant: serving thread 0's summary row
        // after the switch would leak its permission.
        let mut replay = summary_armed_replay(SchemeKind::DomainVirt);
        replay.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(1) });
        replay.store(1 << 30, 8);
        assert_eq!(replay.summary_hits(), 0, "post-switch revisit must walk");
        let report = replay.finish();
        assert_eq!(report.scheme_stats.faults, 1, "thread 1 has no permission");
    }

    #[test]
    fn summary_invalidated_by_shootdown() {
        let mut replay = summary_armed_replay(SchemeKind::MpkVirt);
        replay.event(TraceEvent::Shootdown { pmo: PmoId::new(1) });
        replay.store(1 << 30, 8);
        assert_eq!(replay.summary_hits(), 0, "post-Shootdown revisit must walk");
        assert!(!replay.finish().faulted());
    }

    #[test]
    fn summary_survives_flush_and_fence() {
        // Flush/Fence touch only the caches: the summary row stays live
        // and the revisit is still summary-served.
        let mut replay = summary_armed_replay(SchemeKind::DomainVirt);
        replay.event(TraceEvent::Flush { va: 1 << 30 });
        replay.event(TraceEvent::Fence);
        replay.store(1 << 30, 8);
        assert_eq!(replay.summary_hits(), 1, "flush/fence must not invalidate");
        assert!(!replay.finish().faulted());
    }

    #[test]
    fn summary_misses_after_l1_eviction() {
        // A summary row can outlive its page's L1 TLB entry; the
        // revalidate step must catch the eviction and fall back to the
        // walk, keeping reports byte-identical. Stride over far more
        // pages than the L1 TLB holds, twice, under every scheme.
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 8 << 20, nvm: true });
        t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        for round in 0..3u64 {
            for page in 0..256u64 {
                t.load(BASE + page * 4096 + round * 8, 8);
            }
        }
        for kind in SchemeKind::ALL {
            let slow = replay_with_fast(&t, kind, false);
            let fast = replay_with_fast(&t, kind, true);
            assert_eq!(slow, fast, "{kind}: revalidate-after-eviction diverged");
            let blocks = pmo_trace::block::block_trace_of(&t);
            let batched = replay_block_trace(&blocks, kind, &SimConfig::isca2020());
            assert_eq!(slow, batched, "{kind}: batched revalidate diverged");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        let a = replay_source(&trace, SchemeKind::MpkVirt, &cfg);
        let b = replay_source(&trace, SchemeKind::MpkVirt, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.breakdown, b.breakdown);
    }
}
