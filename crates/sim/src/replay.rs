//! The trace-replay engine: one protection scheme + the memory hierarchy,
//! driven by a stream of trace events.
//!
//! The engine dispatches to the scheme through the closed [`AnyScheme`]
//! enum (no vtable on the hot path) and memoizes consecutive same-page
//! accesses through a one-entry [`FastHint`] cache: translation and
//! permission verdict are reused, so repeated hits skip the TLB/DTT/PT
//! machinery while charging exactly the modeled cycles the slow path
//! would. The fast path memoizes the *simulator's* work, never the
//! *simulated* costs.

use pmo_protect::{AnyScheme, FastHint, ProtectionFault, ProtectionScheme, SchemeKind};
use pmo_simarch::{vpn, CacheHierarchy, MemKind, SimConfig};
use pmo_trace::{AccessKind, EventCounts, OpKind, TraceEvent, TraceSink, TraceSource};

use crate::report::{ReplayReport, ReplaySnapshot};

/// What to do when a trace access violates the protection policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Record the fault and continue (the access is suppressed).
    #[default]
    Record,
    /// Panic immediately — for debugging workloads that are expected to be
    /// permission-clean.
    Panic,
}

/// Maximum number of individual faults retained in the report; faults
/// beyond the cap are counted in [`ReplayReport::faults_dropped`].
const FAULT_LOG_CAP: usize = 32;

/// Sentinel for [`FastEntry::line`] when no line is known resident (the
/// arming access faulted, so it never reached the caches).
const NO_LINE: u64 = u64::MAX;

/// The armed fast-path entry: a memoized verdict for one page, plus the
/// accounting (hits served, hits denied) still owed to the scheme.
///
/// Nested inside it is a one-line cache memo: `line` is the last line
/// accessed through this entry — it is L1-resident, because nothing has
/// touched the caches since its access — with `line_reads`/`line_writes`
/// repeat hits batched and still owed to the L1 stats. Consecutive
/// same-line accesses therefore skip the cache walk entirely and charge
/// the (constant) L1 hit latency.
struct FastEntry {
    page: u64,
    hint: FastHint,
    hits: u64,
    denied: u64,
    line: u64,
    line_reads: u64,
    line_writes: u64,
}

/// A replay in progress. Implements [`TraceSink`], so workload generators
/// can stream events straight into it; call [`Replay::finish`] for the
/// report.
///
/// # Example
///
/// ```
/// use pmo_protect::SchemeKind;
/// use pmo_sim::Replay;
/// use pmo_simarch::SimConfig;
/// use pmo_trace::{Perm, PmoId, TraceEvent, TraceSink};
///
/// let config = SimConfig::isca2020();
/// let mut replay = Replay::new(SchemeKind::DomainVirt, &config);
/// let base = 0x40_0000_0000;
/// replay.event(TraceEvent::Attach { pmo: PmoId::new(1), base, size: 1 << 20, nvm: true });
/// replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
/// replay.store(base, 8);
/// let report = replay.finish();
/// assert!(report.cycles > 0);
/// assert!(!report.faulted());
/// ```
pub struct Replay {
    cfg: SimConfig,
    scheme: AnyScheme,
    caches: CacheHierarchy,
    cycles: u64,
    cpi_carry: f64,
    counts: EventCounts,
    faults: Vec<ProtectionFault>,
    faults_dropped: u64,
    policy: FaultPolicy,
    ops: u64,
    fast_enabled: bool,
    fast: Option<FastEntry>,
    fast_hits_total: u64,
    /// `log2(line_bytes)` and the L1 hit latency, copied out of the
    /// config so the hot path doesn't chase through the hierarchy.
    line_shift: u32,
    l1_hit_cycles: u64,
}

impl Replay {
    /// Creates a replay for one scheme.
    #[must_use]
    pub fn new(kind: SchemeKind, config: &SimConfig) -> Self {
        Replay {
            cfg: config.clone(),
            scheme: kind.build_any(config),
            caches: CacheHierarchy::new(config),
            cycles: 0,
            cpi_carry: 0.0,
            counts: EventCounts::default(),
            faults: Vec::new(),
            faults_dropped: 0,
            policy: FaultPolicy::Record,
            ops: 0,
            fast_enabled: true,
            fast: None,
            fast_hits_total: 0,
            line_shift: config.line_bytes.trailing_zeros(),
            l1_hit_cycles: config.l1d_latency,
        }
    }

    /// Creates a replay that panics on the first protection fault.
    #[must_use]
    pub fn strict(kind: SchemeKind, config: &SimConfig) -> Self {
        let mut replay = Self::new(kind, config);
        replay.policy = FaultPolicy::Panic;
        replay
    }

    /// Enables or disables the same-page fast path (on by default). The
    /// modeled results are identical either way — this exists so the
    /// equivalence can be asserted and the speedup measured.
    pub fn set_fast_path(&mut self, enabled: bool) {
        if !enabled {
            self.flush_fast();
        }
        self.fast_enabled = enabled;
    }

    /// Accesses served by the memoized fast path so far (observability for
    /// benchmarks and invalidation tests; not part of the report).
    #[must_use]
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_hits_total
    }

    /// Cycles simulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The scheme being driven (for inspection in tests). Scheme-side
    /// counters are settled at [`Replay::snapshot`]/[`Replay::finish`];
    /// between accesses they may lag by the currently batched fast hits.
    #[must_use]
    pub fn scheme(&self) -> &dyn ProtectionScheme {
        &self.scheme
    }

    /// Drains protocol-level events the scheme emitted internally since
    /// the last drain (ranged shootdowns on the key-eviction path), so
    /// audit sinks can fold them into the analyzed stream.
    pub fn drain_protocol_events(&mut self) -> Vec<TraceEvent> {
        self.scheme.drain_events()
    }

    fn charge_compute(&mut self, instructions: u32) {
        let exact = f64::from(instructions) * self.cfg.base_cpi + self.cpi_carry;
        let whole = exact.floor();
        self.cpi_carry = exact - whole;
        self.cycles += whole as u64;
    }

    /// Settles the batched fast-path accounting (scheme-side hit counts
    /// and the nested line-memo cache hits) and disarms the entry. Must
    /// run before any scheme-state mutation and before reading scheme or
    /// cache counters (snapshot/finish).
    fn flush_fast(&mut self) {
        if let Some(entry) = self.fast.take() {
            if entry.hits > 0 {
                self.scheme.note_fast_hits(&entry.hint, entry.hits, entry.denied);
            }
            if entry.line != NO_LINE {
                self.caches.note_line_hits(
                    entry.line << self.line_shift,
                    entry.line_reads,
                    entry.line_writes,
                );
            }
        }
    }

    /// Settles only the nested line memo's batched L1 hits, keeping the
    /// page entry armed. Must run before anything else touches or reads
    /// the caches (a slow-path access, a line flush, the final report).
    fn settle_line(&mut self) {
        if let Some(entry) = &mut self.fast {
            if entry.line != NO_LINE && entry.line_reads + entry.line_writes > 0 {
                self.caches.note_line_hits(
                    entry.line << self.line_shift,
                    entry.line_reads,
                    entry.line_writes,
                );
                entry.line_reads = 0;
                entry.line_writes = 0;
            }
        }
    }

    fn record_fault(&mut self, fault: ProtectionFault) {
        if self.faults.len() < FAULT_LOG_CAP {
            self.faults.push(fault);
        } else {
            self.faults_dropped += 1;
        }
    }

    fn memory_access(&mut self, va: u64, size: u8, kind: AccessKind) {
        debug_assert!(size > 0 && size <= 64, "access size {size} out of range");
        if let Some(entry) = &mut self.fast {
            if entry.page == vpn(va) {
                let hint = entry.hint;
                entry.hits += 1;
                self.fast_hits_total += 1;
                self.cycles += hint.cycles;
                if hint.effective.allows(kind) {
                    let line = va >> self.line_shift;
                    if line == entry.line {
                        // Nothing touched the caches since this line was
                        // accessed: a guaranteed L1 hit. Batch the stats
                        // bump and charge the constant hit latency.
                        if kind.is_write() {
                            entry.line_writes += 1;
                        } else {
                            entry.line_reads += 1;
                        }
                        self.cycles += self.l1_hit_cycles;
                    } else {
                        self.settle_line();
                        self.cycles += self.caches.access(va, hint.mem, kind.is_write());
                        if let Some(entry) = &mut self.fast {
                            entry.line = line;
                        }
                    }
                } else {
                    entry.denied += 1;
                    let fault = hint.fault(va, kind);
                    if self.policy == FaultPolicy::Panic {
                        panic!("protection fault during strict replay: {fault}");
                    }
                    self.record_fault(fault);
                }
                return;
            }
        }
        self.flush_fast();
        let result = self.scheme.access(va, kind);
        self.cycles += result.cycles;
        let mut accessed_line = NO_LINE;
        match result.fault {
            None => {
                self.cycles += self.caches.access(va, result.mem, kind.is_write());
                accessed_line = va >> self.line_shift;
            }
            Some(fault) => {
                if self.policy == FaultPolicy::Panic {
                    panic!("protection fault during strict replay: {fault}");
                }
                self.record_fault(fault);
            }
        }
        if self.fast_enabled {
            self.fast = self.scheme.fast_hint(va).map(|hint| FastEntry {
                page: vpn(va),
                hint,
                hits: 0,
                denied: 0,
                line: accessed_line,
                line_reads: 0,
                line_writes: 0,
            });
        }
    }

    /// Captures the cumulative state at a phase boundary, so the report
    /// can later be windowed to just the measured phase (e.g. excluding
    /// population) via [`ReplayReport::since`].
    #[must_use]
    pub fn snapshot(&mut self) -> ReplaySnapshot {
        self.flush_fast();
        ReplaySnapshot {
            cycles: self.cycles,
            breakdown: self.scheme.breakdown(),
            set_perms: self.counts.set_perms,
            ops: self.ops,
        }
    }

    /// Consumes the replay, producing the report.
    #[must_use]
    pub fn finish(mut self) -> ReplayReport {
        self.flush_fast();
        let tlb = self.scheme.tlb_stats();
        ReplayReport {
            scheme: self.scheme.kind(),
            cycles: self.cycles,
            instructions: self.counts.instructions(),
            counts: self.counts,
            breakdown: self.scheme.breakdown(),
            scheme_stats: self.scheme.stats(),
            tlb,
            l1d: *self.caches.l1_stats(),
            l2: *self.caches.l2_stats(),
            nvm_reads: self.caches.memory().nvm_reads(),
            nvm_writes: self.caches.memory().nvm_writes(),
            faults: self.faults,
            faults_dropped: self.faults_dropped,
            ops: self.ops,
            wall_nanos: 0,
        }
    }
}

impl TraceSink for Replay {
    fn event(&mut self, ev: TraceEvent) {
        self.counts.observe(&ev);
        match ev {
            TraceEvent::Compute { count } => self.charge_compute(count),
            TraceEvent::Load { va, size } => self.memory_access(va, size, AccessKind::Read),
            TraceEvent::Store { va, size } => self.memory_access(va, size, AccessKind::Write),
            // Valued stores cost exactly what plain stores cost; the data
            // payload only matters to persistency-model analyses.
            TraceEvent::StoreData { va, size, .. } => {
                self.memory_access(va, size, AccessKind::Write);
            }
            TraceEvent::SetPerm { pmo, perm } => {
                self.flush_fast();
                self.cycles += self.scheme.set_perm(pmo, perm);
            }
            TraceEvent::Attach { pmo, base, size, nvm } => {
                self.flush_fast();
                self.cycles += self.scheme.attach(pmo, base, size, nvm);
            }
            TraceEvent::Detach { pmo } => {
                self.flush_fast();
                self.cycles += self.scheme.detach(pmo);
            }
            TraceEvent::ThreadSwitch { thread } => {
                self.flush_fast();
                self.cycles += self.scheme.context_switch(thread);
            }
            TraceEvent::Flush { va } => {
                // clwb issue cost; the drain is asynchronous. PMO flushes
                // target NVM lines. Touches only the caches, so the fast
                // entry stays armed — but the line memo's batched hits
                // (a pending dirty bit in particular) must land before
                // the writeback, and clwb *retains* the line, so the memo
                // itself stays valid too.
                self.settle_line();
                self.cycles += self.cfg.clwb_cycles;
                self.caches.flush_line(va, MemKind::Nvm);
            }
            TraceEvent::Fence => {
                self.cycles += self.cfg.fence_cycles;
            }
            TraceEvent::Op { kind: OpKind::End } => self.ops += 1,
            TraceEvent::Op { kind: OpKind::Begin } => {}
            // Injected-fault markers carry no timing cost; they exist so
            // fault-injection campaigns can replay the exact crash point.
            TraceEvent::Fault { .. } => {}
            // Shootdown completion markers are free: each scheme already
            // charges its shootdown IPIs inside the detach/evict cost
            // model. Conservatively drop the memoized verdict anyway.
            TraceEvent::Shootdown { .. } => {
                self.flush_fast();
            }
        }
    }
}

/// Replays a recorded trace under one scheme.
#[must_use]
pub fn replay_source(
    source: &dyn TraceSource,
    kind: SchemeKind,
    config: &SimConfig,
) -> ReplayReport {
    let mut replay = Replay::new(kind, config);
    source.replay(&mut replay);
    replay.finish()
}

/// Replays a recorded trace under several schemes (the paper's single-
/// trace, many-schemes methodology).
#[must_use]
pub fn replay_source_all(
    source: &dyn TraceSource,
    kinds: &[SchemeKind],
    config: &SimConfig,
) -> Vec<ReplayReport> {
    kinds.iter().map(|kind| replay_source(source, *kind, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::{Perm, PmoId, RecordedTrace, ThreadId};

    const BASE: u64 = 0x40_0000_0000;

    fn legit_trace() -> RecordedTrace {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 8 << 20, nvm: true });
        for i in 0..32u64 {
            t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
            t.store(BASE + i * 256, 8);
            t.load(BASE + i * 256, 8);
            t.compute(20);
            t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
            t.event(TraceEvent::Op { kind: OpKind::End });
        }
        t
    }

    /// A trace designed to stress the fast path: many PMOs, long runs of
    /// same-page accesses, denied accesses, thread switches, shootdown
    /// markers, flushes, and page-crossing strides.
    fn stress_trace() -> RecordedTrace {
        let mut t = RecordedTrace::new();
        for i in 1..=20u64 {
            t.event(TraceEvent::Attach {
                pmo: PmoId::new(i as u32),
                base: i * (1 << 30),
                size: 8 << 20,
                nvm: true,
            });
        }
        for round in 0..4u64 {
            for i in 1..=20u64 {
                let base = i * (1 << 30) + round * 4096;
                t.event(TraceEvent::SetPerm { pmo: PmoId::new(i as u32), perm: Perm::ReadWrite });
                // Long same-page run.
                for k in 0..16u64 {
                    t.store(base + k * 64, 8);
                    t.load(base + k * 64, 8);
                }
                t.event(TraceEvent::Flush { va: base });
                t.event(TraceEvent::Fence);
                // Read-only: same-page writes now deny.
                t.event(TraceEvent::SetPerm { pmo: PmoId::new(i as u32), perm: Perm::ReadOnly });
                t.load(base, 8);
                t.store(base + 8, 8); // denied
                t.store(base + 16, 8); // denied, same page (fast-path deny)
                t.event(TraceEvent::SetPerm { pmo: PmoId::new(i as u32), perm: Perm::None });
                t.event(TraceEvent::ThreadSwitch { thread: ThreadId::new((round % 2) as u32) });
                t.event(TraceEvent::Op { kind: OpKind::End });
            }
            t.event(TraceEvent::Shootdown { pmo: PmoId::new(1) });
        }
        t
    }

    fn replay_with_fast(trace: &RecordedTrace, kind: SchemeKind, fast: bool) -> ReplayReport {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(kind, &cfg);
        replay.set_fast_path(fast);
        trace.replay(&mut replay);
        replay.finish()
    }

    #[test]
    fn all_schemes_replay_cleanly() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        for kind in SchemeKind::ALL {
            let report = replay_source(&trace, kind, &cfg);
            assert!(!report.faulted(), "{kind} must not fault on a legit trace");
            assert!(report.cycles > 0);
            assert_eq!(report.ops, 32);
            assert_eq!(report.counts.stores, 32);
        }
    }

    #[test]
    fn scheme_ordering_on_protected_trace() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        let reports = replay_source_all(&trace, &SchemeKind::ALL, &cfg);
        let cycles = |k: SchemeKind| reports.iter().find(|r| r.scheme == k).unwrap().cycles;
        // Baseline is fastest; lowerbound adds only WRPKRU cost.
        assert!(cycles(SchemeKind::Unprotected) < cycles(SchemeKind::Lowerbound));
        assert_eq!(
            cycles(SchemeKind::Lowerbound) - cycles(SchemeKind::Unprotected),
            64 * 27,
            "lowerbound adds exactly one WRPKRU per switch"
        );
        // With a single PMO, both hardware designs stay close to lowerbound.
        for k in [SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
            let over = cycles(k) as f64 / cycles(SchemeKind::Lowerbound) as f64;
            assert!(over < 1.10, "{k} within 10% of lowerbound, got {over}");
        }
    }

    #[test]
    fn fast_path_is_equivalent_across_schemes() {
        // The acceptance bar of the fast lane: every modeled number —
        // cycles, breakdown buckets, scheme stats, TLB stats, cache stats,
        // recorded faults — is byte-identical with the fast path on or
        // off, for every scheme, on a trace that exercises allowed runs,
        // denied runs, invalidation events, and page crossings.
        for trace in [legit_trace(), stress_trace()] {
            for kind in SchemeKind::ALL {
                let slow = replay_with_fast(&trace, kind, false);
                let fast = replay_with_fast(&trace, kind, true);
                assert_eq!(slow, fast, "{kind}: fast path diverged from slow path");
            }
        }
    }

    #[test]
    fn fast_path_actually_engages() {
        let trace = stress_trace();
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::DomainVirt, &cfg);
        trace.replay(&mut replay);
        let hits = replay.fast_path_hits();
        assert!(hits > 1000, "same-page runs must be served fast, got {hits}");
    }

    #[test]
    fn line_memo_settles_dirty_bit_before_clwb() {
        // Batched same-line stores carry a pending dirty bit; a clwb
        // between them must see it (and count the memory write) exactly
        // as the unmemoized replay would. The persist idiom — store run,
        // clwb, fence, store run on the same line — is the worst case.
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 8 << 20, nvm: true });
        t.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        for round in 0..8u64 {
            for word in 0..8u64 {
                t.store(BASE + round * 64 + word * 8, 8);
            }
            t.event(TraceEvent::Flush { va: BASE + round * 64 });
            t.event(TraceEvent::Fence);
            // Re-dirty the just-cleaned line, then read it back.
            t.store(BASE + round * 64, 8);
            t.load(BASE + round * 64, 8);
        }
        for kind in SchemeKind::ALL {
            let slow = replay_with_fast(&t, kind, false);
            let fast = replay_with_fast(&t, kind, true);
            assert_eq!(slow, fast, "{kind}: line memo diverged around clwb");
            assert!(fast.nvm_writes >= 8, "{kind}: clwb of dirty lines must reach NVM");
        }
    }

    #[test]
    fn fast_path_invalidated_by_setperm() {
        // Regression: a SetPerm between two same-page accesses must change
        // the verdict — the memoized entry may not outlive the event.
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::DomainVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        replay.store(BASE, 8);
        replay.store(BASE + 8, 8); // fast hit, allowed
        assert_eq!(replay.fast_path_hits(), 1);
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
        replay.store(BASE + 16, 8); // slow again: must now be denied
        let report = replay.finish();
        assert_eq!(report.scheme_stats.faults, 1, "revoked permission must deny");
        assert_eq!(report.faults.len(), 1);
        assert!(report.faults[0].is_domain_violation());
    }

    #[test]
    fn fast_path_invalidated_by_shootdown_marker() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::MpkVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        replay.store(BASE, 8);
        replay.event(TraceEvent::Shootdown { pmo: PmoId::new(1) });
        // The entry was dropped: this access re-walks instead of hitting.
        replay.store(BASE + 8, 8);
        assert_eq!(replay.fast_path_hits(), 0, "shootdown must disarm the fast entry");
        replay.store(BASE + 16, 8);
        assert_eq!(replay.fast_path_hits(), 1, "re-armed after the slow access");
        assert!(!replay.finish().faulted());
    }

    #[test]
    fn faults_beyond_cap_are_counted_not_lost() {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 1 << 20, nvm: true });
        for i in 0..40u64 {
            t.store(BASE + i * 8, 8); // no permission granted: all denied
        }
        for fast in [false, true] {
            let report = replay_with_fast(&t, SchemeKind::DomainVirt, fast);
            assert_eq!(report.faults.len(), 32, "log capped at FAULT_LOG_CAP");
            assert_eq!(report.faults_dropped, 8, "overflow is counted (fast={fast})");
            assert_eq!(report.scheme_stats.faults, 40);
        }
    }

    #[test]
    fn faults_are_recorded_not_fatal() {
        let mut t = RecordedTrace::new();
        t.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 1 << 20, nvm: true });
        t.store(BASE, 8); // no permission granted
        let report = replay_source(&t, SchemeKind::DomainVirt, &SimConfig::isca2020());
        assert!(report.faulted());
        assert_eq!(report.faults.len(), 1);
        assert!(report.faults[0].is_domain_violation());
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn strict_mode_panics() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::strict(SchemeKind::DomainVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.store(BASE, 8);
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn strict_mode_panics_on_fast_path_denial() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::strict(SchemeKind::DomainVirt, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        replay.load(BASE, 8); // arms the fast entry
        replay.store(BASE + 8, 8); // fast-path deny must still panic
    }

    #[test]
    fn fractional_cpi_accumulates() {
        let cfg = SimConfig::isca2020(); // base CPI 0.25
        let mut replay = Replay::new(SchemeKind::Unprotected, &cfg);
        for _ in 0..4 {
            replay.compute(1);
        }
        assert_eq!(replay.cycles(), 1, "4 instructions at CPI 0.25 = 1 cycle");
        let report = replay.finish();
        assert_eq!(report.instructions, 4);
    }

    #[test]
    fn flush_and_fence_costs() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::Unprotected, &cfg);
        replay.event(TraceEvent::Flush { va: 0x1000 });
        replay.event(TraceEvent::Fence);
        assert_eq!(replay.cycles(), cfg.clwb_cycles + cfg.fence_cycles);
    }

    #[test]
    fn snapshot_windows_cycles_and_counters() {
        let cfg = SimConfig::isca2020();
        let mut replay = Replay::new(SchemeKind::Lowerbound, &cfg);
        replay.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: BASE,
            size: 1 << 20,
            nvm: true,
        });
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        replay.store(BASE, 8);
        let snap = replay.snapshot();
        replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        replay.load(BASE, 8);
        replay.event(TraceEvent::Op { kind: OpKind::End });
        let windowed = replay.finish().since(&snap);
        assert_eq!(windowed.counts.set_perms, 1, "only the post-snapshot switch");
        assert_eq!(windowed.ops, 1);
        assert!(windowed.cycles > 0 && windowed.cycles < 100);
        assert_eq!(windowed.breakdown.permission_change, 27);
    }

    #[test]
    fn context_switches_cost_more_under_virtualization() {
        // Thread switches flush per-thread structures in both designs but
        // cost nothing extra in the baseline.
        let cfg = SimConfig::isca2020();
        let run = |kind: SchemeKind| {
            let mut replay = Replay::new(kind, &cfg);
            replay.event(TraceEvent::Attach {
                pmo: PmoId::new(1),
                base: BASE,
                size: 1 << 20,
                nvm: true,
            });
            for t in 0..64u32 {
                replay.event(TraceEvent::ThreadSwitch { thread: pmo_trace::ThreadId::new(t % 2) });
                replay.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
                replay.load(BASE, 8);
            }
            replay.finish().cycles
        };
        let baseline = run(SchemeKind::Unprotected);
        let mpk_virt = run(SchemeKind::MpkVirt);
        let domain_virt = run(SchemeKind::DomainVirt);
        assert!(mpk_virt > baseline);
        assert!(domain_virt > baseline);
        // The paper: "the impact of flushing [the PTLB] on context switch
        // on performance is small" — per-switch cost stays bounded (tens
        // of cycles) in both designs.
        for (name, cycles) in [("mpk-virt", mpk_virt), ("domain-virt", domain_virt)] {
            let per_switch = (cycles - baseline) as f64 / 64.0;
            assert!(per_switch < 200.0, "{name}: {per_switch:.0} cycles per switch is not 'small'");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = legit_trace();
        let cfg = SimConfig::isca2020();
        let a = replay_source(&trace, SchemeKind::MpkVirt, &cfg);
        let b = replay_source(&trace, SchemeKind::MpkVirt, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.breakdown, b.breakdown);
    }
}
