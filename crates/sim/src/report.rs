//! Replay results and overhead arithmetic.

use std::fmt;

use pmo_protect::{CostBreakdown, ProtectionFault, SchemeKind, SchemeStats};
use pmo_simarch::{CacheStats, SimConfig, TlbStats};
use pmo_trace::EventCounts;

/// Everything a replay run produces.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayReport {
    /// Which scheme ran.
    pub scheme: SchemeKind,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Raw event counts of the trace.
    pub counts: EventCounts,
    /// Scheme cost attribution (Table VII buckets).
    pub breakdown: CostBreakdown,
    /// Scheme event counters.
    pub scheme_stats: SchemeStats,
    /// Data TLB statistics.
    pub tlb: TlbStats,
    /// L1D cache statistics.
    pub l1d: CacheStats,
    /// L2 cache statistics.
    pub l2: CacheStats,
    /// NVM reads/writes reaching memory.
    pub nvm_reads: u64,
    /// NVM write traffic.
    pub nvm_writes: u64,
    /// Protection faults recorded (first few; count in `scheme_stats`).
    pub faults: Vec<ProtectionFault>,
    /// Faults beyond the retained-log cap: counted, not silently lost.
    pub faults_dropped: u64,
    /// Completed workload operations (`Op::End` markers).
    pub ops: u64,
    /// Host wall-clock time the replay took, in nanoseconds. Always 0
    /// when the report leaves the (deterministic) simulator; harnesses
    /// that are allowed to read the clock stamp it afterwards.
    pub wall_nanos: u64,
}

/// Cumulative state captured at a phase boundary of a replay
/// (see [`crate::Replay::snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySnapshot {
    /// Cycles at the boundary.
    pub cycles: u64,
    /// Scheme cost attribution at the boundary.
    pub breakdown: CostBreakdown,
    /// Permission switches at the boundary.
    pub set_perms: u64,
    /// Completed ops at the boundary.
    pub ops: u64,
}

impl ReplayReport {
    /// Windows the report to the portion after `snapshot` (cycles,
    /// breakdown, switch and op counts; structure statistics remain
    /// cumulative).
    #[must_use]
    pub fn since(mut self, snapshot: &ReplaySnapshot) -> ReplayReport {
        self.cycles = self.cycles.saturating_sub(snapshot.cycles);
        self.breakdown = self.breakdown - snapshot.breakdown;
        self.counts.set_perms = self.counts.set_perms.saturating_sub(snapshot.set_perms);
        self.ops = self.ops.saturating_sub(snapshot.ops);
        self
    }

    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Execution-time overhead over `base`, in percent
    /// (`(T - T_base) / T_base * 100`).
    #[must_use]
    pub fn overhead_pct_over(&self, base: &ReplayReport) -> f64 {
        if base.cycles == 0 {
            return 0.0;
        }
        (self.cycles as f64 - base.cycles as f64) * 100.0 / base.cycles as f64
    }

    /// Speedup of this run relative to `other` (>1 means this is faster).
    #[must_use]
    pub fn speedup_over(&self, other: &ReplayReport) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        other.cycles as f64 / self.cycles as f64
    }

    /// Permission switches per simulated second (the paper's
    /// "Switches/sec" columns), at the configured clock.
    #[must_use]
    pub fn switches_per_sec(&self, config: &SimConfig) -> f64 {
        config.per_second(self.counts.set_perms, self.cycles)
    }

    /// Average cycles per completed operation.
    #[must_use]
    pub fn cycles_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.cycles as f64 / self.ops as f64
        }
    }

    /// Whether any protection fault occurred.
    #[must_use]
    pub fn faulted(&self) -> bool {
        self.scheme_stats.faults > 0
    }

    /// Whether the retained fault log holds *every* fault the replay
    /// raised (`faults_dropped == 0`).
    ///
    /// Strict harnesses must fail a run whose log is incomplete rather
    /// than reason from a truncated sample: a dropped fault is exactly as
    /// much of a finding as a retained one.
    #[must_use]
    pub fn fault_log_complete(&self) -> bool {
        self.faults_dropped == 0
    }

    /// Trace events replayed per host wall-clock second — the simulator-
    /// throughput metric tracked by the bench trajectory. 0.0 until
    /// `wall_nanos` has been stamped.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.counts.events as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Serializes the headline numbers as one JSON object (hand-rolled;
    /// the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scheme\":\"{}\",\"cycles\":{},\"instructions\":{},\"events\":{},\
             \"ops\":{},\"ipc\":{:.4},\"faults\":{},\"faults_dropped\":{},\
             \"wall_nanos\":{},\"events_per_sec\":{:.1}}}",
            self.scheme,
            self.cycles,
            self.instructions,
            self.counts.events,
            self.ops,
            self.ipc(),
            self.scheme_stats.faults,
            self.faults_dropped,
            self.wall_nanos,
            self.events_per_sec(),
        )
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} cycles, {} instr (IPC {:.2}), {} ops",
            self.scheme,
            self.cycles,
            self.instructions,
            self.ipc(),
            self.ops
        )?;
        writeln!(f, "  events: {}", self.counts)?;
        writeln!(f, "  breakdown: {}", self.breakdown)?;
        writeln!(f, "  tlb: {}", self.tlb)?;
        writeln!(f, "  l1d: {}  l2: {}", self.l1d, self.l2)?;
        write!(
            f,
            "  scheme: {} setperms, {} evictions, {} shootdowns, {} faults",
            self.scheme_stats.set_perms,
            self.scheme_stats.key_evictions,
            self.scheme_stats.shootdowns,
            self.scheme_stats.faults
        )?;
        if self.faults_dropped > 0 {
            write!(f, " ({} dropped from the log)", self.faults_dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> ReplayReport {
        ReplayReport {
            scheme: SchemeKind::Lowerbound,
            cycles,
            instructions: cycles / 2,
            counts: EventCounts::default(),
            breakdown: CostBreakdown::default(),
            scheme_stats: SchemeStats::default(),
            tlb: TlbStats::default(),
            l1d: CacheStats::default(),
            l2: CacheStats::default(),
            nvm_reads: 0,
            nvm_writes: 0,
            faults: Vec::new(),
            faults_dropped: 0,
            ops: 10,
            wall_nanos: 0,
        }
    }

    #[test]
    fn overhead_math() {
        let base = report(1000);
        let slower = report(1500);
        assert!((slower.overhead_pct_over(&base) - 50.0).abs() < 1e-9);
        assert!((base.overhead_pct_over(&base)).abs() < 1e-9);
        assert!((base.speedup_over(&slower) - 1.5).abs() < 1e-9);
        assert!((base.cycles_per_op() - 100.0).abs() < 1e-9);
        assert!((base.ipc() - 0.5).abs() < 1e-9);
        assert!(!base.faulted());
        assert!(!format!("{base}").is_empty());
    }

    #[test]
    fn zero_guards() {
        let zero = report(0);
        assert_eq!(zero.ipc(), 0.0);
        assert_eq!(zero.overhead_pct_over(&zero), 0.0);
        assert_eq!(zero.speedup_over(&zero), 0.0);
        assert_eq!(zero.events_per_sec(), 0.0, "unstamped wall clock yields no rate");
        let mut no_ops = report(10);
        no_ops.ops = 0;
        assert_eq!(no_ops.cycles_per_op(), 0.0);
    }

    #[test]
    fn throughput_and_json() {
        let mut r = report(1000);
        r.counts.events = 500;
        r.wall_nanos = 250_000_000; // 0.25 s -> 2000 events/sec
        assert!((r.events_per_sec() - 2000.0).abs() < 1e-9);
        let json = r.to_json();
        assert!(json.contains("\"wall_nanos\":250000000"), "{json}");
        assert!(json.contains("\"events_per_sec\":2000.0"), "{json}");
        assert!(json.contains("\"faults_dropped\":0"), "{json}");
    }

    #[test]
    fn dropped_faults_surface_in_display() {
        let mut r = report(1000);
        assert!(!format!("{r}").contains("dropped"));
        assert!(r.fault_log_complete());
        r.faults_dropped = 3;
        assert!(format!("{r}").contains("(3 dropped from the log)"));
        assert!(!r.fault_log_complete(), "a truncated log is never complete");
    }
}
