//! Trace-replay simulator driver for the PMO domain-virtualization
//! reproduction.
//!
//! Combines a [`pmo_protect::ProtectionScheme`] (which owns the TLBs and
//! page table) with the `pmo-simarch` cache/memory hierarchy, and replays
//! trace events through both, producing cycle counts, Table VII cost
//! breakdowns, and structure statistics ([`ReplayReport`]).
//!
//! The paper's methodology — collect one trace, replay it under every
//! scheme — maps to constructing one [`Replay`] per scheme and streaming
//! the same deterministic workload into each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod replay;
mod report;

pub use replay::{replay_block_trace, replay_source, replay_source_all, FaultPolicy, Replay};
pub use report::{ReplayReport, ReplaySnapshot};
