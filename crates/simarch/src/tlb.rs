//! Translation lookaside buffers with a payload generic over the
//! protection scheme (protection key for MPK designs, domain ID for the
//! domain-virtualization design).

use crate::config::SetAssocGeometry;
use crate::replacement::{Policy, ReplArray};
use crate::stats::TlbStats;

/// Base page size: 4KB.
pub const PAGE_BITS: u32 = 12;
/// Bytes per base page.
pub const PAGE_SIZE: u64 = 1 << PAGE_BITS;

/// Virtual page number of an address.
#[must_use]
pub const fn vpn(va: u64) -> u64 {
    va >> PAGE_BITS
}

/// One set-associative TLB level.
///
/// The payload `P` is whatever the page-table entry carries besides the
/// translation: page permissions plus a protection key (MPK schemes) or a
/// domain ID (domain virtualization). The TLB itself is policy-free; range
/// invalidation exists because key remapping in the MPK-virtualization
/// design shoots down the victim PMO's VA range (§IV.D).
#[derive(Clone, Debug)]
pub struct Tlb<P> {
    geometry: SetAssocGeometry,
    ways: usize,
    sets: u64,
    /// `sets - 1` when the set count is a power of two (the common case for
    /// every shipped geometry); the index is then a mask instead of a `%`.
    set_mask: u64,
    pow2_sets: bool,
    /// VPN lane, flat `[set * ways + way]` — struct-of-arrays so way scans
    /// and range shootdowns stream over packed `u64`s only ([`EMPTY_VPN`]
    /// marks a free slot). The VPN lane alone defines validity: payloads
    /// of invalidated slots are left stale and never observed, so bulk
    /// invalidation touches nothing but this lane.
    vpns: Vec<u64>,
    /// One occupancy bitmask per set (bit `w` ⟺ `vpns[set*ways+w]` is
    /// valid). Shootdowns skip empty sets on one load instead of
    /// streaming their VPN words — the difference between a pool-wide
    /// `Range_Flush` costing proportional-to-capacity or
    /// proportional-to-occupancy host time, which matters when a
    /// workload fires hundreds of thousands of them at a mostly-empty
    /// 1536-entry L2 TLB.
    valid: Vec<u64>,
    payloads: Vec<Option<P>>,
    repl: ReplArray,
}

/// Free-slot marker in the VPN lane. A real VPN is `va >> 12`, so it can
/// never reach `u64::MAX`.
const EMPTY_VPN: u64 = u64::MAX;

impl<P: Copy> Tlb<P> {
    /// Creates an empty TLB.
    #[must_use]
    pub fn new(geometry: SetAssocGeometry, policy: Policy) -> Self {
        let sets = geometry.sets() as usize;
        let ways = geometry.ways as usize;
        let pow2_sets = sets.is_power_of_two();
        Tlb {
            geometry,
            ways,
            sets: sets as u64,
            set_mask: (sets as u64).wrapping_sub(1),
            pow2_sets,
            vpns: vec![EMPTY_VPN; sets * ways],
            valid: vec![0; sets],
            payloads: vec![None; sets * ways],
            repl: ReplArray::new(policy, ways as u8, sets),
        }
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        if self.pow2_sets {
            (vpn & self.set_mask) as usize
        } else {
            (vpn % self.sets) as usize
        }
    }

    /// The way holding `vpn` within the set starting at `base`, if any.
    #[inline]
    fn way_of(&self, base: usize, vpn: u64) -> Option<usize> {
        // Full scan without early exit: compiles to straight-line selects
        // instead of an unpredictable short-circuit branch per way.
        let mut found = usize::MAX;
        for (w, &v) in self.vpns[base..base + self.ways].iter().enumerate() {
            if v == vpn {
                found = w;
            }
        }
        (found != usize::MAX).then_some(found)
    }

    /// Looks up a VPN, updating recency. Returns the payload on a hit.
    #[inline]
    pub fn lookup(&mut self, vpn: u64) -> Option<P> {
        let base = self.set_of(vpn) * self.ways;
        let way = self.way_of(base, vpn)?;
        self.repl.touch(base / self.ways, way as u8);
        self.payloads[base + way]
    }

    /// Looks up without updating recency (probe).
    #[inline]
    #[must_use]
    pub fn probe(&self, vpn: u64) -> Option<P> {
        let base = self.set_of(vpn) * self.ways;
        self.way_of(base, vpn).and_then(|way| self.payloads[base + way])
    }

    /// Inserts a translation, returning any evicted entry.
    pub fn insert(&mut self, vpn: u64, payload: P) -> Option<(u64, P)> {
        let set = self.set_of(vpn);
        let base = set * self.ways;
        // Replace in place on re-insert.
        if let Some(way) = self.way_of(base, vpn) {
            self.payloads[base + way] = Some(payload);
            self.repl.touch(set, way as u8);
            return None;
        }
        let way = self.way_of(base, EMPTY_VPN).unwrap_or_else(|| self.repl.victim(set) as usize);
        let evicted = match self.vpns[base + way] {
            EMPTY_VPN => None,
            v => self.payloads[base + way].map(|p| (v, p)),
        };
        self.vpns[base + way] = vpn;
        self.valid[set] |= 1 << way;
        self.payloads[base + way] = Some(payload);
        self.repl.touch(set, way as u8);
        evicted
    }

    /// Invalidates one VPN; returns whether an entry was removed.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        let set = self.set_of(vpn);
        let base = set * self.ways;
        if let Some(way) = self.way_of(base, vpn) {
            self.vpns[base + way] = EMPTY_VPN;
            self.valid[set] &= !(1 << way);
            true
        } else {
            false
        }
    }

    /// Invalidates every entry whose VPN lies in `[start_vpn, end_vpn)`;
    /// returns the number removed (the `Range_Flush` of §IV.D). This runs
    /// on every pool-wide shootdown: empty sets are skipped on one
    /// occupancy-mask load, occupied sets get a branchless scan of their
    /// packed VPN words; [`EMPTY_VPN`] can never land in the range
    /// because `end_vpn` is exclusive.
    pub fn invalidate_range(&mut self, start_vpn: u64, end_vpn: u64) -> u64 {
        let mut removed = 0;
        for (set, mask) in self.valid.iter_mut().enumerate() {
            if *mask == 0 {
                continue;
            }
            let base = set * self.ways;
            let mut cleared = 0u64;
            for (w, v) in self.vpns[base..base + self.ways].iter_mut().enumerate() {
                let hit = *v >= start_vpn && *v < end_vpn;
                removed += u64::from(hit);
                cleared |= u64::from(hit) << w;
                *v = if hit { EMPTY_VPN } else { *v };
            }
            *mask &= !cleared;
        }
        removed
    }

    /// Invalidates everything; returns the number of entries removed.
    pub fn flush_all(&mut self) -> u64 {
        let removed = self.occupancy() as u64;
        self.vpns.fill(EMPTY_VPN);
        self.valid.fill(0);
        removed
    }

    /// Number of valid entries (for tests and occupancy stats).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.geometry.entries as usize
    }

    /// Iterates over every valid `(vpn, payload)` entry without updating
    /// recency (model-checker inspection).
    pub fn entries(&self) -> impl Iterator<Item = (u64, &P)> + '_ {
        self.vpns
            .iter()
            .zip(&self.payloads)
            .filter_map(|(&v, p)| (v != EMPTY_VPN).then_some(()).and(p.as_ref().map(|p| (v, p))))
    }
}

/// Outcome of a hierarchy lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLevel {
    /// Hit in the L1 TLB.
    L1,
    /// Hit in the L2 TLB (entry promoted to L1).
    L2,
    /// Miss in both levels; a page walk is required.
    Miss,
}

/// Two-level TLB hierarchy with promotion and statistics.
#[derive(Clone, Debug)]
pub struct TlbHierarchy<P> {
    l1: Tlb<P>,
    l2: Tlb<P>,
    l1_latency: u64,
    l2_latency: u64,
    miss_penalty: u64,
    stats: TlbStats,
}

impl<P: Copy> TlbHierarchy<P> {
    /// Builds the hierarchy from a [`SimConfig`](crate::SimConfig).
    #[must_use]
    pub fn new(config: &crate::SimConfig) -> Self {
        TlbHierarchy {
            l1: Tlb::new(config.l1_tlb, Policy::TreePlru),
            l2: Tlb::new(config.l2_tlb, Policy::TreePlru),
            l1_latency: config.l1_tlb_latency,
            l2_latency: config.l2_tlb_latency,
            miss_penalty: config.tlb_miss_penalty,
            stats: TlbStats::default(),
        }
    }

    /// Looks up a VPN. Returns the payload (if any level hit), the level,
    /// and the lookup latency in cycles. On a full miss the latency
    /// *includes* the flat page-walk penalty; the caller must then call
    /// [`TlbHierarchy::fill`] with the walked entry.
    pub fn lookup(&mut self, vpn: u64) -> (Option<P>, TlbLevel, u64) {
        let mut cycles = self.l1_latency;
        if let Some(p) = self.l1.lookup(vpn) {
            self.stats.l1_hits += 1;
            return (Some(p), TlbLevel::L1, cycles);
        }
        cycles += self.l2_latency;
        if let Some(p) = self.l2.lookup(vpn) {
            self.stats.l2_hits += 1;
            // Promote into L1.
            self.l1.insert(vpn, p);
            return (Some(p), TlbLevel::L2, cycles);
        }
        self.stats.misses += 1;
        cycles += self.miss_penalty;
        (None, TlbLevel::Miss, cycles)
    }

    /// Installs a walked translation into both levels.
    pub fn fill(&mut self, vpn: u64, payload: P) {
        self.l2.insert(vpn, payload);
        self.l1.insert(vpn, payload);
    }

    /// Ranged shootdown over `[start_vpn, end_vpn)`; returns entries removed.
    pub fn invalidate_range(&mut self, start_vpn: u64, end_vpn: u64) -> u64 {
        let removed = self.l1.invalidate_range(start_vpn, end_vpn)
            + self.l2.invalidate_range(start_vpn, end_vpn);
        self.stats.invalidations += removed;
        self.stats.shootdowns += 1;
        removed
    }

    /// Invalidates a single page in both levels.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        let hit = self.l1.invalidate(vpn) | self.l2.invalidate(vpn);
        if hit {
            self.stats.invalidations += 1;
        }
        hit
    }

    /// Full flush (context switch between processes; not used on thread
    /// switches, which keep the TLB warm in both designs).
    pub fn flush_all(&mut self) -> u64 {
        let removed = self.l1.flush_all() + self.l2.flush_all();
        self.stats.invalidations += removed;
        removed
    }

    /// Probes the L1 level without updating recency or statistics (the
    /// replay fast path validates its cached verdict against this).
    #[must_use]
    pub fn probe_l1(&self, vpn: u64) -> Option<P> {
        self.l1.probe(vpn)
    }

    /// Finds a VPN in the L1 level and touches its recency, with no
    /// statistics and no promotion — exactly the L1 portion of what
    /// [`TlbHierarchy::lookup`] does on an L1 hit. The replay engine's
    /// permission-summary table revalidates its cached verdicts through
    /// this: a summary hit must leave the replacement state exactly as the
    /// full walk would have.
    #[inline]
    pub fn touch_l1(&mut self, vpn: u64) -> Option<P> {
        self.l1.lookup(vpn)
    }

    /// L1 lookup latency in cycles (what a warm hit charges).
    #[must_use]
    pub fn l1_latency(&self) -> u64 {
        self.l1_latency
    }

    /// Credits `n` L1 hits that were served by a memoized fast path
    /// without going through [`TlbHierarchy::lookup`]. Recency is not
    /// touched: the fast path only batches consecutive same-VPN hits, for
    /// which repeated tree-PLRU touches are idempotent.
    pub fn note_l1_hits(&mut self, n: u64) {
        self.stats.l1_hits += n;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// The L1 level (for tests).
    #[must_use]
    pub fn l1(&self) -> &Tlb<P> {
        &self.l1
    }

    /// The L2 level (for tests).
    #[must_use]
    pub fn l2(&self) -> &Tlb<P> {
        &self.l2
    }

    /// Iterates over every valid `(vpn, payload)` entry in both levels
    /// without updating recency (a VPN cached in both levels appears
    /// twice; model-checker inspection).
    pub fn entries(&self) -> impl Iterator<Item = (u64, &P)> + '_ {
        self.l1.entries().chain(self.l2.entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    #[test]
    fn vpn_math() {
        assert_eq!(vpn(0), 0);
        assert_eq!(vpn(4095), 0);
        assert_eq!(vpn(4096), 1);
        assert_eq!(PAGE_SIZE, 4096);
    }

    #[test]
    fn lookup_insert_evict() {
        let mut tlb: Tlb<u32> = Tlb::new(SetAssocGeometry::new(4, 2), Policy::Lru);
        assert_eq!(tlb.lookup(1), None);
        assert_eq!(tlb.insert(1, 10), None);
        assert_eq!(tlb.lookup(1), Some(10));
        // Same set: vpns 1, 3, 5 (2 sets).
        tlb.insert(3, 30);
        let evicted = tlb.insert(5, 50);
        assert_eq!(evicted, Some((1, 10)), "LRU victim");
        assert_eq!(tlb.lookup(1), None);
        assert_eq!(tlb.probe(3), Some(30));
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.capacity(), 4);
    }

    #[test]
    fn reinsert_updates_payload() {
        let mut tlb: Tlb<u32> = Tlb::new(SetAssocGeometry::new(4, 2), Policy::Lru);
        tlb.insert(1, 10);
        assert_eq!(tlb.insert(1, 11), None);
        assert_eq!(tlb.lookup(1), Some(11));
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn range_invalidation() {
        let mut tlb: Tlb<u32> = Tlb::new(SetAssocGeometry::new(16, 4), Policy::TreePlru);
        for v in 0..8 {
            tlb.insert(v, v as u32);
        }
        assert_eq!(tlb.invalidate_range(2, 6), 4);
        assert_eq!(tlb.probe(1), Some(1));
        assert_eq!(tlb.probe(2), None);
        assert_eq!(tlb.probe(5), None);
        assert_eq!(tlb.probe(6), Some(6));
        assert!(tlb.invalidate(6));
        assert!(!tlb.invalidate(6));
        assert_eq!(tlb.flush_all(), 3);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn hierarchy_promotion_and_latency() {
        let cfg = SimConfig::isca2020();
        let mut h: TlbHierarchy<u8> = TlbHierarchy::new(&cfg);
        let (p, level, lat) = h.lookup(7);
        assert_eq!(p, None);
        assert_eq!(level, TlbLevel::Miss);
        assert_eq!(lat, cfg.l1_tlb_latency + cfg.l2_tlb_latency + cfg.tlb_miss_penalty);
        h.fill(7, 42);
        let (p, level, lat) = h.lookup(7);
        assert_eq!(p, Some(42));
        assert_eq!(level, TlbLevel::L1);
        assert_eq!(lat, cfg.l1_tlb_latency);
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().misses, 1);
    }

    #[test]
    fn hierarchy_l2_hit_promotes() {
        let cfg = SimConfig::isca2020();
        let mut h: TlbHierarchy<u8> = TlbHierarchy::new(&cfg);
        h.fill(100, 1);
        // Evict vpn 100 from L1 (64 entries, 16 sets, 4 ways): vpns congruent
        // mod 16 land in the same set.
        for k in 1..=4 {
            h.fill(100 + k * 16, 0);
        }
        let (p, level, _) = h.lookup(100);
        assert_eq!(p, Some(1));
        assert_eq!(level, TlbLevel::L2);
        // Promoted: next lookup is an L1 hit.
        let (_, level, _) = h.lookup(100);
        assert_eq!(level, TlbLevel::L1);
    }

    #[test]
    fn hierarchy_shootdown_counts() {
        let cfg = SimConfig::isca2020();
        let mut h: TlbHierarchy<u8> = TlbHierarchy::new(&cfg);
        for v in 0..10 {
            h.fill(v, 0);
        }
        let removed = h.invalidate_range(0, 10);
        // Each fill puts the entry in both L1 and L2.
        assert_eq!(removed, 20);
        assert_eq!(h.stats().shootdowns, 1);
        let (_, level, _) = h.lookup(3);
        assert_eq!(level, TlbLevel::Miss);
    }
}
