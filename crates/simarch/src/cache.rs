//! Set-associative cache models and the two-level hierarchy.

use crate::config::SetAssocGeometry;
use crate::memory::{MainMemory, MemKind};
use crate::replacement::{Policy, ReplArray};
use crate::stats::CacheStats;

/// A functional (tags-only) set-associative cache.
///
/// Stores no data — the workloads execute functionally on the PMO runtime's
/// storage; the cache exists to produce hit/miss timing and traffic counts,
/// exactly as in a trace-driven simulator.
#[derive(Clone, Debug)]
pub struct Cache {
    name: &'static str,
    line_bytes: u32,
    ways: usize,
    sets: u64,
    /// `sets - 1` when the set count is a power of two (every shipped
    /// geometry); the set index is then a mask instead of a `%`.
    set_mask: u64,
    pow2_sets: bool,
    /// Flat `[set * ways + way]` tag words: the line address
    /// (`va >> line_bits`) in the low 63 bits with the dirty flag packed
    /// into bit 63 ([`DIRTY`]); [`EMPTY_LINE`] marks a free way. Packing
    /// the dirty bit into the tag word (instead of a parallel
    /// `Vec<bool>`) means an access touches one host cache line of
    /// metadata per set, not two.
    tags: Vec<u64>,
    repl: ReplArray,
    stats: CacheStats,
}

/// Dirty flag, packed into the top bit of each tag word.
const DIRTY: u64 = 1 << 63;

/// Free-way marker in the tag lane (dirty bit clear — an empty way is
/// never dirty). A real line address is `va >> 6` at most (58 bits), so
/// it can never collide.
const EMPTY_LINE: u64 = u64::MAX >> 1;

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty line that was evicted to make room, if any.
    pub writeback: Option<u64>,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[must_use]
    pub fn new(
        name: &'static str,
        geometry: SetAssocGeometry,
        line_bytes: u32,
        policy: Policy,
    ) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        let sets = geometry.sets() as usize;
        let ways = geometry.ways as usize;
        Cache {
            name,
            line_bytes,
            ways,
            sets: sets as u64,
            set_mask: (sets as u64).wrapping_sub(1),
            pow2_sets: sets.is_power_of_two(),
            tags: vec![EMPTY_LINE; sets * ways],
            repl: ReplArray::new(policy, ways as u8, sets),
            stats: CacheStats::default(),
        }
    }

    fn line_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    #[inline]
    fn index(&self, line: u64) -> usize {
        if self.pow2_sets {
            (line & self.set_mask) as usize
        } else {
            (line % self.sets) as usize
        }
    }

    /// The way holding `line` within the set starting at `base`, if any.
    /// Scans every way without early exit: the match position is random,
    /// so a short-circuit scan mispredicts its exit branch almost every
    /// access, while the full scan compiles to straight-line selects.
    /// Compares with the dirty bit masked off.
    #[inline]
    fn way_of(&self, base: usize, line: u64) -> Option<usize> {
        let mut found = usize::MAX;
        for (w, &t) in self.tags[base..base + self.ways].iter().enumerate() {
            if t & !DIRTY == line {
                found = w;
            }
        }
        (found != usize::MAX).then_some(found)
    }

    /// Accesses address `va`; returns hit/miss and any dirty writeback.
    ///
    /// On a miss the line is allocated (write-allocate for stores).
    #[inline]
    pub fn access(&mut self, va: u64, is_write: bool) -> CacheAccess {
        let line = va >> self.line_bits();
        let set = self.index(line);
        let base = set * self.ways;
        if let Some(way) = self.way_of(base, line) {
            self.repl.touch(set, way as u8);
            if is_write {
                self.tags[base + way] |= DIRTY;
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return CacheAccess { hit: true, writeback: None };
        }
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let writeback = self.fill(line, is_write);
        CacheAccess { hit: false, writeback }
    }

    /// Installs `line`, returning any dirty victim's line address.
    fn fill(&mut self, line: u64, dirty: bool) -> Option<u64> {
        let set = self.index(line);
        let base = set * self.ways;
        let way = self.way_of(base, EMPTY_LINE).unwrap_or_else(|| self.repl.victim(set) as usize);
        let mut writeback = None;
        let old = self.tags[base + way];
        if old != EMPTY_LINE {
            if old & DIRTY != 0 {
                self.stats.writebacks += 1;
                writeback = Some(old & !DIRTY);
            }
            self.stats.evictions += 1;
        }
        self.tags[base + way] = line | if dirty { DIRTY } else { 0 };
        self.repl.touch(set, way as u8);
        writeback
    }

    /// Writes back `va`'s line if present, returning whether it was dirty.
    /// The line is *retained* (clean) — `clwb` semantics, unlike `clflush`.
    pub fn writeback_line(&mut self, va: u64) -> Option<bool> {
        let line = va >> self.line_bits();
        let base = self.index(line) * self.ways;
        let way = self.way_of(base, line)?;
        let t = &mut self.tags[base + way];
        let was_dirty = *t & DIRTY != 0;
        *t &= !DIRTY;
        Some(was_dirty)
    }

    /// Removes `va`'s line if present, returning whether it was dirty
    /// (`clflush` semantics).
    pub fn flush_line(&mut self, va: u64) -> Option<bool> {
        let line = va >> self.line_bits();
        let base = self.index(line) * self.ways;
        let way = self.way_of(base, line)?;
        let was_dirty = self.tags[base + way] & DIRTY != 0;
        self.tags[base + way] = EMPTY_LINE;
        Some(was_dirty)
    }

    /// Invalidates the whole cache (does not model writeback traffic).
    pub fn flush_all(&mut self) {
        self.tags.fill(EMPTY_LINE);
    }

    /// Settles `reads + writes` batched repeat accesses to a line that is
    /// still resident: the exact equivalent of calling [`Cache::access`]
    /// that many times while the line stays cached (each would be a pure
    /// hit — the hit counters grow, a write marks the line dirty, and the
    /// replacement state is touched; repeat touches of an already-MRU way
    /// are idempotent, so one touch settles the batch).
    ///
    /// The caller must guarantee residency: the line was accessed and no
    /// cache state changed since (no other access, fill, or flush).
    pub fn note_line_hits(&mut self, va: u64, reads: u64, writes: u64) {
        let line = va >> self.line_bits();
        let set = self.index(line);
        let base = set * self.ways;
        let Some(way) = self.way_of(base, line) else {
            debug_assert!(false, "line-hit batch settled against a non-resident line");
            return;
        };
        self.repl.touch(set, way as u8);
        if writes > 0 {
            self.tags[base + way] |= DIRTY;
        }
        self.stats.read_hits += reads;
        self.stats.write_hits += writes;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The cache's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Two-level cache hierarchy backed by main memory.
///
/// Access latency: L1 hit → `l1_latency`; L2 hit → `l1 + l2`; miss →
/// `l1 + l2 + memory(kind)`. Dirty L2 victims are counted as memory writes
/// but add no latency to the requesting access (writebacks are
/// asynchronous).
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    l1_latency: u64,
    l2_latency: u64,
    /// MLP-scaled miss stall per [`MemKind`] (`[Dram, Nvm]`), precomputed
    /// at construction so the miss path adds a constant instead of
    /// dividing and rounding an `f64` per miss.
    scaled_read: [u64; 2],
    memory: MainMemory,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a [`SimConfig`](crate::SimConfig).
    #[must_use]
    pub fn new(config: &crate::SimConfig) -> Self {
        let mlp = config.mem_level_parallelism.max(1.0);
        let scale = |lat: u64| (lat as f64 / mlp).round() as u64;
        CacheHierarchy {
            l1: Cache::new("L1D", config.l1d, config.line_bytes, Policy::TreePlru),
            l2: Cache::new("L2", config.l2, config.line_bytes, Policy::TreePlru),
            l1_latency: config.l1d_latency,
            l2_latency: config.l2_latency,
            scaled_read: [scale(config.dram_latency), scale(config.nvm_latency)],
            memory: MainMemory::new(config.dram_latency, config.nvm_latency),
        }
    }

    /// Performs an access; returns the latency in cycles. Main-memory
    /// stalls are scaled down by the configured memory-level parallelism
    /// (the OOO core overlaps misses; see `SimConfig::mem_level_parallelism`).
    pub fn access(&mut self, va: u64, kind: MemKind, is_write: bool) -> u64 {
        let mut cycles = self.l1_latency;
        let l1 = self.l1.access(va, is_write);
        if l1.hit {
            return cycles;
        }
        // L1 victims go to L2 (inclusive-ish accounting: writeback traffic
        // only, no latency on this path).
        if let Some(wb) = l1.writeback {
            let _ = self.l2.access(wb << self.l1.line_bits(), true);
        }
        cycles += self.l2_latency;
        let l2 = self.l2.access(va, false);
        if let Some(wb) = l2.writeback {
            self.memory.write(self.classify(wb << self.l2.line_bits()), kind);
        }
        if l2.hit {
            return cycles;
        }
        let _ = self.memory.read(kind); // traffic counter; stall is pre-scaled
        cycles += self.scaled_read[kind as usize];
        cycles
    }

    fn classify(&self, _va: u64) -> MemKind {
        // Writeback destinations are classified by the caller's map in the
        // full simulator; here we only count traffic, and the caller passes
        // the kind of the *requesting* access, which is the common case.
        MemKind::Dram
    }

    /// Flushes one line to memory (`clwb`): writes it back from both
    /// levels — *retaining* the (now clean) line — and performs a memory
    /// write if it was dirty in either. Returns whether any write reached
    /// memory.
    pub fn flush_line(&mut self, va: u64, kind: MemKind) -> bool {
        let d1 = self.l1.writeback_line(va).unwrap_or(false);
        let d2 = self.l2.writeback_line(va).unwrap_or(false);
        if d1 || d2 {
            self.memory.write(kind, kind);
            true
        } else {
            false
        }
    }

    /// The latency [`CacheHierarchy::access`] charges for an L1 hit.
    #[must_use]
    pub fn l1_hit_latency(&self) -> u64 {
        self.l1_latency
    }

    /// The L1 set index a line address (`va >> line_bits`) maps to — the
    /// key of the replayer's per-set line memo, which mirrors L1 geometry
    /// so a fill can only disturb the memo slot it indexes.
    #[must_use]
    pub fn l1_set_of_line(&self, line: u64) -> usize {
        self.l1.index(line)
    }

    /// Number of L1 sets (the line-memo table size).
    #[must_use]
    pub fn l1_sets(&self) -> usize {
        self.l1.sets as usize
    }

    /// Settles batched repeat hits on a still-resident L1 line — see
    /// [`Cache::note_line_hits`] for the exactness contract.
    pub fn note_line_hits(&mut self, va: u64, reads: u64, writes: u64) {
        if reads + writes > 0 {
            self.l1.note_line_hits(va, reads, writes);
        }
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Main-memory model (traffic counters).
    #[must_use]
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    fn small_cache() -> Cache {
        Cache::new("test", SetAssocGeometry::new(8, 2), 64, Policy::Lru)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit, "same 64B line");
        assert!(!c.access(0x1040, false).hit, "next line");
        assert_eq!(c.stats().read_hits, 2);
        assert_eq!(c.stats().read_misses, 2);
    }

    #[test]
    fn eviction_and_writeback() {
        let mut c = small_cache(); // 4 sets x 2 ways
                                   // Three lines mapping to the same set (stride = sets * line = 256B).
        c.access(0x0, true); // dirty
        c.access(0x100, false);
        let res = c.access(0x200, false);
        assert!(!res.hit);
        assert_eq!(res.writeback, Some(0)); // line 0 was dirty LRU victim
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().writebacks, 1);
        // Line 0 is gone now.
        assert!(!c.access(0x0, false).hit);
    }

    #[test]
    fn writeback_retains_the_line() {
        // clwb semantics: the line is written back but stays cached.
        let mut c = small_cache();
        c.access(0x40, true);
        assert_eq!(c.writeback_line(0x40), Some(true));
        assert!(c.access(0x40, false).hit, "line still resident after clwb");
        assert_eq!(c.writeback_line(0x40), Some(false), "now clean");
        assert_eq!(c.writeback_line(0x9000), None, "absent line");
    }

    #[test]
    fn flush_line_reports_dirtiness() {
        let mut c = small_cache();
        c.access(0x40, true);
        assert_eq!(c.flush_line(0x40), Some(true));
        assert_eq!(c.flush_line(0x40), None, "already flushed");
        c.access(0x40, false);
        assert_eq!(c.flush_line(0x7f), Some(false), "clean line, same line addr");
    }

    #[test]
    fn flush_all_empties() {
        let mut c = small_cache();
        c.access(0x0, true);
        c.access(0x40, false);
        c.flush_all();
        assert!(!c.access(0x0, false).hit);
        assert!(!c.access(0x40, false).hit);
    }

    #[test]
    fn hierarchy_latencies() {
        let cfg = SimConfig::isca2020();
        let mut h = CacheHierarchy::new(&cfg);
        let effective = |lat: u64| (lat as f64 / cfg.mem_level_parallelism).round() as u64;
        // Cold miss: L1 + L2 + DRAM (MLP-scaled).
        let cold = h.access(0x1000, MemKind::Dram, false);
        assert_eq!(cold, cfg.l1d_latency + cfg.l2_latency + effective(cfg.dram_latency));
        // Now an L1 hit.
        let hit = h.access(0x1000, MemKind::Dram, false);
        assert_eq!(hit, cfg.l1d_latency);
        // NVM cold miss is slower (3x DRAM before and after scaling).
        let nvm = h.access(0x80_0000_0000, MemKind::Nvm, false);
        assert_eq!(nvm, cfg.l1d_latency + cfg.l2_latency + effective(cfg.nvm_latency));
        assert!(nvm > cold);
    }

    #[test]
    fn hierarchy_l2_hit_path() {
        let cfg = SimConfig::isca2020();
        let mut h = CacheHierarchy::new(&cfg);
        h.access(0x1000, MemKind::Dram, false);
        // Evict from L1 by filling its set: L1 is 512 entries / 8 ways = 64
        // sets, so addresses 0x1000 + k * (64 * 64) map to one set.
        for k in 1..=8 {
            h.access(0x1000 + k * 64 * 64, MemKind::Dram, false);
        }
        let lat = h.access(0x1000, MemKind::Dram, false);
        assert_eq!(lat, cfg.l1d_latency + cfg.l2_latency, "should hit in L2");
    }

    #[test]
    fn clwb_writes_memory_once() {
        let cfg = SimConfig::isca2020();
        let mut h = CacheHierarchy::new(&cfg);
        h.access(0x2000, MemKind::Nvm, true);
        let before = h.memory().nvm_writes();
        assert!(h.flush_line(0x2000, MemKind::Nvm));
        assert_eq!(h.memory().nvm_writes(), before + 1);
        assert!(!h.flush_line(0x2000, MemKind::Nvm), "second flush is a no-op");
    }
}
