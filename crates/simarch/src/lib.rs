//! Architectural simulation substrate for the PMO domain-virtualization
//! reproduction (the Sniper-simulator substitute).
//!
//! This crate provides the protection-agnostic building blocks of the
//! simulated machine, configured exactly per the paper's Table II:
//!
//! - [`SimConfig`] — every simulation parameter, with
//!   [`SimConfig::isca2020`] reproducing Table II;
//! - [`Cache`]/[`CacheHierarchy`] — L1D + L2 tags-only caches over a
//!   DRAM/NVM [`MainMemory`] model;
//! - [`Tlb`]/[`TlbHierarchy`] — two-level TLBs generic over the payload a
//!   protection scheme stores per page (protection key or domain ID), with
//!   the ranged shootdown the MPK-virtualization design relies on;
//! - [`PageTable`] — a functional four-level radix page table whose
//!   per-PTE protection-key rewrites give the libmpk baseline its cost.
//!
//! The protection schemes themselves (PKRU, DTT/DTTLB, DRT/PT/PTLB) live in
//! `pmo-protect`; the replay engine that stitches everything together lives
//! in `pmo-sim`.
//!
//! # Example
//!
//! ```
//! use pmo_simarch::{CacheHierarchy, MemKind, SimConfig};
//!
//! let config = SimConfig::isca2020();
//! let mut caches = CacheHierarchy::new(&config);
//! let cold = caches.access(0x1000, MemKind::Nvm, false);
//! let warm = caches.access(0x1000, MemKind::Nvm, false);
//! assert!(cold > warm);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod memory;
mod page_table;
pub mod pool;
mod replacement;
mod stats;
mod tlb;

pub use cache::{Cache, CacheAccess, CacheHierarchy};
pub use config::{SetAssocGeometry, SimConfig};
pub use memory::{MainMemory, MemKind};
pub use page_table::{PageTable, Pte};
pub use replacement::{Policy, SetState};
pub use stats::{CacheStats, TlbStats};
pub use tlb::{vpn, Tlb, TlbHierarchy, TlbLevel, PAGE_BITS, PAGE_SIZE};
